#include "notary/service.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "notary/batch.h"
#include "util/crc32.h"
#include "util/datetime.h"
#include "util/stats.h"

namespace sm::notary {
namespace {

double bucket_upper_us(std::size_t bucket) {
  return static_cast<double>(std::uint64_t{1} << (bucket + 1)) / 1000.0;
}

// Slot-table probing: a fixed window of linearly-probed slots per id.
// Lookups scan the whole window (never stopping early at an empty slot —
// publish() invalidation punches holes mid-chain), so the window must
// stay small; 8 slots is two cache lines of 16-byte CacheSlots.
constexpr std::size_t kProbeWindow = 8;

// Fibonacci-hash home slot: cert ids are dense small integers, so spread
// them with the golden-ratio multiplier before masking.
std::size_t slot_home(scan::CertId id) {
  return static_cast<std::size_t>(
      (std::uint64_t{id} * 0x9E3779B97F4A7C15ull) >> 32);
}

}  // namespace

void LatencyHistogram::record(std::uint64_t nanos) {
  const std::size_t bucket =
      static_cast<std::size_t>(std::bit_width(nanos | 1) - 1);
  if (bucket >= kBuckets) {
    overflow_.fetch_add(1, std::memory_order_relaxed);
  } else {
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  }
  // Relaxed running maximum: the CAS loop only spins while this sample is
  // the new record, so the hot path is one load.
  std::uint64_t seen = max_nanos_.load(std::memory_order_relaxed);
  while (nanos > seen && !max_nanos_.compare_exchange_weak(
                             seen, nanos, std::memory_order_relaxed)) {
  }
}

LatencyHistogram::Summary LatencyHistogram::summarize() const {
  std::array<std::uint64_t, kBuckets> counts;
  Summary out;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    out.count += counts[i];
  }
  out.overflow = overflow_.load(std::memory_order_relaxed);
  out.count += out.overflow;
  if (out.count == 0) return out;
  out.max_us =
      static_cast<double>(max_nanos_.load(std::memory_order_relaxed)) /
      1000.0;
  const auto percentile = [&](double p) {
    const std::uint64_t rank = static_cast<std::uint64_t>(
        p * static_cast<double>(out.count - 1)) + 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += counts[i];
      // The true maximum tightens a bucket's upper bound whenever the
      // largest sample landed in (or below) this bucket.
      if (seen >= rank) return std::min(bucket_upper_us(i), out.max_us);
    }
    // The rank falls among overflow samples — past every bucket. The only
    // honest bound left is the exact recorded maximum.
    return out.max_us;
  };
  out.p50_us = percentile(0.50);
  out.p99_us = percentile(0.99);
  return out;
}

NotaryService::NotaryService(const NotaryIndex& index,
                             NotaryServiceConfig config)
    // Aliasing, non-owning shared_ptr: the batch caller owns the index
    // for the service's whole lifetime (the pre-live contract).
    : NotaryService(std::shared_ptr<const NotaryIndex>(
                        std::shared_ptr<const void>(), &index),
                    config) {}

NotaryService::NotaryService(std::shared_ptr<const NotaryIndex> index,
                             NotaryServiceConfig config)
    : config_(config) {
  auto snap = std::make_shared<Snapshot>();
  snap->index = std::move(index);
  snap->epoch = 0;
  const NotaryIndex* idx = snap->index.get();
  snapshot_.store(std::move(snap), std::memory_order_release);
  resize_cache(*idx);
}

void NotaryService::resize_cache(const NotaryIndex& index) {
  if (config_.cache_bytes == 0) return;
  // Budget only the shards this index can answer from: a fingerprint-
  // prefix slice (sm_notaryd --shard-prefix) reaches a handful of the 64
  // shard values, and splitting the budget 64 ways would strand most of
  // it on shards that can never see a kCertInfo render.
  std::size_t populated = 0;
  for (std::size_t s = 0; s < NotaryIndex::kShards; ++s) {
    if (index.shard_population(s) > 0) ++populated;
  }
  const std::size_t per =
      populated == 0 ? 0 : config_.cache_bytes / populated;
  for (std::size_t s = 0; s < NotaryIndex::kShards; ++s) {
    const std::size_t want = index.shard_population(s) > 0 ? per : 0;
    CacheShard& shard = cache_[s];
    std::lock_guard lock(shard.mutex);
    if (shard.capacity == want) continue;  // keep arena AND cached entries
    shard.capacity = want;
    shard.total = 0;
    if (want == 0) {
      shard.arena.reset();
      shard.slots.clear();
      shard.slots.shrink_to_fit();
      shard.slot_mask = 0;
      continue;
    }
    shard.arena = std::make_unique<char[]>(want);
    // Slot count scaled to the arena (responses run a few hundred bytes),
    // clamped so tiny test caches still get a workable table and huge
    // arenas don't drown in slot metadata.
    const std::size_t n = std::bit_ceil(
        std::clamp<std::size_t>(want / 128, 16, 65536));
    shard.slots.assign(n, CacheSlot{});
    shard.slot_mask = n - 1;
  }
}

std::size_t NotaryService::cache_shard_capacity(std::size_t s) const {
  const CacheShard& shard = cache_[s];
  std::lock_guard lock(shard.mutex);
  return shard.capacity;
}

const NotaryService::CacheSlot* NotaryService::cache_find(
    const CacheShard& shard, scan::CertId id) {
  std::size_t i = slot_home(id) & shard.slot_mask;
  for (std::size_t j = 0; j < kProbeWindow; ++j, i = (i + 1) & shard.slot_mask) {
    const CacheSlot& slot = shard.slots[i];
    if (slot.id != id) continue;
    // At most one slot holds a given id (inserts reuse it), so this is
    // the verdict: live if the ring has not lapped the entry.
    if (shard.total <= slot.start + shard.capacity) return &slot;
    return nullptr;
  }
  return nullptr;
}

void NotaryService::cache_insert(CacheShard& shard, scan::CertId id,
                                 const char* body, std::uint32_t len,
                                 std::uint32_t crc) {
  // Pick a slot: reuse this id's, else any empty/lapped one, else evict
  // the oldest render in the window (its arena bytes stay put; the slot
  // simply forgets them).
  CacheSlot* dest = nullptr;
  CacheSlot* stale = nullptr;
  CacheSlot* oldest = nullptr;
  std::size_t i = slot_home(id) & shard.slot_mask;
  for (std::size_t j = 0; j < kProbeWindow; ++j, i = (i + 1) & shard.slot_mask) {
    CacheSlot& slot = shard.slots[i];
    if (slot.id == id) {
      dest = &slot;
      break;
    }
    if (slot.id == kEmptyCacheSlot ||
        shard.total > slot.start + shard.capacity) {
      if (stale == nullptr) stale = &slot;
    } else if (oldest == nullptr || slot.start < oldest->start) {
      oldest = &slot;
    }
  }
  if (dest == nullptr) dest = stale != nullptr ? stale : oldest;
  // Ring write that never straddles the arena edge: pad the tail instead,
  // so every live entry is one contiguous memcpy. Advancing `total` is
  // the eviction — entries it laps fail the liveness check.
  std::size_t pos = static_cast<std::size_t>(shard.total % shard.capacity);
  if (pos + len > shard.capacity) {
    shard.total += shard.capacity - pos;
    pos = 0;
  }
  std::memcpy(shard.arena.get() + pos, body, len);
  dest->start = shard.total;
  dest->id = id;
  dest->len = len;
  dest->crc = crc;
  shard.total += len;
}

void NotaryService::publish(std::shared_ptr<const NotaryIndex> index,
                            std::span<const scan::CertId> changed) {
  std::lock_guard publish_lock(publish_mutex_);
  auto snap = std::make_shared<Snapshot>();
  snap->index = std::move(index);
  snap->epoch =
      snapshot_.load(std::memory_order_relaxed)->epoch + 1;
  const NotaryIndex* idx = snap->index.get();  // pinned by snapshot_ below
  // Order matters: advance the insert-guard epoch first, then swap the
  // snapshot, then invalidate. A render that loaded the old snapshot and
  // is about to cache a changed cert re-reads epoch_ inside the shard
  // mutex — it either inserts before the erase below (and is erased) or
  // sees the new epoch and skips the insert. Either way no stale bytes
  // survive; untouched certs render identically in both epochs, so their
  // cached entries stay byte-correct.
  epoch_.store(snap->epoch, std::memory_order_release);
  snapshot_.store(std::move(snap), std::memory_order_release);
  snapshot_swaps_.fetch_add(1, std::memory_order_relaxed);

  if (config_.cache_bytes == 0) return;
  // Population changes (live ingestion growing a shard from empty)
  // rebalance per-shard budgets; a shard whose budget is unchanged keeps
  // its arena and every cached entry.
  resize_cache(*idx);
  std::uint64_t dropped = 0;
  // Ids are stable intern keys, so a changed cert can only be cached in
  // the one shard its fingerprint maps to — no 64-shard sweep.
  for (const scan::CertId id : changed) {
    if (id >= idx->size()) continue;
    CacheShard& shard =
        cache_[NotaryIndex::shard_of(idx->knowledge(id).fingerprint)];
    std::lock_guard lock(shard.mutex);
    if (shard.capacity == 0) continue;
    std::size_t i = slot_home(id) & shard.slot_mask;
    for (std::size_t j = 0; j < kProbeWindow;
         ++j, i = (i + 1) & shard.slot_mask) {
      CacheSlot& slot = shard.slots[i];
      if (slot.id != id) continue;
      // Count only live entries — a lapped slot is not a cached render.
      if (shard.total <= slot.start + shard.capacity) ++dropped;
      slot = CacheSlot{};
      break;
    }
  }
  cache_invalidations_.fetch_add(dropped, std::memory_order_relaxed);
}

void NotaryService::append_knowledge(const scan::CertFingerprint& fp,
                                     scan::CertId id, const CertKnowledge& k,
                                     std::uint64_t epoch, bool as_frame,
                                     std::string& out) {
  CacheShard& shard = cache_[NotaryIndex::shard_of(fp)];
  if (shard.capacity != 0) {
    std::lock_guard lock(shard.mutex);
    if (const CacheSlot* slot = cache_find(shard, id)) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      // The hit path: one memcpy, arena -> out, under the shard mutex
      // (the copy is what lets the ring overwrite the arena afterwards).
      // The cached CRC is the standalone frame's, so the single-query
      // form skips the checksum pass entirely.
      const char* body =
          shard.arena.get() +
          static_cast<std::size_t>(slot->start % shard.capacity);
      if (as_frame) {
        out.push_back(static_cast<char>(netio::FrameType::kCertInfo));
        netio::put_u32le(out, slot->len);
        out.append(body, slot->len);
        netio::put_u32le(out, slot->crc);
      } else {
        out.append(body, slot->len);
      }
      return;
    }
  }
  // Miss: render straight into `out` (no staging string), then copy the
  // fresh body into the arena. Rendering outside the lock is deliberate:
  // misses are the slow path, and the entry is immutable within its
  // epoch, so two racing renders produce identical bytes.
  cache_misses_.fetch_add(1, std::memory_order_relaxed);
  std::size_t body_start = 0;
  std::uint32_t frame_crc = 0;
  if (as_frame) {
    netio::FrameWriter frame(out, netio::FrameType::kCertInfo);
    body_start = frame.payload_offset();
    render_knowledge_into(k, out);
    frame_crc = frame.finish();
  } else {
    body_start = out.size();
    render_knowledge_into(k, out);
  }
  const std::size_t body_end =
      as_frame ? out.size() - netio::kFrameTrailerSize : out.size();
  const std::size_t body_len = body_end - body_start;
  if (shard.capacity == 0 || body_len > shard.capacity) return;
  if (!as_frame) {
    // The batch path never built the standalone frame, but the cached CRC
    // must be the standalone frame's (a later single-query hit appends
    // it). Chain it over a stack header + the body already in `out`.
    char hdr[netio::kFrameHeaderSize];
    hdr[0] = static_cast<char>(netio::FrameType::kCertInfo);
    const auto len32 = static_cast<std::uint32_t>(body_len);
    hdr[1] = static_cast<char>(len32 & 0xff);
    hdr[2] = static_cast<char>((len32 >> 8) & 0xff);
    hdr[3] = static_cast<char>((len32 >> 16) & 0xff);
    hdr[4] = static_cast<char>((len32 >> 24) & 0xff);
    frame_crc = util::crc32(hdr, sizeof hdr);
    frame_crc = util::crc32(out.data() + body_start, body_len, frame_crc);
  }
  std::lock_guard lock(shard.mutex);
  // Epoch guard: if a publish() advanced the epoch since this render
  // began, its invalidation pass may already have swept this shard —
  // inserting now could cache stale bytes for a changed cert. Skip; the
  // next query re-renders against the new epoch.
  if (epoch_.load(std::memory_order_acquire) == epoch &&
      cache_find(shard, id) == nullptr) {
    cache_insert(shard, id, out.data() + body_start,
                 static_cast<std::uint32_t>(body_len), frame_crc);
  }
}

void NotaryService::handle_into(netio::FrameType type,
                                std::string_view payload, std::string& out) {
  const auto start = std::chrono::steady_clock::now();
  requests_.fetch_add(1, std::memory_order_relaxed);
  switch (type) {
    case netio::FrameType::kQuery: {
      queries_.fetch_add(1, std::memory_order_relaxed);
      if (payload.size() != std::tuple_size_v<scan::CertFingerprint> &&
          payload.size() != 32) {
        bad_requests_.fetch_add(1, std::memory_order_relaxed);
        netio::encode_frame_into(
            out, netio::FrameType::kError,
            "query payload must be a 16-byte fingerprint or a "
            "32-byte SHA-256");
        break;
      }
      scan::CertFingerprint fp{};
      std::memcpy(fp.data(), payload.data(), fp.size());
      // The query hot path: one acquire load pins this request's epoch;
      // lookup and render run lock-free against the immutable index
      // (the shared_ptr keeps it alive across a concurrent publish).
      const std::shared_ptr<const Snapshot> snap = snapshot();
      const CertKnowledge* k = snap->index->lookup(fp);
      if (k == nullptr) {
        not_found_.fetch_add(1, std::memory_order_relaxed);
        netio::FrameWriter frame(out, netio::FrameType::kNotFound);
        append_hex_fingerprint(out, fp);
        frame.finish();
      } else {
        found_.fetch_add(1, std::memory_order_relaxed);
        const auto id =
            static_cast<scan::CertId>(k - &snap->index->knowledge(0));
        append_knowledge(fp, id, *k, snap->epoch, /*as_frame=*/true, out);
      }
      break;
    }
    case netio::FrameType::kBatchQuery: {
      batch_queries_.fetch_add(1, std::memory_order_relaxed);
      BatchQueryView view;
      if (!view.parse(payload)) {
        bad_requests_.fetch_add(1, std::memory_order_relaxed);
        netio::encode_frame_into(
            out, netio::FrameType::kError,
            "batch query payload must be a u32le count followed "
            "by that many 16-byte fingerprints");
        break;
      }
      batch_entries_.fetch_add(view.size(), std::memory_order_relaxed);
      // One acquire pins a single epoch for the whole batch, so every
      // entry is answered from the same index — and byte-identical to
      // what the same fingerprint would get as a standalone kQuery
      // against that epoch.
      const std::shared_ptr<const Snapshot> snap = snapshot();
      netio::FrameWriter frame(out, netio::FrameType::kBatchInfo);
      netio::put_u32le(out, view.size());
      for (std::uint32_t i = 0; i < view.size(); ++i) {
        const scan::CertFingerprint fp = view.fingerprint(i);
        const CertKnowledge* k = snap->index->lookup(fp);
        if (k == nullptr) {
          not_found_.fetch_add(1, std::memory_order_relaxed);
          const std::size_t body =
              begin_batch_entry(out, netio::FrameType::kNotFound);
          append_hex_fingerprint(out, fp);
          end_batch_entry(out, body);
        } else {
          found_.fetch_add(1, std::memory_order_relaxed);
          const auto id =
              static_cast<scan::CertId>(k - &snap->index->knowledge(0));
          const std::size_t body =
              begin_batch_entry(out, netio::FrameType::kCertInfo);
          append_knowledge(fp, id, *k, snap->epoch, /*as_frame=*/false, out);
          end_batch_entry(out, body);
        }
      }
      frame.finish();
      break;
    }
    case netio::FrameType::kRevocationQuery: {
      revocation_queries_.fetch_add(1, std::memory_order_relaxed);
      constexpr std::size_t kFpSize = std::tuple_size_v<scan::CertFingerprint>;
      // The payload length disambiguates the two forms: singles are 16 or
      // 32 bytes (0 mod 16), batches are 4 + 16n (4 mod 16) — the shapes
      // never collide.
      if (payload.size() == kFpSize || payload.size() == 32) {
        scan::CertFingerprint fp{};
        std::memcpy(fp.data(), payload.data(), fp.size());
        const std::shared_ptr<const Snapshot> snap = snapshot();
        const CertKnowledge* k = snap->index->lookup(fp);
        if (k == nullptr) {
          not_found_.fetch_add(1, std::memory_order_relaxed);
          netio::FrameWriter frame(out, netio::FrameType::kNotFound);
          append_hex_fingerprint(out, fp);
          frame.finish();
        } else {
          found_.fetch_add(1, std::memory_order_relaxed);
          // The two-line revocation body is rendered directly — no trip
          // through the kCertInfo response cache (whose slots are keyed by
          // cert id alone and hold the full knowledge render). Still
          // allocation-free on a capacity-retaining outbuf.
          netio::FrameWriter frame(out, netio::FrameType::kRevocationInfo);
          render_revocation_into(*k, out);
          frame.finish();
        }
        break;
      }
      BatchQueryView view;
      if (!view.parse(payload)) {
        bad_requests_.fetch_add(1, std::memory_order_relaxed);
        netio::encode_frame_into(
            out, netio::FrameType::kError,
            "revocation query payload must be a 16-byte fingerprint, a "
            "32-byte SHA-256, or a u32le count followed by that many "
            "16-byte fingerprints");
        break;
      }
      batch_entries_.fetch_add(view.size(), std::memory_order_relaxed);
      const std::shared_ptr<const Snapshot> snap = snapshot();
      netio::FrameWriter frame(out, netio::FrameType::kBatchInfo);
      netio::put_u32le(out, view.size());
      for (std::uint32_t i = 0; i < view.size(); ++i) {
        const scan::CertFingerprint fp = view.fingerprint(i);
        const CertKnowledge* k = snap->index->lookup(fp);
        if (k == nullptr) {
          not_found_.fetch_add(1, std::memory_order_relaxed);
          const std::size_t body =
              begin_batch_entry(out, netio::FrameType::kNotFound);
          append_hex_fingerprint(out, fp);
          end_batch_entry(out, body);
        } else {
          found_.fetch_add(1, std::memory_order_relaxed);
          const std::size_t body =
              begin_batch_entry(out, netio::FrameType::kRevocationInfo);
          render_revocation_into(*k, out);
          end_batch_entry(out, body);
        }
      }
      frame.finish();
      break;
    }
    case netio::FrameType::kStats: {
      stats_requests_.fetch_add(1, std::memory_order_relaxed);
      netio::FrameWriter frame(out, netio::FrameType::kStatsText);
      render_stats_into(out);
      frame.finish();
      break;
    }
    case netio::FrameType::kPing:
      pings_.fetch_add(1, std::memory_order_relaxed);
      // Zero-copy echo: the request payload goes straight back out.
      netio::encode_frame_into(out, netio::FrameType::kPong, payload);
      break;
    case netio::FrameType::kSnapshot: {
      snapshot_requests_.fetch_add(1, std::memory_order_relaxed);
      netio::FrameWriter frame(out, netio::FrameType::kSnapshotInfo);
      render_snapshot_info_into(out);
      frame.finish();
      break;
    }
    default:
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      netio::encode_frame_into(out, netio::FrameType::kError,
                               "unsupported request frame");
      break;
  }
  latency_.record(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count()));
}

netio::Frame NotaryService::handle(netio::FrameType type,
                                   std::string_view payload) {
  std::string buf;
  handle_into(type, payload, buf);
  netio::Frame response;
  response.type =
      static_cast<netio::FrameType>(static_cast<std::uint8_t>(buf[0]));
  response.payload.assign(
      buf.data() + netio::kFrameHeaderSize,
      buf.size() - netio::kFrameHeaderSize - netio::kFrameTrailerSize);
  return response;
}

NotaryMetricsSnapshot NotaryService::metrics() const {
  NotaryMetricsSnapshot out;
  out.requests = requests_.load(std::memory_order_relaxed);
  out.queries = queries_.load(std::memory_order_relaxed);
  out.batch_queries = batch_queries_.load(std::memory_order_relaxed);
  out.batch_entries = batch_entries_.load(std::memory_order_relaxed);
  out.revocation_queries =
      revocation_queries_.load(std::memory_order_relaxed);
  out.found = found_.load(std::memory_order_relaxed);
  out.not_found = not_found_.load(std::memory_order_relaxed);
  out.stats_requests = stats_requests_.load(std::memory_order_relaxed);
  out.pings = pings_.load(std::memory_order_relaxed);
  out.snapshot_requests =
      snapshot_requests_.load(std::memory_order_relaxed);
  out.bad_requests = bad_requests_.load(std::memory_order_relaxed);
  out.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  out.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  out.epoch = snapshot()->epoch;
  out.snapshot_swaps = snapshot_swaps_.load(std::memory_order_relaxed);
  out.cache_invalidations =
      cache_invalidations_.load(std::memory_order_relaxed);
  out.latency = latency_.summarize();
  return out;
}

void NotaryService::render_snapshot_info_into(std::string& out) const {
  const std::shared_ptr<const Snapshot> snap = snapshot();
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "epoch: %" PRIu64 "\n"
                "scans: %zu\n"
                "last-scan-start: %s\n"
                "certs: %zu\n",
                snap->epoch, snap->index->scan_count(),
                snap->index->scan_count() == 0
                    ? "never"
                    : util::format_datetime(snap->index->last_scan_start())
                          .c_str(),
                snap->index->size());
  out += buf;
}

std::string NotaryService::render_snapshot_info() const {
  std::string out;
  render_snapshot_info_into(out);
  return out;
}

void NotaryService::render_stats_into(std::string& out) const {
  // One snapshot acquire serves BOTH index-size and snapshot-epoch: a
  // second acquire (the old code took one here and another inside
  // metrics()) could straddle a concurrent publish() and pair epoch N
  // with epoch N+1's size.
  const std::shared_ptr<const Snapshot> snap = snapshot();
  const NotaryMetricsSnapshot m = metrics();
  char buf[1024];
  std::snprintf(
      buf, sizeof buf,
      "notary-stats\n"
      "index-size: %zu\n"
      "requests: %" PRIu64 "\n"
      "queries: %" PRIu64 " (found %" PRIu64 ", unknown %" PRIu64 ")\n"
      "batch-queries: %" PRIu64 " (entries %" PRIu64 ")\n"
      "revocation-queries: %" PRIu64 "\n"
      "pings: %" PRIu64 "\n"
      "stats-requests: %" PRIu64 "\n"
      "bad-requests: %" PRIu64 "\n"
      "cache: %" PRIu64 " hits, %" PRIu64 " misses (hit rate %s)\n"
      "latency-p50-us: %.3f\n"
      "latency-p99-us: %.3f\n"
      "latency-max-us: %.3f\n"
      "latency-overflow: %" PRIu64 " (samples >= %.3f us)\n"
      "snapshot-epoch: %" PRIu64 "\n"
      "snapshot-swaps: %" PRIu64 "\n"
      "snapshot-requests: %" PRIu64 "\n"
      "cache-invalidations: %" PRIu64 "\n",
      snap->index->size(), m.requests, m.queries, m.found, m.not_found,
      m.batch_queries, m.batch_entries, m.revocation_queries, m.pings,
      m.stats_requests,
      m.bad_requests, m.cache_hits, m.cache_misses,
      util::percent(m.cache_hit_rate()).c_str(), m.latency.p50_us,
      m.latency.p99_us, m.latency.max_us, m.latency.overflow,
      bucket_upper_us(LatencyHistogram::kBuckets - 1), snap->epoch,
      m.snapshot_swaps, m.snapshot_requests, m.cache_invalidations);
  out += buf;
}

std::string NotaryService::render_stats() const {
  std::string out;
  render_stats_into(out);
  return out;
}

}  // namespace sm::notary
