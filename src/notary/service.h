// NotaryService — the request handler sm_notaryd plugs into netio: frames
// in, frames out, with a per-shard LRU cache of rendered responses and
// lock-free request metrics.
//
//  * The cache is memory-bounded (cache_bytes split evenly over the
//    index's shards) and caches only the *rendered* text of an immutable
//    entry, so responses are byte-identical with the cache on or off.
//  * Metrics are relaxed atomics (request counts, cache hit/miss,
//    malformed requests) plus a power-of-two-bucket latency histogram
//    with p50/p99 estimates — all dumped on demand by a kStats request.
//  * handle() is safe to call from any number of server workers.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "netio/frame.h"
#include "notary/index.h"

namespace sm::notary {

/// Service tunables.
struct NotaryServiceConfig {
  /// Total bytes of rendered responses to cache (0 disables the cache).
  std::size_t cache_bytes = 0;
};

/// Lock-free latency histogram: bucket b counts requests whose handling
/// took [2^b, 2^(b+1)) nanoseconds. Percentile estimates report a bucket's
/// upper bound, so they are deterministic in the counts.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 48;

  void record(std::uint64_t nanos);

  struct Summary {
    std::uint64_t count = 0;
    double p50_us = 0;  ///< upper bound of the median bucket
    double p99_us = 0;
    double max_us = 0;  ///< upper bound of the highest non-empty bucket
  };
  Summary summarize() const;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// A point-in-time copy of the service counters.
struct NotaryMetricsSnapshot {
  std::uint64_t requests = 0;       ///< all frames handled
  std::uint64_t queries = 0;        ///< kQuery frames
  std::uint64_t found = 0;          ///< queries answered kCertInfo
  std::uint64_t not_found = 0;      ///< queries answered kNotFound
  std::uint64_t stats_requests = 0;
  std::uint64_t pings = 0;
  std::uint64_t bad_requests = 0;   ///< well-framed but unusable requests
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;   ///< includes cache-disabled renders
  LatencyHistogram::Summary latency;

  double cache_hit_rate() const {
    const std::uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(cache_hits) /
                            static_cast<double>(total);
  }
};

/// The notary request handler. Owns the cache and metrics; borrows the
/// (immutable) index.
class NotaryService {
 public:
  explicit NotaryService(const NotaryIndex& index,
                         NotaryServiceConfig config = {});

  /// Handles one well-formed frame; thread-safe. Query payloads are the
  /// 16-byte archive fingerprint or a full 32-byte SHA-256 (truncated).
  netio::Frame handle(netio::FrameType type, std::string_view payload);

  NotaryMetricsSnapshot metrics() const;

  /// The kStatsText body: counters, hit rate, latency percentiles.
  std::string render_stats() const;

  const NotaryIndex& index() const { return *index_; }

 private:
  // One LRU shard: most-recent at the front of `order`.
  struct CacheShard {
    std::mutex mutex;
    std::list<std::pair<scan::CertId, std::string>> order;
    std::unordered_map<scan::CertId, decltype(order)::iterator> map;
    std::size_t bytes = 0;
    std::size_t capacity = 0;
  };

  std::string rendered_response(const scan::CertFingerprint& fp,
                                scan::CertId id, const CertKnowledge& k);

  const NotaryIndex* index_;
  NotaryServiceConfig config_;
  std::array<CacheShard, NotaryIndex::kShards> cache_;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> found_{0};
  std::atomic<std::uint64_t> not_found_{0};
  std::atomic<std::uint64_t> stats_requests_{0};
  std::atomic<std::uint64_t> pings_{0};
  std::atomic<std::uint64_t> bad_requests_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> cache_misses_{0};
  LatencyHistogram latency_;
};

}  // namespace sm::notary
