// NotaryService — the request handler sm_notaryd plugs into netio: frames
// in, frames out, with a per-shard slot cache of rendered responses and
// lock-free request metrics.
//
//  * The index is published as an epoch/RCU-style snapshot
//    (std::atomic<std::shared_ptr>): each request takes one acquire load,
//    renders against that immutable epoch with zero locks held, and the
//    shared_ptr keeps the epoch alive until the response is built. A
//    live-ingestion pipeline swaps in new epochs with publish(); services
//    built over a fixed index simply never swap.
//  * publish() invalidates precisely: only cached renders of certificates
//    named in the delta are dropped, everything else survives the swap
//    (an untouched certificate renders to identical bytes in both epochs,
//    so its cached response stays correct). An epoch guard on the insert
//    path keeps a render that raced a swap from re-entering stale bytes.
//  * The cache is memory-bounded and allocation-free at steady state:
//    each shard owns one fixed ring arena of rendered bytes plus a flat
//    open-addressing slot table, so a hit is a table probe and a memcpy
//    out of the arena — no lists, no node allocations, no refcounts. The
//    budget (cache_bytes) is split over the shards the index actually
//    populates (a fingerprint-prefix slice reaches only a few of the 64),
//    and the cache holds only the *rendered* text of immutable entries,
//    so responses are byte-identical with the cache on or off.
//  * handle_into() appends the complete response frame — header, payload,
//    CRC — straight into a caller-supplied buffer (the connection outbuf),
//    so a cache-hit query performs zero heap allocations and exactly one
//    copy (arena -> outbuf). handle() wraps it for callers that want a
//    decoded Frame.
//  * Metrics are relaxed atomics (request counts, cache hit/miss,
//    malformed requests, swap/invalidation totals) plus a power-of-two-
//    bucket latency histogram with p50/p99 estimates — all dumped on
//    demand by a kStats request.
//  * handle()/handle_into() are safe to call from any number of server
//    workers, concurrently with publish().
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "netio/frame.h"
#include "notary/index.h"

namespace sm::notary {

/// Service tunables.
struct NotaryServiceConfig {
  /// Total bytes of rendered responses to cache (0 disables the cache).
  std::size_t cache_bytes = 0;
};

/// Lock-free latency histogram: bucket b counts requests whose handling
/// took [2^b, 2^(b+1)) nanoseconds. Percentile estimates report a bucket's
/// upper bound (never above the true maximum), so they are deterministic
/// in the counts. Samples past the top bucket are counted separately as
/// overflow instead of being clamped into it — clamping would let
/// max_us/p99_us report the top bucket's bound as if it were a measured
/// ceiling.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 48;

  void record(std::uint64_t nanos);

  struct Summary {
    std::uint64_t count = 0;     ///< all samples, overflow included
    std::uint64_t overflow = 0;  ///< samples >= 2^kBuckets ns
    double p50_us = 0;  ///< upper bound of the median bucket
    double p99_us = 0;
    double max_us = 0;  ///< exact maximum recorded sample
  };
  Summary summarize() const;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> overflow_{0};
  std::atomic<std::uint64_t> max_nanos_{0};  ///< relaxed running maximum
};

/// A point-in-time copy of the service counters.
struct NotaryMetricsSnapshot {
  std::uint64_t requests = 0;       ///< all frames handled
  std::uint64_t queries = 0;        ///< kQuery frames
  std::uint64_t batch_queries = 0;  ///< kBatchQuery frames
  std::uint64_t batch_entries = 0;  ///< fingerprints across all batches
  /// kRevocationQuery frames (single and batch forms both count once).
  std::uint64_t revocation_queries = 0;
  /// Lookups answered kCertInfo / kNotFound — single queries and batch
  /// entries both count, so found + not_found can exceed queries.
  std::uint64_t found = 0;
  std::uint64_t not_found = 0;
  std::uint64_t stats_requests = 0;
  std::uint64_t pings = 0;
  std::uint64_t snapshot_requests = 0;  ///< kSnapshot frames
  std::uint64_t bad_requests = 0;   ///< well-framed but unusable requests
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;   ///< includes cache-disabled renders
  std::uint64_t epoch = 0;              ///< currently published epoch
  std::uint64_t snapshot_swaps = 0;     ///< publish() calls
  std::uint64_t cache_invalidations = 0;  ///< cached renders dropped
  LatencyHistogram::Summary latency;

  double cache_hit_rate() const {
    const std::uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(cache_hits) /
                            static_cast<double>(total);
  }
};

/// The notary request handler. Owns the cache and metrics; serves the
/// currently published index snapshot.
class NotaryService {
 public:
  /// Serves a fixed index the caller keeps alive (the batch shape: build
  /// once, serve until shutdown). The index is borrowed, never swapped —
  /// publish() still works and takes over ownership management from then
  /// on.
  explicit NotaryService(const NotaryIndex& index,
                         NotaryServiceConfig config = {});

  /// Serves a shared index the service participates in owning — the
  /// live-ingestion shape, where publish() later retires it.
  explicit NotaryService(std::shared_ptr<const NotaryIndex> index,
                         NotaryServiceConfig config = {});

  /// Handles one well-formed frame, appending the complete response frame
  /// (type byte, u32le size, payload, CRC32) to `out`; thread-safe. This
  /// is the hot path: a cache-hit query allocates nothing (given `out`
  /// has capacity) and copies the rendered bytes exactly once, arena to
  /// `out`. Query payloads are the 16-byte archive fingerprint or a full
  /// 32-byte SHA-256 (truncated). kRevocationQuery takes the same single
  /// payload, or a batch-query payload (u32le count + 16-byte
  /// fingerprints) answered as one kBatchInfo of kRevocationInfo /
  /// kNotFound entries; the tiny revocation render bypasses the response
  /// cache and is itself allocation-free into a warm buffer.
  void handle_into(netio::FrameType type, std::string_view payload,
                   std::string& out);

  /// Convenience wrapper decoding the response into a Frame (extra
  /// allocation + copy; tests and non-hot callers only).
  netio::Frame handle(netio::FrameType type, std::string_view payload);

  /// Swaps in a new index epoch and drops exactly the cached renders of
  /// `changed` certificate ids (certificate ids are stable across epochs,
  /// so every other cached render is still byte-correct). Queries in
  /// flight keep rendering against the epoch they loaded — the old index
  /// stays alive until its last reader drops it. Serialized against
  /// other publishers; never blocks the query path's snapshot load.
  void publish(std::shared_ptr<const NotaryIndex> index,
               std::span<const scan::CertId> changed);

  NotaryMetricsSnapshot metrics() const;

  /// The kStatsText body: counters, hit rate, latency percentiles.
  std::string render_stats() const;
  void render_stats_into(std::string& out) const;

  /// The kSnapshotInfo body for the currently published epoch.
  std::string render_snapshot_info() const;
  void render_snapshot_info_into(std::string& out) const;

  /// Arena bytes budgeted to cache shard `s` (0 when the shard is
  /// unreachable under the current index) — exposed for tests pinning the
  /// reachable-shard split.
  std::size_t cache_shard_capacity(std::size_t s) const;

  /// The currently published index. The reference is guaranteed stable
  /// only while no publish() runs; live-pipeline callers should hold the
  /// shared_ptr via index_snapshot() instead.
  const NotaryIndex& index() const { return *snapshot()->index; }
  std::shared_ptr<const NotaryIndex> index_snapshot() const {
    return snapshot()->index;
  }

 private:
  /// One published epoch: the index plus its ordinal. Immutable after
  /// publication; reference-counted so in-flight renders pin it.
  struct Snapshot {
    std::shared_ptr<const NotaryIndex> index;
    std::uint64_t epoch = 0;
  };

  /// Sentinel cert id marking an unused cache slot.
  static constexpr scan::CertId kEmptyCacheSlot = 0xffffffff;

  /// One cached render: `len` body bytes at ring position `start %
  /// capacity` of the shard arena, plus the CRC32 of the standalone
  /// kCertInfo frame carrying that body (deterministic given the bytes),
  /// so a single-query hit appends header + body + cached CRC without
  /// re-running the checksum. `start` is the arena's monotonic write
  /// position at insert time; the entry is live iff no later write has
  /// lapped it: shard.total <= start + shard.capacity.
  struct CacheSlot {
    std::uint64_t start = 0;
    scan::CertId id = kEmptyCacheSlot;
    std::uint32_t len = 0;
    std::uint32_t crc = 0;
  };

  /// One cache shard: a fixed ring arena of rendered body bytes and a
  /// power-of-two open-addressing table over it. Writes never straddle
  /// the ring edge (the tail is padded instead), so every live entry is
  /// contiguous in memory. Eviction is implicit — the ring lapping an
  /// entry stales it — which is FIFO-by-render-time rather than LRU, a
  /// deliberate trade: no per-hit bookkeeping, no allocation, ever.
  struct CacheShard {
    mutable std::mutex mutex;
    std::unique_ptr<char[]> arena;
    std::size_t capacity = 0;  ///< arena bytes (0 = shard uncached)
    std::uint64_t total = 0;   ///< monotonic write position
    std::vector<CacheSlot> slots;
    std::size_t slot_mask = 0;
  };

  std::shared_ptr<const Snapshot> snapshot() const {
    return snapshot_.load(std::memory_order_acquire);
  }

  /// Splits cache_bytes over the shards `index` populates, (re)allocating
  /// only shards whose budget changed (a reset drops that shard's cached
  /// renders). Called at construction and on publish().
  void resize_cache(const NotaryIndex& index);

  /// Probes for a live entry; nullptr on miss. Caller holds shard.mutex.
  static const CacheSlot* cache_find(const CacheShard& shard,
                                     scan::CertId id);

  /// Writes `body` into the ring and claims a slot for it. Caller holds
  /// shard.mutex and has checked len <= capacity.
  static void cache_insert(CacheShard& shard, scan::CertId id,
                           const char* body, std::uint32_t len,
                           std::uint32_t crc);

  /// Appends the kCertInfo response for one certificate: the full frame
  /// when `as_frame` (single-query path), body bytes only otherwise (the
  /// batch-entry path, which wraps them in a batch entry header).
  void append_knowledge(const scan::CertFingerprint& fp, scan::CertId id,
                        const CertKnowledge& k, std::uint64_t epoch,
                        bool as_frame, std::string& out);

  NotaryServiceConfig config_;
  std::array<CacheShard, NotaryIndex::kShards> cache_;

  /// The query path's only shared state: one acquire load per request.
  std::atomic<std::shared_ptr<const Snapshot>> snapshot_;
  /// Monotonic epoch mirror used by the cache-insert guard: publish()
  /// advances it *before* invalidating, so a render begun against an
  /// older epoch can never re-insert bytes the invalidation removed.
  std::atomic<std::uint64_t> epoch_{0};
  std::mutex publish_mutex_;  ///< serializes publishers only

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> batch_queries_{0};
  std::atomic<std::uint64_t> batch_entries_{0};
  std::atomic<std::uint64_t> revocation_queries_{0};
  std::atomic<std::uint64_t> found_{0};
  std::atomic<std::uint64_t> not_found_{0};
  std::atomic<std::uint64_t> stats_requests_{0};
  std::atomic<std::uint64_t> pings_{0};
  std::atomic<std::uint64_t> snapshot_requests_{0};
  std::atomic<std::uint64_t> bad_requests_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> cache_misses_{0};
  std::atomic<std::uint64_t> snapshot_swaps_{0};
  std::atomic<std::uint64_t> cache_invalidations_{0};
  LatencyHistogram latency_;
};

}  // namespace sm::notary
