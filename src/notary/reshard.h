// ReshardHost — the backend side of online resharding: the slice
// handoff state machine an sm_notaryd mounts next to its NotaryService.
//
// A reshard moves one prefix range [lo, hi] from a source daemon to a
// successor while both keep serving queries:
//
//   snapshot   the source takes a LiveCorpus snapshot and extracts the
//              range's slice (certs + all scans + sidecar maps);
//   stream     the slice travels as kSliceBegin (range), kSliceSegment
//              chunks (stream 0 = sidecar blob, stream 1 = SMAR bytes),
//              kSliceDone (merge trigger) — each frame individually
//              acknowledged with kSliceInfo;
//   catch-up   if the source ingested more scans while streaming, it
//              repeats with only the new scans (every round re-lists the
//              range's certificates; the receiver's intern dedups) until
//              a round finds the snapshot unchanged;
//   swap       the driver (tools/sm_reshard) flips the router's prefix
//              map — not this class's job;
//   retire     kSliceRetire tells the source to drop the range
//              (LiveCorpus::retire_prefix + a full-invalidation publish).
//
// The receiver accumulates exactly one transfer at a time into a bounded
// buffer; a second concurrent kSliceBegin is refused with kError. After
// a successful merge (or retire) the host rebuilds the NotaryIndex from
// the new LiveCorpus snapshot — injecting the sidecar revocation
// statuses and key-sharing degrees — and publishes it to the service
// with the snapshot's delta, so the enlarged (or shrunk) index is live
// before the call returns and the driver can safely cut the range over.
//
// handle() blocks its server worker for the duration of a merge or an
// outbound send (the same blocking discipline as the router's forwards);
// query traffic keeps flowing on the other workers, and the epoch swap
// itself is the usual RCU publish.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "corpus/live.h"
#include "netio/client_pool.h"
#include "netio/frame.h"
#include "notary/service.h"

namespace sm::notary {

struct ReshardHostOptions {
  /// kSliceSegment chunk size for outbound streams. Must stay under the
  /// frame codec's kMaxFramePayload (minus the stream-id byte).
  std::size_t chunk_bytes = 256 * 1024;
  /// Ceiling on one inbound transfer (sidecar + SMAR bytes together);
  /// exceeding it aborts the transfer with kError.
  std::size_t max_transfer_bytes = std::size_t{1} << 30;
  /// Catch-up rounds before an outbound send gives up on a corpus that
  /// keeps growing faster than it streams.
  int max_rounds = 8;
  int connect_timeout_ms = 2'000;
  int io_timeout_ms = 30'000;
  /// Pool for index rebuilds (null = the process-global pool).
  util::ThreadPool* pool = nullptr;
};

/// Serialization of the sidecar maps that ride with a slice (the
/// kSliceSegment stream-0 blob): key-sharing degrees for the slice's
/// keys, revocation statuses for the slice's fingerprints. Exposed for
/// tests; the wire format is u32le counts with fixed-width entries.
std::string serialize_slice_sidecar(const corpus::KeyCountMap& key_counts,
                                    const corpus::RevocationStatusMap& statuses);
bool parse_slice_sidecar(std::string_view payload,
                         corpus::KeyCountMap& key_counts,
                         corpus::RevocationStatusMap& statuses,
                         std::string& error);

/// Builds a NotaryIndex over `snap` (injecting its sidecar maps) and
/// publishes it to `service` with the snapshot's delta. The shared
/// epoch-publication helper of every live daemon path — ingest loops and
/// slice merges go through the same door.
void publish_live_snapshot(const corpus::LiveSnapshot& snap,
                           NotaryService& service,
                           util::ThreadPool* pool = nullptr);

class ReshardHost {
 public:
  ReshardHost(corpus::LiveCorpus& live, NotaryService& service,
              ReshardHostOptions options = {});
  ~ReshardHost();

  ReshardHost(const ReshardHost&) = delete;
  ReshardHost& operator=(const ReshardHost&) = delete;

  /// Intercepts the reshard control frames (kSliceBegin / kSliceSegment /
  /// kSliceDone / kSliceSend / kSliceRetire), appending the complete
  /// encoded response to `out` and returning true. Any other frame type
  /// returns false untouched — the caller passes it on to its
  /// NotaryService. Thread-safe.
  bool handle(netio::FrameType type, std::string_view payload,
              std::string& out);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace sm::notary
