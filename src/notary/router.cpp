#include "notary/router.h"

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <future>
#include <utility>

#include "notary/batch.h"

namespace sm::notary {
namespace {

std::string unavailable_reason(std::size_t shard,
                               std::pair<std::uint8_t, std::uint8_t> range) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "shard %zu (prefix %u-%u) unavailable",
                shard, range.first, range.second);
  return buf;
}

}  // namespace

struct RouterService::Impl {
  struct Shard {
    std::vector<std::size_t> backends;  // indices into the flat pool
    std::atomic<std::size_t> next{0};   // replica round-robin cursor
    std::atomic<std::uint64_t> unavailable{0};  // calls failed on every replica
  };

  std::vector<std::unique_ptr<Shard>> shards;
  std::unique_ptr<netio::ClientPool> pool;

  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> queries{0};
  std::atomic<std::uint64_t> query_errors{0};
  std::atomic<std::uint64_t> batch_queries{0};
  std::atomic<std::uint64_t> batch_entries{0};
  std::atomic<std::uint64_t> batch_entry_errors{0};
  std::atomic<std::uint64_t> revocation_queries{0};
  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> pings{0};
  std::atomic<std::uint64_t> stats_requests{0};
  std::atomic<std::uint64_t> snapshot_requests{0};
  std::atomic<std::uint64_t> bad_requests{0};

  std::size_t shard_of(std::uint8_t first_byte) const {
    // Exact inverse of the lo = i*256/N partition, including when N does
    // not divide 256.
    return ((static_cast<std::size_t>(first_byte) + 1) * shards.size() - 1) /
           256;
  }

  std::pair<std::uint8_t, std::uint8_t> shard_range(std::size_t i) const {
    const std::size_t n = shards.size();
    return {static_cast<std::uint8_t>(i * 256 / n),
            static_cast<std::uint8_t>((i + 1) * 256 / n - 1)};
  }

  /// Replica order for one call: round-robin start, healthy replicas
  /// first, unhealthy ones kept as last-resort tail (a marked-down
  /// backend may have recovered between probes).
  std::vector<std::size_t> replica_order(Shard& shard) {
    const std::size_t n = shard.backends.size();
    const std::size_t start =
        shard.next.fetch_add(1, std::memory_order_relaxed) % n;
    std::vector<std::size_t> order;
    order.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t b = shard.backends[(start + i) % n];
      if (pool->healthy(b)) order.push_back(b);
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t b = shard.backends[(start + i) % n];
      if (!pool->healthy(b)) order.push_back(b);
    }
    return order;
  }

  /// Forwards one frame to the shard, retrying across replicas. Returns
  /// false if every replica failed.
  bool forward(std::size_t shard_index, netio::FrameType type,
               std::string_view payload, netio::Frame& out) {
    Shard& shard = *shards[shard_index];
    bool first = true;
    for (const std::size_t backend : replica_order(shard)) {
      if (!first) retries.fetch_add(1, std::memory_order_relaxed);
      first = false;
      netio::CallResult result = pool->call(backend, type, payload).get();
      if (result.ok()) {
        out = std::move(result.response);
        return true;
      }
    }
    shard.unavailable.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  /// Routes one single-fingerprint request (kQuery or kRevocationQuery —
  /// the forwarded frame carries `type` through verbatim) to the shard
  /// owning the fingerprint's first byte.
  netio::Frame handle_query(netio::FrameType type, std::string_view payload) {
    queries.fetch_add(1, std::memory_order_relaxed);
    if (payload.empty()) {
      bad_requests.fetch_add(1, std::memory_order_relaxed);
      return {netio::FrameType::kError,
              "query payload must carry at least the fingerprint's first "
              "byte to route on"};
    }
    const std::size_t s =
        shard_of(static_cast<std::uint8_t>(payload[0]));
    netio::Frame response;
    if (!forward(s, type, payload, response)) {
      query_errors.fetch_add(1, std::memory_order_relaxed);
      return {netio::FrameType::kError,
              unavailable_reason(s, shard_range(s))};
    }
    return response;  // backend bytes pass through verbatim
  }

  /// Scatter/gathers one batch request. `type` is the sub-frame request
  /// type sent to each shard (kBatchQuery or kRevocationQuery); both
  /// answer kBatchInfo, so the gather path is shared.
  netio::Frame handle_batch(netio::FrameType type, std::string_view payload) {
    batch_queries.fetch_add(1, std::memory_order_relaxed);
    std::vector<scan::CertFingerprint> fps;
    if (!parse_batch_query(payload, fps)) {
      bad_requests.fetch_add(1, std::memory_order_relaxed);
      return {netio::FrameType::kError,
              "batch query payload must be a u32le count followed by "
              "that many 16-byte fingerprints"};
    }
    batch_entries.fetch_add(fps.size(), std::memory_order_relaxed);

    // Scatter: group entries by shard, remembering each one's original
    // position so the gathered response preserves request order.
    std::vector<std::vector<std::size_t>> positions(shards.size());
    std::vector<std::vector<scan::CertFingerprint>> groups(shards.size());
    for (std::size_t i = 0; i < fps.size(); ++i) {
      const std::size_t s = shard_of(fps[i][0]);
      positions[s].push_back(i);
      groups[s].push_back(fps[i]);
    }

    // One concurrent first attempt per shard; failures retry serially in
    // the gather loop below (forward() handles the replica walk).
    struct SubBatch {
      std::size_t shard = 0;
      std::string request;
      std::future<netio::CallResult> first_attempt;
    };
    std::vector<SubBatch> subs;
    for (std::size_t s = 0; s < shards.size(); ++s) {
      if (groups[s].empty()) continue;
      SubBatch sub;
      sub.shard = s;
      sub.request = encode_batch_query(groups[s]);
      const std::size_t backend = replica_order(*shards[s]).front();
      sub.first_attempt = pool->call(backend, type, sub.request);
      subs.push_back(std::move(sub));
    }

    std::vector<BatchEntry> entries(fps.size());
    for (SubBatch& sub : subs) {
      const std::size_t count = positions[sub.shard].size();
      std::vector<BatchEntry> shard_entries;
      bool ok = false;
      netio::CallResult first = sub.first_attempt.get();
      if (first.ok() &&
          first.response.type == netio::FrameType::kBatchInfo &&
          parse_batch_info(first.response.payload, shard_entries) &&
          shard_entries.size() == count) {
        ok = true;
      } else {
        // First replica failed (or answered garbage): walk the rest.
        netio::Frame response;
        if (forward(sub.shard, type, sub.request, response) &&
            response.type == netio::FrameType::kBatchInfo &&
            parse_batch_info(response.payload, shard_entries) &&
            shard_entries.size() == count) {
          ok = true;
        }
      }
      if (ok) {
        for (std::size_t i = 0; i < count; ++i) {
          entries[positions[sub.shard][i]] = std::move(shard_entries[i]);
        }
      } else {
        batch_entry_errors.fetch_add(count, std::memory_order_relaxed);
        const std::string reason =
            unavailable_reason(sub.shard, shard_range(sub.shard));
        for (const std::size_t pos : positions[sub.shard]) {
          entries[pos] = {netio::FrameType::kError, reason};
        }
      }
    }

    std::string body =
        encode_batch_info_header(static_cast<std::uint32_t>(entries.size()));
    for (const BatchEntry& entry : entries) {
      append_batch_entry(body, entry.status, entry.body);
    }
    return {netio::FrameType::kBatchInfo, std::move(body)};
  }

  netio::Frame handle_snapshot() {
    snapshot_requests.fetch_add(1, std::memory_order_relaxed);
    // Scatter to every shard; a shard's staleness bound is its own, so
    // the aggregate view labels each section with the prefix range.
    std::string body;
    for (std::size_t s = 0; s < shards.size(); ++s) {
      const auto range = shard_range(s);
      char header[64];
      std::snprintf(header, sizeof header, "shard %zu (prefix %u-%u):\n", s,
                    range.first, range.second);
      body += header;
      netio::Frame response;
      if (forward(s, netio::FrameType::kSnapshot, {}, response) &&
          response.type == netio::FrameType::kSnapshotInfo) {
        body += response.payload;
      } else {
        body += "unavailable\n";
      }
    }
    return {netio::FrameType::kSnapshotInfo, std::move(body)};
  }

  std::string render_stats() const {
    std::string out;
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "router-stats\n"
        "shards: %zu\n"
        "requests: %" PRIu64 "\n"
        "queries: %" PRIu64 " (failed %" PRIu64 ")\n"
        "batch-queries: %" PRIu64 " (entries %" PRIu64 ", entry-errors %"
        PRIu64 ")\n"
        "revocation-queries: %" PRIu64 "\n"
        "retries: %" PRIu64 "\n"
        "pings: %" PRIu64 "\n"
        "stats-requests: %" PRIu64 "\n"
        "snapshot-requests: %" PRIu64 "\n"
        "bad-requests: %" PRIu64 "\n",
        shards.size(), requests.load(std::memory_order_relaxed),
        queries.load(std::memory_order_relaxed),
        query_errors.load(std::memory_order_relaxed),
        batch_queries.load(std::memory_order_relaxed),
        batch_entries.load(std::memory_order_relaxed),
        batch_entry_errors.load(std::memory_order_relaxed),
        revocation_queries.load(std::memory_order_relaxed),
        retries.load(std::memory_order_relaxed),
        pings.load(std::memory_order_relaxed),
        stats_requests.load(std::memory_order_relaxed),
        snapshot_requests.load(std::memory_order_relaxed),
        bad_requests.load(std::memory_order_relaxed));
    out = buf;
    for (std::size_t s = 0; s < shards.size(); ++s) {
      const auto range = shard_range(s);
      std::snprintf(buf, sizeof buf,
                    "shard %zu (prefix %u-%u): unavailable %" PRIu64 "\n", s,
                    range.first, range.second,
                    shards[s]->unavailable.load(std::memory_order_relaxed));
      out += buf;
      for (const std::size_t b : shards[s]->backends) {
        const netio::Endpoint& ep = pool->backend(b);
        const netio::BackendCounters c = pool->counters(b);
        std::snprintf(
            buf, sizeof buf,
            "  backend %s:%u: %s requests %" PRIu64 " ok %" PRIu64
            " connect-errors %" PRIu64 " timeouts %" PRIu64 " io-errors %"
            PRIu64 " pings-ok %" PRIu64 " pings-failed %" PRIu64
            " mark-downs %" PRIu64 " reconnects %" PRIu64 "\n",
            ep.host.c_str(), ep.port,
            pool->healthy(b) ? "healthy" : "down", c.requests, c.ok,
            c.connect_errors, c.timeouts, c.io_errors, c.pings_ok,
            c.pings_failed, c.mark_downs, c.reconnects);
        out += buf;
      }
    }
    return out;
  }
};

RouterService::RouterService(RouterConfig config)
    : impl_(std::make_unique<Impl>()) {
  std::vector<netio::Endpoint> endpoints;
  for (const RouterShard& shard : config.shards) {
    auto impl_shard = std::make_unique<Impl::Shard>();
    for (const netio::Endpoint& replica : shard.replicas) {
      impl_shard->backends.push_back(endpoints.size());
      endpoints.push_back(replica);
    }
    impl_->shards.push_back(std::move(impl_shard));
  }
  impl_->pool = std::make_unique<netio::ClientPool>(std::move(endpoints),
                                                    config.pool);
}

RouterService::~RouterService() = default;

void RouterService::handle_into(netio::FrameType type,
                                std::string_view payload, std::string& out) {
  impl_->requests.fetch_add(1, std::memory_order_relaxed);
  switch (type) {
    case netio::FrameType::kQuery: {
      const netio::Frame r =
          impl_->handle_query(netio::FrameType::kQuery, payload);
      netio::encode_frame_into(out, r.type, r.payload);
      return;
    }
    case netio::FrameType::kBatchQuery: {
      const netio::Frame r =
          impl_->handle_batch(netio::FrameType::kBatchQuery, payload);
      netio::encode_frame_into(out, r.type, r.payload);
      return;
    }
    case netio::FrameType::kRevocationQuery: {
      impl_->revocation_queries.fetch_add(1, std::memory_order_relaxed);
      // Same length dispatch as the backend: 16/32 bytes is the single
      // form (routed like kQuery on the fingerprint's first byte), any
      // other length is the batch form (scattered with kRevocationQuery
      // sub-frames; each shard answers kBatchInfo). The forwarded request
      // type stays kRevocationQuery either way, so backend bytes — and
      // therefore the gathered response — match an unsharded notary's.
      const netio::Frame r =
          payload.size() == std::tuple_size_v<scan::CertFingerprint> ||
                  payload.size() == 32
              ? impl_->handle_query(netio::FrameType::kRevocationQuery,
                                    payload)
              : impl_->handle_batch(netio::FrameType::kRevocationQuery,
                                    payload);
      netio::encode_frame_into(out, r.type, r.payload);
      return;
    }
    case netio::FrameType::kPing:
      impl_->pings.fetch_add(1, std::memory_order_relaxed);
      // Zero-copy echo: the request payload is framed straight into the
      // connection buffer, never copied into a response string.
      netio::encode_frame_into(out, netio::FrameType::kPong, payload);
      return;
    case netio::FrameType::kStats: {
      impl_->stats_requests.fetch_add(1, std::memory_order_relaxed);
      netio::FrameWriter frame(out, netio::FrameType::kStatsText);
      out += impl_->render_stats();
      frame.finish();
      return;
    }
    case netio::FrameType::kSnapshot: {
      const netio::Frame r = impl_->handle_snapshot();
      netio::encode_frame_into(out, r.type, r.payload);
      return;
    }
    default:
      impl_->bad_requests.fetch_add(1, std::memory_order_relaxed);
      netio::encode_frame_into(out, netio::FrameType::kError,
                               "unsupported request frame");
      return;
  }
}

netio::Frame RouterService::handle(netio::FrameType type,
                                   std::string_view payload) {
  std::string buf;
  handle_into(type, payload, buf);
  netio::Frame response;
  response.type =
      static_cast<netio::FrameType>(static_cast<std::uint8_t>(buf[0]));
  response.payload.assign(
      buf.data() + netio::kFrameHeaderSize,
      buf.size() - netio::kFrameHeaderSize - netio::kFrameTrailerSize);
  return response;
}

std::size_t RouterService::shard_of(std::uint8_t first_byte) const {
  return impl_->shard_of(first_byte);
}

std::size_t RouterService::shard_count() const {
  return impl_->shards.size();
}

std::pair<std::uint8_t, std::uint8_t> RouterService::shard_range(
    std::size_t index) const {
  return impl_->shard_range(index);
}

std::string RouterService::render_stats() const {
  return impl_->render_stats();
}

const netio::ClientPool& RouterService::pool() const { return *impl_->pool; }

}  // namespace sm::notary
