#include "notary/router.h"

#include <array>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <future>
#include <mutex>
#include <utility>

#include "notary/batch.h"

namespace sm::notary {
namespace {

std::string unavailable_reason(std::size_t shard,
                               std::pair<std::uint8_t, std::uint8_t> range) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "shard %zu (prefix %u-%u) unavailable",
                shard, range.first, range.second);
  return buf;
}

}  // namespace

struct RouterService::Impl {
  /// Mutable per-entry state, shared_ptr'd so a map swap can carry it
  /// over: a swap that keeps a range intact keeps its round-robin cursor
  /// and its unavailable counter, so ROUTER-STATS stays continuous
  /// across epochs for ranges that didn't move.
  struct EntryState {
    std::atomic<std::size_t> next{0};  // replica round-robin cursor
    std::atomic<std::uint64_t> unavailable{0};  // failed on every replica
  };

  struct Entry {
    std::uint8_t lo = 0;
    std::uint8_t hi = 0;
    std::vector<std::size_t> backends;  // indices into the flat pool
    std::shared_ptr<EntryState> state;
  };

  /// One immutable compiled routing table. The data plane loads the
  /// current table once per request and works off that snapshot; a
  /// concurrent kMapUpdate publishes a successor without disturbing it.
  struct RoutingTable {
    PrefixMap source;  // the map as received (kMapInfo serves this back)
    std::vector<Entry> entries;
    // byte -> entry index. Entries cap at 256 and cover every byte, so
    // an index always fits and every byte resolves.
    std::array<std::uint8_t, 256> entry_of{};
  };

  std::unique_ptr<netio::ClientPool> pool;
  std::atomic<std::shared_ptr<const RoutingTable>> table{nullptr};
  std::mutex map_mutex;  // serializes apply_map (the swap, not the reads)

  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> queries{0};
  std::atomic<std::uint64_t> query_errors{0};
  std::atomic<std::uint64_t> batch_queries{0};
  std::atomic<std::uint64_t> batch_entries{0};
  std::atomic<std::uint64_t> batch_entry_errors{0};
  std::atomic<std::uint64_t> revocation_queries{0};
  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> pings{0};
  std::atomic<std::uint64_t> stats_requests{0};
  std::atomic<std::uint64_t> snapshot_requests{0};
  std::atomic<std::uint64_t> map_requests{0};
  std::atomic<std::uint64_t> map_swaps{0};
  std::atomic<std::uint64_t> bad_requests{0};

  std::shared_ptr<const RoutingTable> snapshot() const {
    return table.load(std::memory_order_acquire);
  }

  /// Compiles and publishes `map`. With `require_advance` the epoch must
  /// strictly exceed the live table's (the kMapUpdate rule); the initial
  /// map from the constructor skips that check.
  bool apply_map(const PrefixMap& map, bool require_advance,
                 std::string& error) {
    if (!validate_prefix_map(map, error)) return false;
    std::lock_guard lock(map_mutex);
    const std::shared_ptr<const RoutingTable> cur = snapshot();
    if (require_advance && cur && map.epoch <= cur->source.epoch) {
      char buf[96];
      std::snprintf(buf, sizeof buf,
                    "map epoch %" PRIu64 " does not advance current %" PRIu64,
                    map.epoch, cur->source.epoch);
      error = buf;
      return false;
    }
    auto next = std::make_shared<RoutingTable>();
    next->source = map;
    next->entries.reserve(map.entries.size());
    for (const PrefixMapEntry& me : map.entries) {
      Entry entry;
      entry.lo = me.lo;
      entry.hi = me.hi;
      for (const netio::Endpoint& replica : me.replicas) {
        const std::size_t b = pool->add_backend(replica);
        if (b == netio::ClientPool::kNoBackend) {
          error = "pool is shutting down";
          return false;
        }
        entry.backends.push_back(b);
      }
      // Same range as a live entry: inherit its cursor/counter so the
      // swap is invisible in the stats of untouched ranges.
      if (cur) {
        for (const Entry& old : cur->entries) {
          if (old.lo == me.lo && old.hi == me.hi) {
            entry.state = old.state;
            break;
          }
        }
      }
      if (!entry.state) entry.state = std::make_shared<EntryState>();
      next->entries.push_back(std::move(entry));
    }
    for (std::size_t i = 0; i < next->entries.size(); ++i) {
      const Entry& e = next->entries[i];
      for (int b = e.lo; b <= e.hi; ++b) {
        next->entry_of[static_cast<std::size_t>(b)] =
            static_cast<std::uint8_t>(i);
      }
    }
    table.store(std::move(next), std::memory_order_release);
    if (cur) map_swaps.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  static std::pair<std::uint8_t, std::uint8_t> entry_range(const Entry& e) {
    return {e.lo, e.hi};
  }

  /// Replica order for one call: round-robin start, healthy replicas
  /// first, unhealthy ones kept as last-resort tail (a marked-down
  /// backend may have recovered between probes).
  std::vector<std::size_t> replica_order(const Entry& entry) {
    const std::size_t n = entry.backends.size();
    const std::size_t start =
        entry.state->next.fetch_add(1, std::memory_order_relaxed) % n;
    std::vector<std::size_t> order;
    order.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t b = entry.backends[(start + i) % n];
      if (pool->healthy(b)) order.push_back(b);
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t b = entry.backends[(start + i) % n];
      if (!pool->healthy(b)) order.push_back(b);
    }
    return order;
  }

  /// Forwards one frame to a map entry's replicas, retrying across them.
  /// Returns false if every replica failed.
  bool forward(const Entry& entry, netio::FrameType type,
               std::string_view payload, netio::Frame& out) {
    bool first = true;
    for (const std::size_t backend : replica_order(entry)) {
      if (!first) retries.fetch_add(1, std::memory_order_relaxed);
      first = false;
      netio::CallResult result = pool->call(backend, type, payload).get();
      if (result.ok()) {
        out = std::move(result.response);
        return true;
      }
    }
    entry.state->unavailable.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  /// Routes one single-fingerprint request (kQuery or kRevocationQuery —
  /// the forwarded frame carries `type` through verbatim) to the entry
  /// owning the fingerprint's first byte.
  netio::Frame handle_query(netio::FrameType type, std::string_view payload) {
    queries.fetch_add(1, std::memory_order_relaxed);
    if (payload.empty()) {
      bad_requests.fetch_add(1, std::memory_order_relaxed);
      return {netio::FrameType::kError,
              "query payload must carry at least the fingerprint's first "
              "byte to route on"};
    }
    const std::shared_ptr<const RoutingTable> t = snapshot();
    const std::size_t s =
        t->entry_of[static_cast<std::uint8_t>(payload[0])];
    const Entry& entry = t->entries[s];
    netio::Frame response;
    if (!forward(entry, type, payload, response)) {
      query_errors.fetch_add(1, std::memory_order_relaxed);
      return {netio::FrameType::kError,
              unavailable_reason(s, entry_range(entry))};
    }
    return response;  // backend bytes pass through verbatim
  }

  /// Scatter/gathers one batch request. `type` is the sub-frame request
  /// type sent to each entry (kBatchQuery or kRevocationQuery); both
  /// answer kBatchInfo, so the gather path is shared.
  netio::Frame handle_batch(netio::FrameType type, std::string_view payload) {
    batch_queries.fetch_add(1, std::memory_order_relaxed);
    std::vector<scan::CertFingerprint> fps;
    if (!parse_batch_query(payload, fps)) {
      bad_requests.fetch_add(1, std::memory_order_relaxed);
      return {netio::FrameType::kError,
              "batch query payload must be a u32le count followed by "
              "that many 16-byte fingerprints"};
    }
    batch_entries.fetch_add(fps.size(), std::memory_order_relaxed);

    // One table snapshot for the whole scatter/gather: every entry of
    // this batch routes under the same epoch even if a swap lands midway.
    const std::shared_ptr<const RoutingTable> t = snapshot();

    // Scatter: group entries by map entry, remembering each one's
    // original position so the gathered response preserves request order.
    std::vector<std::vector<std::size_t>> positions(t->entries.size());
    std::vector<std::vector<scan::CertFingerprint>> groups(t->entries.size());
    for (std::size_t i = 0; i < fps.size(); ++i) {
      const std::size_t s = t->entry_of[fps[i][0]];
      positions[s].push_back(i);
      groups[s].push_back(fps[i]);
    }

    // One concurrent first attempt per entry; failures retry serially in
    // the gather loop below (forward() handles the replica walk).
    struct SubBatch {
      std::size_t shard = 0;
      std::string request;
      std::future<netio::CallResult> first_attempt;
    };
    std::vector<SubBatch> subs;
    for (std::size_t s = 0; s < t->entries.size(); ++s) {
      if (groups[s].empty()) continue;
      SubBatch sub;
      sub.shard = s;
      sub.request = encode_batch_query(groups[s]);
      const std::size_t backend = replica_order(t->entries[s]).front();
      sub.first_attempt = pool->call(backend, type, sub.request);
      subs.push_back(std::move(sub));
    }

    std::vector<BatchEntry> entries(fps.size());
    for (SubBatch& sub : subs) {
      const Entry& shard = t->entries[sub.shard];
      const std::size_t count = positions[sub.shard].size();
      std::vector<BatchEntry> shard_entries;
      bool ok = false;
      netio::CallResult first = sub.first_attempt.get();
      if (first.ok() &&
          first.response.type == netio::FrameType::kBatchInfo &&
          parse_batch_info(first.response.payload, shard_entries) &&
          shard_entries.size() == count) {
        ok = true;
      } else {
        // First replica failed (or answered garbage): walk the rest.
        netio::Frame response;
        if (forward(shard, type, sub.request, response) &&
            response.type == netio::FrameType::kBatchInfo &&
            parse_batch_info(response.payload, shard_entries) &&
            shard_entries.size() == count) {
          ok = true;
        }
      }
      if (ok) {
        for (std::size_t i = 0; i < count; ++i) {
          entries[positions[sub.shard][i]] = std::move(shard_entries[i]);
        }
      } else {
        batch_entry_errors.fetch_add(count, std::memory_order_relaxed);
        const std::string reason =
            unavailable_reason(sub.shard, entry_range(shard));
        for (const std::size_t pos : positions[sub.shard]) {
          entries[pos] = {netio::FrameType::kError, reason};
        }
      }
    }

    std::string body =
        encode_batch_info_header(static_cast<std::uint32_t>(entries.size()));
    for (const BatchEntry& entry : entries) {
      append_batch_entry(body, entry.status, entry.body);
    }
    return {netio::FrameType::kBatchInfo, std::move(body)};
  }

  netio::Frame handle_snapshot() {
    snapshot_requests.fetch_add(1, std::memory_order_relaxed);
    // Scatter to every entry; a shard's staleness bound is its own, so
    // the aggregate view labels each section with the prefix range.
    const std::shared_ptr<const RoutingTable> t = snapshot();
    std::string body;
    for (std::size_t s = 0; s < t->entries.size(); ++s) {
      const Entry& entry = t->entries[s];
      char header[64];
      std::snprintf(header, sizeof header, "shard %zu (prefix %u-%u):\n", s,
                    entry.lo, entry.hi);
      body += header;
      netio::Frame response;
      if (forward(entry, netio::FrameType::kSnapshot, {}, response) &&
          response.type == netio::FrameType::kSnapshotInfo) {
        body += response.payload;
      } else {
        body += "unavailable\n";
      }
    }
    return {netio::FrameType::kSnapshotInfo, std::move(body)};
  }

  netio::Frame handle_map_update(std::string_view payload) {
    map_requests.fetch_add(1, std::memory_order_relaxed);
    if (payload.empty()) {
      return {netio::FrameType::kMapInfo,
              serialize_prefix_map(snapshot()->source)};
    }
    PrefixMap map;
    std::string error;
    if (!parse_prefix_map(payload, map, error)) {
      bad_requests.fetch_add(1, std::memory_order_relaxed);
      return {netio::FrameType::kError, "map update rejected: " + error};
    }
    if (!apply_map(map, /*require_advance=*/true, error)) {
      return {netio::FrameType::kError, "map update rejected: " + error};
    }
    return {netio::FrameType::kMapInfo,
            serialize_prefix_map(snapshot()->source)};
  }

  std::string render_stats() const {
    const std::shared_ptr<const RoutingTable> t = snapshot();
    std::string out;
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "router-stats\n"
        "shards: %zu\n"
        "map-epoch: %" PRIu64 "\n"
        "map-swaps: %" PRIu64 "\n"
        "requests: %" PRIu64 "\n"
        "queries: %" PRIu64 " (failed %" PRIu64 ")\n"
        "batch-queries: %" PRIu64 " (entries %" PRIu64 ", entry-errors %"
        PRIu64 ")\n"
        "revocation-queries: %" PRIu64 "\n"
        "retries: %" PRIu64 "\n"
        "pings: %" PRIu64 "\n"
        "stats-requests: %" PRIu64 "\n"
        "snapshot-requests: %" PRIu64 "\n"
        "map-requests: %" PRIu64 "\n"
        "bad-requests: %" PRIu64 "\n",
        t->entries.size(), t->source.epoch,
        map_swaps.load(std::memory_order_relaxed),
        requests.load(std::memory_order_relaxed),
        queries.load(std::memory_order_relaxed),
        query_errors.load(std::memory_order_relaxed),
        batch_queries.load(std::memory_order_relaxed),
        batch_entries.load(std::memory_order_relaxed),
        batch_entry_errors.load(std::memory_order_relaxed),
        revocation_queries.load(std::memory_order_relaxed),
        retries.load(std::memory_order_relaxed),
        pings.load(std::memory_order_relaxed),
        stats_requests.load(std::memory_order_relaxed),
        snapshot_requests.load(std::memory_order_relaxed),
        map_requests.load(std::memory_order_relaxed),
        bad_requests.load(std::memory_order_relaxed));
    out = buf;
    for (std::size_t s = 0; s < t->entries.size(); ++s) {
      const Entry& entry = t->entries[s];
      std::snprintf(buf, sizeof buf,
                    "shard %zu (prefix %u-%u): unavailable %" PRIu64 "\n", s,
                    entry.lo, entry.hi,
                    entry.state->unavailable.load(std::memory_order_relaxed));
      out += buf;
      for (const std::size_t b : entry.backends) {
        const netio::Endpoint& ep = pool->backend(b);
        const netio::BackendCounters c = pool->counters(b);
        std::snprintf(
            buf, sizeof buf,
            "  backend %s:%u: %s requests %" PRIu64 " ok %" PRIu64
            " connect-errors %" PRIu64 " timeouts %" PRIu64 " io-errors %"
            PRIu64 " pings-ok %" PRIu64 " pings-failed %" PRIu64
            " mark-downs %" PRIu64 " reconnects %" PRIu64 "\n",
            ep.host.c_str(), ep.port,
            pool->healthy(b) ? "healthy" : "down", c.requests, c.ok,
            c.connect_errors, c.timeouts, c.io_errors, c.pings_ok,
            c.pings_failed, c.mark_downs, c.reconnects);
        out += buf;
      }
    }
    return out;
  }
};

RouterService::RouterService(RouterConfig config)
    : impl_(std::make_unique<Impl>()) {
  // The pool starts empty; apply_map registers every endpoint through
  // the same add_backend path a later kMapUpdate would use.
  impl_->pool = std::make_unique<netio::ClientPool>(
      std::vector<netio::Endpoint>{}, config.pool);
  std::vector<std::vector<netio::Endpoint>> replica_sets;
  replica_sets.reserve(config.shards.size());
  for (RouterShard& shard : config.shards) {
    replica_sets.push_back(std::move(shard.replicas));
  }
  std::string error;
  if (!impl_->apply_map(uniform_prefix_map(replica_sets),
                        /*require_advance=*/false, error)) {
    // An unroutable initial config (no shards, empty replica set) leaves
    // a deliberately empty table; every data-plane request answers
    // kError until a valid kMapUpdate arrives. Callers that want a hard
    // failure validate their flags first (sm_notary_router does).
    auto empty = std::make_shared<Impl::RoutingTable>();
    impl_->table.store(std::move(empty), std::memory_order_release);
  }
}

RouterService::~RouterService() = default;

void RouterService::handle_into(netio::FrameType type,
                                std::string_view payload, std::string& out) {
  impl_->requests.fetch_add(1, std::memory_order_relaxed);
  if (impl_->snapshot()->entries.empty()) {
    switch (type) {
      case netio::FrameType::kQuery:
      case netio::FrameType::kBatchQuery:
      case netio::FrameType::kRevocationQuery:
      case netio::FrameType::kSnapshot:
        netio::encode_frame_into(out, netio::FrameType::kError,
                                 "router has no routing map");
        return;
      default:
        break;  // control-plane frames still work on an empty table
    }
  }
  switch (type) {
    case netio::FrameType::kQuery: {
      const netio::Frame r =
          impl_->handle_query(netio::FrameType::kQuery, payload);
      netio::encode_frame_into(out, r.type, r.payload);
      return;
    }
    case netio::FrameType::kBatchQuery: {
      const netio::Frame r =
          impl_->handle_batch(netio::FrameType::kBatchQuery, payload);
      netio::encode_frame_into(out, r.type, r.payload);
      return;
    }
    case netio::FrameType::kRevocationQuery: {
      impl_->revocation_queries.fetch_add(1, std::memory_order_relaxed);
      // Same length dispatch as the backend: 16/32 bytes is the single
      // form (routed like kQuery on the fingerprint's first byte), any
      // other length is the batch form (scattered with kRevocationQuery
      // sub-frames; each shard answers kBatchInfo). The forwarded request
      // type stays kRevocationQuery either way, so backend bytes — and
      // therefore the gathered response — match an unsharded notary's.
      const netio::Frame r =
          payload.size() == std::tuple_size_v<scan::CertFingerprint> ||
                  payload.size() == 32
              ? impl_->handle_query(netio::FrameType::kRevocationQuery,
                                    payload)
              : impl_->handle_batch(netio::FrameType::kRevocationQuery,
                                    payload);
      netio::encode_frame_into(out, r.type, r.payload);
      return;
    }
    case netio::FrameType::kPing:
      impl_->pings.fetch_add(1, std::memory_order_relaxed);
      // Zero-copy echo: the request payload is framed straight into the
      // connection buffer, never copied into a response string.
      netio::encode_frame_into(out, netio::FrameType::kPong, payload);
      return;
    case netio::FrameType::kStats: {
      impl_->stats_requests.fetch_add(1, std::memory_order_relaxed);
      netio::FrameWriter frame(out, netio::FrameType::kStatsText);
      out += impl_->render_stats();
      frame.finish();
      return;
    }
    case netio::FrameType::kSnapshot: {
      const netio::Frame r = impl_->handle_snapshot();
      netio::encode_frame_into(out, r.type, r.payload);
      return;
    }
    case netio::FrameType::kMapUpdate: {
      const netio::Frame r = impl_->handle_map_update(payload);
      netio::encode_frame_into(out, r.type, r.payload);
      return;
    }
    default:
      impl_->bad_requests.fetch_add(1, std::memory_order_relaxed);
      netio::encode_frame_into(out, netio::FrameType::kError,
                               "unsupported request frame");
      return;
  }
}

netio::Frame RouterService::handle(netio::FrameType type,
                                   std::string_view payload) {
  std::string buf;
  handle_into(type, payload, buf);
  netio::Frame response;
  response.type =
      static_cast<netio::FrameType>(static_cast<std::uint8_t>(buf[0]));
  response.payload.assign(
      buf.data() + netio::kFrameHeaderSize,
      buf.size() - netio::kFrameHeaderSize - netio::kFrameTrailerSize);
  return response;
}

std::size_t RouterService::shard_of(std::uint8_t first_byte) const {
  return impl_->snapshot()->entry_of[first_byte];
}

std::size_t RouterService::shard_count() const {
  return impl_->snapshot()->entries.size();
}

std::pair<std::uint8_t, std::uint8_t> RouterService::shard_range(
    std::size_t index) const {
  const std::shared_ptr<const Impl::RoutingTable> t = impl_->snapshot();
  return {t->entries[index].lo, t->entries[index].hi};
}

PrefixMap RouterService::current_map() const {
  return impl_->snapshot()->source;
}

std::uint64_t RouterService::map_epoch() const {
  return impl_->snapshot()->source.epoch;
}

bool RouterService::apply_map(const PrefixMap& map, std::string& error) {
  return impl_->apply_map(map, /*require_advance=*/true, error);
}

std::string RouterService::render_stats() const {
  return impl_->render_stats();
}

const netio::ClientPool& RouterService::pool() const { return *impl_->pool; }

}  // namespace sm::notary
