#include "notary/prefix_map.h"

#include <cstdio>

#include "netio/frame.h"

namespace sm::notary {

namespace {

void put_u16le(std::string& out, std::uint16_t value) {
  out.push_back(static_cast<char>(value & 0xff));
  out.push_back(static_cast<char>((value >> 8) & 0xff));
}

std::uint16_t get_u16le(const char* p) {
  return static_cast<std::uint16_t>(
      static_cast<unsigned char>(p[0]) |
      static_cast<unsigned char>(p[1]) << 8);
}

}  // namespace

bool validate_prefix_map(const PrefixMap& map, std::string& error) {
  if (map.entries.empty()) {
    error = "prefix map has no entries";
    return false;
  }
  if (map.entries.size() > 256) {
    error = "prefix map has more than 256 entries";
    return false;
  }
  int expected_lo = 0;
  for (std::size_t i = 0; i < map.entries.size(); ++i) {
    const PrefixMapEntry& e = map.entries[i];
    char buf[96];
    if (e.lo != expected_lo) {
      std::snprintf(buf, sizeof buf,
                    "entry %zu starts at %u, expected %d (ranges must be "
                    "adjacent and cover 0-255)",
                    i, e.lo, expected_lo);
      error = buf;
      return false;
    }
    if (e.hi < e.lo) {
      std::snprintf(buf, sizeof buf, "entry %zu range %u-%u is inverted", i,
                    e.lo, e.hi);
      error = buf;
      return false;
    }
    if (e.replicas.empty()) {
      std::snprintf(buf, sizeof buf, "entry %zu (%u-%u) has no replicas", i,
                    e.lo, e.hi);
      error = buf;
      return false;
    }
    for (const netio::Endpoint& ep : e.replicas) {
      if (ep.host.empty() || ep.host.size() > 255 || ep.port == 0) {
        std::snprintf(buf, sizeof buf,
                      "entry %zu (%u-%u) has a malformed replica endpoint", i,
                      e.lo, e.hi);
        error = buf;
        return false;
      }
    }
    expected_lo = static_cast<int>(e.hi) + 1;
  }
  if (expected_lo != 256) {
    error = "prefix map does not cover bytes up to 255";
    return false;
  }
  return true;
}

PrefixMap uniform_prefix_map(
    const std::vector<std::vector<netio::Endpoint>>& replica_sets,
    std::uint64_t epoch) {
  PrefixMap map;
  map.epoch = epoch;
  const std::size_t n = replica_sets.size();
  map.entries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    PrefixMapEntry entry;
    entry.lo = static_cast<std::uint8_t>(i * 256 / n);
    entry.hi = static_cast<std::uint8_t>((i + 1) * 256 / n - 1);
    entry.replicas = replica_sets[i];
    map.entries.push_back(std::move(entry));
  }
  return map;
}

std::size_t prefix_map_entry_of(const PrefixMap& map,
                                std::uint8_t first_byte) {
  // Maps top out at 256 entries; a linear scan over the (cache-resident)
  // entry array is fine for control-plane callers. The router's data
  // plane never calls this — it compiles a byte->entry table instead.
  for (std::size_t i = 0; i < map.entries.size(); ++i) {
    if (first_byte <= map.entries[i].hi) return i;
  }
  return map.entries.empty() ? 0 : map.entries.size() - 1;
}

std::string serialize_prefix_map(const PrefixMap& map) {
  std::string out;
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((map.epoch >> shift) & 0xff));
  }
  put_u16le(out, static_cast<std::uint16_t>(map.entries.size()));
  for (const PrefixMapEntry& e : map.entries) {
    out.push_back(static_cast<char>(e.lo));
    out.push_back(static_cast<char>(e.hi));
    out.push_back(static_cast<char>(e.replicas.size()));
    for (const netio::Endpoint& ep : e.replicas) {
      put_u16le(out, ep.port);
      out.push_back(static_cast<char>(ep.host.size()));
      out.append(ep.host);
    }
  }
  return out;
}

bool parse_prefix_map(std::string_view payload, PrefixMap& out,
                      std::string& error) {
  const char* p = payload.data();
  std::size_t left = payload.size();
  auto need = [&](std::size_t n) {
    if (left < n) {
      error = "prefix map payload truncated";
      return false;
    }
    return true;
  };
  if (!need(10)) return false;
  PrefixMap map;
  map.epoch = 0;
  for (int i = 7; i >= 0; --i) {
    map.epoch = map.epoch << 8 | static_cast<unsigned char>(p[i]);
  }
  const std::uint16_t count = get_u16le(p + 8);
  p += 10;
  left -= 10;
  if (count == 0 || count > 256) {
    error = "prefix map entry count out of range";
    return false;
  }
  map.entries.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) {
    if (!need(3)) return false;
    PrefixMapEntry entry;
    entry.lo = static_cast<std::uint8_t>(p[0]);
    entry.hi = static_cast<std::uint8_t>(p[1]);
    const std::uint8_t replicas = static_cast<std::uint8_t>(p[2]);
    p += 3;
    left -= 3;
    if (replicas == 0) {
      error = "prefix map entry has zero replicas";
      return false;
    }
    entry.replicas.reserve(replicas);
    for (std::uint8_t r = 0; r < replicas; ++r) {
      if (!need(3)) return false;
      netio::Endpoint ep;
      ep.port = get_u16le(p);
      const std::uint8_t host_len = static_cast<std::uint8_t>(p[2]);
      p += 3;
      left -= 3;
      if (!need(host_len)) return false;
      ep.host.assign(p, host_len);
      p += host_len;
      left -= host_len;
      entry.replicas.push_back(std::move(ep));
    }
    map.entries.push_back(std::move(entry));
  }
  if (left != 0) {
    error = "prefix map payload has trailing bytes";
    return false;
  }
  if (!validate_prefix_map(map, error)) return false;
  out = std::move(map);
  return true;
}

std::string render_prefix_map(const PrefixMap& map) {
  std::string out = "epoch " + std::to_string(map.epoch) + "\n";
  char buf[16];
  for (const PrefixMapEntry& e : map.entries) {
    std::snprintf(buf, sizeof buf, "[%02x-%02x]", e.lo, e.hi);
    out += buf;
    for (const netio::Endpoint& ep : e.replicas) {
      out += ' ';
      out += ep.host;
      out += ':';
      out += std::to_string(ep.port);
    }
    out += '\n';
  }
  return out;
}

bool split_prefix_map_entry(PrefixMap& map, std::size_t index,
                            std::vector<netio::Endpoint> new_replicas,
                            std::string& error) {
  if (index >= map.entries.size()) {
    error = "split: entry index out of range";
    return false;
  }
  PrefixMapEntry& e = map.entries[index];
  if (e.lo == e.hi) {
    error = "split: entry covers a single byte, cannot split further";
    return false;
  }
  if (new_replicas.empty()) {
    error = "split: no replicas given for the new entry";
    return false;
  }
  const std::uint8_t mid =
      static_cast<std::uint8_t>(e.lo + (e.hi - e.lo) / 2);
  PrefixMapEntry upper;
  upper.lo = static_cast<std::uint8_t>(mid + 1);
  upper.hi = e.hi;
  upper.replicas = std::move(new_replicas);
  e.hi = mid;
  map.entries.insert(map.entries.begin() + static_cast<std::ptrdiff_t>(index) + 1,
                     std::move(upper));
  ++map.epoch;
  return true;
}

bool merge_prefix_map_entry(PrefixMap& map, std::size_t index,
                            std::string& error) {
  if (index + 1 >= map.entries.size()) {
    error = "merge: entry has no right neighbour";
    return false;
  }
  map.entries[index + 1].lo = map.entries[index].lo;
  map.entries.erase(map.entries.begin() + static_cast<std::ptrdiff_t>(index));
  ++map.epoch;
  return true;
}

}  // namespace sm::notary
