// Batch query/response payload codec, layered on the frame protocol.
//
// kBatchQuery payload (all integers little-endian):
//
//   offset  size   field
//   0       4      count (number of fingerprints; bounded by
//                  kMaxBatchEntries)
//   4       16*i   fingerprint[i]  (128-bit archive intern key)
//
// kBatchInfo payload: u32le count, then count entries of
//
//   offset  size   field
//   0       1      status (a response FrameType byte: kCertInfo,
//                  kNotFound, kRevocationInfo, or kError — exactly the
//                  type the same fingerprint would get as a standalone
//                  kQuery/kRevocationQuery)
//   1       4      length of body
//   5       len    body (byte-identical to the standalone response
//                  payload)
//
// Reusing response FrameType bytes as per-entry status makes "batch ==
// sequence of singles" a literal byte property, which the router relies
// on when it scatter/gathers sub-batches across shards.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "netio/frame.h"
#include "scan/cert_record.h"

namespace sm::notary {

/// Ceiling on fingerprints per kBatchQuery frame. 4096 * 16 bytes stays
/// comfortably below the frame codec's 1 MiB payload ceiling while the
/// typical *response* (dozens of rendered lines per entry) is what
/// actually bounds useful batch sizes.
inline constexpr std::size_t kMaxBatchEntries = 4096;

/// One decoded kBatchInfo entry: the response type and payload the
/// fingerprint would have received as a standalone kQuery.
struct BatchEntry {
  netio::FrameType status = netio::FrameType::kError;
  std::string body;

  friend bool operator==(const BatchEntry&, const BatchEntry&) = default;
};

/// Serializes a kBatchQuery payload.
std::string encode_batch_query(
    const std::vector<scan::CertFingerprint>& fingerprints);

/// Parses a kBatchQuery payload. Returns false (and leaves `out`
/// unspecified) if the payload is truncated, oversized, has a count
/// disagreeing with its size, or exceeds kMaxBatchEntries.
bool parse_batch_query(std::string_view payload,
                       std::vector<scan::CertFingerprint>& out);

/// Zero-copy alternative: validates the payload once and iterates the
/// fingerprints in place (no vector materialized — the service's batch
/// hot path reads them straight out of the request buffer). The view
/// borrows `payload`; it must outlive the view.
class BatchQueryView {
 public:
  /// Same validation rules as parse_batch_query.
  bool parse(std::string_view payload);

  std::uint32_t size() const { return count_; }

  scan::CertFingerprint fingerprint(std::uint32_t i) const {
    scan::CertFingerprint fp;
    std::memcpy(fp.data(), fps_ + static_cast<std::size_t>(i) * fp.size(),
                fp.size());
    return fp;
  }

 private:
  const char* fps_ = nullptr;
  std::uint32_t count_ = 0;
};

/// Appends one entry to a kBatchInfo payload under construction. Start
/// from encode_batch_info_header(count).
std::string encode_batch_info_header(std::uint32_t count);
void append_batch_entry(std::string& payload, netio::FrameType status,
                        std::string_view body);

/// Streaming form of append_batch_entry for bodies rendered in place:
/// begin_batch_entry writes the status byte and a length placeholder, the
/// caller appends the body bytes directly to `payload`, and
/// end_batch_entry patches the length. Returns the body start offset to
/// pass back to end_batch_entry.
std::size_t begin_batch_entry(std::string& payload, netio::FrameType status);
void end_batch_entry(std::string& payload, std::size_t body_start);

/// Parses a kBatchInfo payload. Returns false on any structural
/// violation (truncated entry, trailing bytes, non-response status
/// byte, count above kMaxBatchEntries).
bool parse_batch_info(std::string_view payload, std::vector<BatchEntry>& out);

}  // namespace sm::notary
