#include "analysis/revocation.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "util/stats.h"

namespace sm::analysis {

RevocationBreakdown compute_revocation_breakdown(
    const scan::ScanArchive& archive,
    const std::unordered_map<scan::CertFingerprint, pki::RevocationStatus,
                             scan::FingerprintHash>& statuses,
    std::size_t top_issuers) {
  RevocationBreakdown out;
  // Ordered map so the tie-break (equal revoked counts) is deterministic
  // by issuer name, independent of hash iteration order.
  std::map<std::string, std::uint64_t> revoked_by_issuer;
  for (const scan::CertRecord& cert : archive.certs()) {
    auto status = pki::RevocationStatus::kUnknown;
    const auto it = statuses.find(cert.fingerprint);
    if (it != statuses.end()) status = it->second;
    const auto i = static_cast<std::size_t>(status);
    if (cert.valid) {
      ++out.valid[i];
      ++out.valid_total;
    } else {
      ++out.invalid[i];
      ++out.invalid_total;
    }
    if (status == pki::RevocationStatus::kRevoked) {
      ++revoked_by_issuer[cert.issuer_cn];
    }
  }
  out.top_revoked_issuers.reserve(revoked_by_issuer.size());
  for (const auto& [issuer, revoked] : revoked_by_issuer) {
    out.top_revoked_issuers.push_back({issuer, revoked});
  }
  std::stable_sort(out.top_revoked_issuers.begin(),
                   out.top_revoked_issuers.end(),
                   [](const RevocationBreakdown::IssuerRow& a,
                      const RevocationBreakdown::IssuerRow& b) {
                     return a.revoked > b.revoked;
                   });
  if (out.top_revoked_issuers.size() > top_issuers) {
    out.top_revoked_issuers.resize(top_issuers);
  }
  return out;
}

std::string render_revocation_table(const RevocationBreakdown& b) {
  std::string out = "revocation statuses: invalid vs. valid certs\n";
  char buf[160];
  for (std::size_t i = 0; i < RevocationBreakdown::kStatuses; ++i) {
    const auto status = static_cast<pki::RevocationStatus>(i);
    const auto share = [](std::uint64_t n, std::uint64_t total) {
      return total == 0 ? 0.0
                        : static_cast<double>(n) / static_cast<double>(total);
    };
    std::snprintf(
        buf, sizeof buf, "  %-12s invalid %8llu (%s) | valid %8llu (%s)\n",
        pki::revocation_status_cstr(status),
        static_cast<unsigned long long>(b.invalid[i]),
        util::percent(share(b.invalid[i], b.invalid_total)).c_str(),
        static_cast<unsigned long long>(b.valid[i]),
        util::percent(share(b.valid[i], b.valid_total)).c_str());
    out += buf;
  }
  if (!b.top_revoked_issuers.empty()) {
    out += "  top revoked issuers:\n";
    for (const RevocationBreakdown::IssuerRow& row : b.top_revoked_issuers) {
      std::snprintf(buf, sizeof buf, "    %-40s %llu\n", row.issuer_cn.c_str(),
                    static_cast<unsigned long long>(row.revoked));
      out += buf;
    }
  }
  return out;
}

}  // namespace sm::analysis
