// Figure 1: the per-/8 host discrepancy between the two scan campaigns on a
// day where both scanned, plus the BGP-prefix blacklisting attribution of
// §4.1.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "scan/archive.h"

namespace sm::analysis {

/// One Figure 1 point: a /8 network and the fraction of its hosts unique to
/// each campaign's scan.
struct Slash8Discrepancy {
  std::uint32_t first_octet = 0;
  std::uint64_t umich_hosts = 0;
  std::uint64_t rapid7_hosts = 0;
  double umich_unique_fraction = 0;   ///< |U \ R| / |U| (0 when |U| = 0)
  double rapid7_unique_fraction = 0;  ///< |R \ U| / |R| (0 when |R| = 0)
};

/// The full Figure 1 dataset plus §4.1 aggregates.
struct ScanDiscrepancy {
  std::size_t umich_scan = 0;   ///< scan indices compared
  std::size_t rapid7_scan = 0;
  std::vector<Slash8Discrepancy> per_slash8;
  std::uint64_t umich_total_hosts = 0;
  std::uint64_t rapid7_total_hosts = 0;
  std::uint64_t umich_only_hosts = 0;
  std::uint64_t rapid7_only_hosts = 0;
};

/// Picks the closest-in-time (UMich, Rapid7) scan pair — a dual-scan day
/// when one exists — and computes the per-/8 unique-host fractions.
/// Returns nullopt when the archive lacks one of the campaigns.
std::optional<ScanDiscrepancy> compute_scan_discrepancy(
    const scan::ScanArchive& archive);

}  // namespace sm::analysis
