#include "analysis/longevity.h"

namespace sm::analysis {

namespace {

bool version_legal(const scan::CertRecord& cert) {
  return cert.raw_version >= 0 && cert.raw_version <= 2;
}

}  // namespace

ValidityBreakdown compute_validity_breakdown(
    const scan::ScanArchive& archive) {
  ValidityBreakdown out;
  for (const scan::CertRecord& cert : archive.certs()) {
    if (!version_legal(cert)) {
      ++out.malformed_version;
      continue;
    }
    ++out.total_certs;
    if (cert.valid) {
      ++out.valid_certs;
      if (cert.transvalid) ++out.transvalid;
      continue;
    }
    ++out.invalid_certs;
    switch (cert.invalid_reason) {
      case pki::InvalidReason::kSelfSigned:
        ++out.self_signed;
        break;
      case pki::InvalidReason::kUntrustedIssuer:
        ++out.untrusted_issuer;
        break;
      default:
        ++out.other_invalid;
    }
  }
  return out;
}

std::vector<ScanSeriesRow> compute_scan_series(
    const scan::ScanArchive& archive) {
  std::vector<ScanSeriesRow> out;
  out.reserve(archive.scans().size());
  std::vector<std::uint32_t> last_counted(archive.certs().size(), 0);
  std::uint32_t stamp = 0;
  for (const scan::ScanData& scan : archive.scans()) {
    ++stamp;
    ScanSeriesRow row;
    row.campaign = scan.event.campaign;
    row.date = scan.event.start;
    for (const scan::Observation& obs : scan.observations) {
      if (last_counted[obs.cert] == stamp) continue;  // unique per scan
      last_counted[obs.cert] = stamp;
      const scan::CertRecord& cert = archive.cert(obs.cert);
      if (!version_legal(cert)) continue;
      (cert.valid ? row.valid : row.invalid)++;
    }
    out.push_back(row);
  }
  return out;
}

ValidityPeriods compute_validity_periods(const scan::ScanArchive& archive) {
  std::vector<double> valid_days, invalid_days;
  std::uint64_t valid_total = 0, invalid_total = 0;
  std::uint64_t valid_negative = 0, invalid_negative = 0;
  for (const scan::CertRecord& cert : archive.certs()) {
    if (!version_legal(cert)) continue;
    const double days = cert.validity_period_days();
    if (cert.valid) {
      ++valid_total;
      if (days < 0) {
        ++valid_negative;
      } else {
        valid_days.push_back(days);
      }
    } else {
      ++invalid_total;
      if (days < 0) {
        ++invalid_negative;
      } else {
        invalid_days.push_back(days);
      }
    }
  }
  ValidityPeriods out;
  out.valid_days = util::EmpiricalCdf(std::move(valid_days));
  out.invalid_days = util::EmpiricalCdf(std::move(invalid_days));
  out.valid_negative_fraction =
      valid_total == 0 ? 0.0
                       : static_cast<double>(valid_negative) /
                             static_cast<double>(valid_total);
  out.invalid_negative_fraction =
      invalid_total == 0 ? 0.0
                         : static_cast<double>(invalid_negative) /
                               static_cast<double>(invalid_total);
  return out;
}

Lifetimes compute_lifetimes(const DatasetIndex& index) {
  const auto& certs = index.archive().certs();
  std::vector<double> valid_days, invalid_days;
  std::uint64_t invalid_count = 0, invalid_single = 0;
  for (scan::CertId id = 0; id < certs.size(); ++id) {
    const CertStats& stats = index.stats(id);
    if (stats.scans_seen == 0 || !version_legal(certs[id])) continue;
    const double days = index.lifetime_days(id);
    if (certs[id].valid) {
      valid_days.push_back(days);
    } else {
      invalid_days.push_back(days);
      ++invalid_count;
      if (stats.scans_seen == 1) ++invalid_single;
    }
  }
  Lifetimes out;
  out.valid_days = util::EmpiricalCdf(std::move(valid_days));
  out.invalid_days = util::EmpiricalCdf(std::move(invalid_days));
  out.invalid_single_scan_fraction =
      invalid_count == 0 ? 0.0
                         : static_cast<double>(invalid_single) /
                               static_cast<double>(invalid_count);
  return out;
}

NotBeforeDeltas compute_notbefore_deltas(const DatasetIndex& index) {
  const auto& archive = index.archive();
  const auto& certs = archive.certs();
  std::vector<double> positive;
  std::uint64_t total = 0, same_day = 0, negative = 0, under_four = 0,
                over_thousand = 0;
  for (scan::CertId id = 0; id < certs.size(); ++id) {
    const scan::CertRecord& cert = certs[id];
    const CertStats& stats = index.stats(id);
    // Ephemeral invalid certificates: observed in exactly one scan.
    if (cert.valid || stats.scans_seen != 1 || !version_legal(cert)) continue;
    ++total;
    const util::UnixTime first_advertised =
        archive.scans()[stats.first_scan].event.start;
    // Compare calendar days, as the paper compares dates.
    const std::int64_t delta_days =
        first_advertised / util::kSecondsPerDay -
        cert.not_before / util::kSecondsPerDay;
    if (delta_days < 0) {
      ++negative;
      continue;
    }
    positive.push_back(static_cast<double>(delta_days));
    if (delta_days == 0) ++same_day;
    if (delta_days < 4) ++under_four;
    if (delta_days > 1000) ++over_thousand;
  }
  NotBeforeDeltas out;
  out.positive_days = util::EmpiricalCdf(std::move(positive));
  if (total > 0) {
    const double denom = static_cast<double>(total);
    out.same_day_fraction = static_cast<double>(same_day) / denom;
    out.negative_fraction = static_cast<double>(negative) / denom;
    out.under_four_days_fraction = static_cast<double>(under_four) / denom;
    out.over_thousand_days_fraction =
        static_cast<double>(over_thousand) / denom;
  }
  return out;
}

}  // namespace sm::analysis
