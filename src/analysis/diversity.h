// §5.2-§5.4 analyses: key sharing (Figure 6), issuer diversity (Table 1,
// §5.3), host/IP diversity (Figure 7), AS diversity (Figure 8, Tables 2-3),
// and the device-type classification of Table 4.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/dataset.h"
#include "net/as_database.h"
#include "util/stats.h"

namespace sm::analysis {

/// Figure 6's inputs: how certificates share public keys.
struct KeyDiversity {
  /// (fraction of keys used, fraction of certs covered) curves, heaviest
  /// keys first. A y=x line means every certificate has a unique key.
  std::vector<std::pair<double, double>> valid_curve;
  std::vector<std::pair<double, double>> invalid_curve;
  /// Fraction of certificates whose key appears on >= 2 certificates
  /// (paper: >47% for invalid).
  double invalid_shared_fraction = 0;
  double valid_shared_fraction = 0;
  /// The largest single key's certificate count and share among invalid
  /// certificates (paper: the Lancom key, 6.5%).
  std::uint64_t top_invalid_key_certs = 0;
  double top_invalid_key_share = 0;
};

/// Computes key-sharing statistics.
KeyDiversity compute_key_diversity(const scan::ScanArchive& archive);

/// One Table 1 row.
struct IssuerRow {
  std::string issuer;
  std::uint64_t certs = 0;
};

/// Table 1 plus §5.3's signing-key diversity numbers.
struct IssuerDiversity {
  std::vector<IssuerRow> top_valid;    ///< top issuers of valid certs
  std::vector<IssuerRow> top_invalid;  ///< top issuers of invalid certs
  /// §5.3: distinct parent signing keys (via AuthorityKeyIdentifier).
  std::uint64_t valid_parent_keys = 0;
  std::uint64_t invalid_parent_keys = 0;
  /// Keys needed to span half of the valid certs (paper: 5).
  std::uint64_t valid_keys_for_half = 0;
  /// Share of AKI-bearing invalid certs covered by the top five parent
  /// keys (paper: 37%).
  double invalid_top5_key_share = 0;
  /// Fraction of invalid certs that are issued by a private-range IP CN.
  double invalid_private_ip_issuer_fraction = 0;
};

/// Computes Table 1 (top `n` issuers) and §5.3 statistics.
IssuerDiversity compute_issuer_diversity(const scan::ScanArchive& archive,
                                         std::size_t n = 5);

/// Figure 7's inputs.
struct HostDiversity {
  util::EmpiricalCdf valid_avg_ips;
  util::EmpiricalCdf invalid_avg_ips;
  double valid_p99 = 0;    ///< paper: 11.3
  double invalid_p99 = 0;  ///< paper: 2.0
  /// Fraction of invalid certs on more than two IPs in some scan (the
  /// paper excludes these 1.6% before linking).
  double invalid_multihost_fraction = 0;
};

/// Computes average-IPs-per-scan distributions.
HostDiversity compute_host_diversity(const DatasetIndex& index);

/// Figure 8 + §5.4 AS-level numbers.
struct AsDiversity {
  util::EmpiricalCdf valid_as_counts;
  util::EmpiricalCdf invalid_as_counts;
  /// Share of certs whose majority AS is the single largest AS
  /// (paper: 10% valid / 18% invalid).
  double valid_top_as_share = 0;
  double invalid_top_as_share = 0;
  /// ASes needed to cover 70% of certs (paper: 500 valid / 165 invalid).
  std::uint64_t valid_ases_for_70 = 0;
  std::uint64_t invalid_ases_for_70 = 0;
};

/// Computes AS-diversity distributions (majority-AS attribution).
AsDiversity compute_as_diversity(const DatasetIndex& index);

/// Table 2: percentage of certificates per hosting-AS type.
struct AsTypeBreakdown {
  /// type -> {valid %, invalid %} (fractions in [0,1])
  std::map<net::AsType, std::pair<double, double>> shares;
};

/// Computes the Table 2 breakdown using each cert's majority AS.
AsTypeBreakdown compute_as_type_breakdown(const DatasetIndex& index,
                                          const net::AsDatabase& as_db);

/// One Table 3 row.
struct TopAsRow {
  net::Asn asn = 0;
  std::string label;
  std::uint64_t certs = 0;
};

/// Table 3: the `n` ASes hosting the most valid / invalid certificates.
struct TopAses {
  std::vector<TopAsRow> valid;
  std::vector<TopAsRow> invalid;
};

TopAses compute_top_ases(const DatasetIndex& index,
                         const net::AsDatabase& as_db, std::size_t n = 5);

/// Table 4: device-type classification of invalid certificates from the
/// top `top_issuers` issuing names, mirroring the paper's manual analysis.
struct DeviceTypeBreakdown {
  /// device type -> fraction of classified certificates
  std::vector<std::pair<std::string, double>> shares;
  std::uint64_t classified_certs = 0;
};

/// Classifies one issuer Common Name into a Table 4 device category — the
/// codified version of the paper's manual lookup (model numbers, vendor
/// names, web-page inspection).
std::string classify_issuer(const std::string& issuer_cn);

DeviceTypeBreakdown compute_device_types(const scan::ScanArchive& archive,
                                         std::size_t top_issuers = 50);

}  // namespace sm::analysis
