// Revocation-status analysis: how the CRL/OCSP ecosystem's verdicts
// distribute over the §4.2 validity split. The paper's population argument
// gets a revocation-era footnote here: invalid certificates are almost
// never revocable in practice (no reachable distribution point — the CAs
// behind them are devices, not businesses), while the valid population
// carries the whole weight of a mass-revocation event.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "pki/verifier.h"
#include "scan/archive.h"

namespace sm::analysis {

/// The "revocation statuses: invalid vs. valid certs" table, plus the
/// per-issuer revoked counts that make a mass-revocation event visible.
struct RevocationBreakdown {
  /// Counts per pki::RevocationStatus (indexed by the enum's underlying
  /// value: good, revoked, stale-crl, unreachable, unknown), split by the
  /// §4.2 validity verdict.
  static constexpr std::size_t kStatuses = 5;
  std::array<std::uint64_t, kStatuses> valid{};
  std::array<std::uint64_t, kStatuses> invalid{};
  std::uint64_t valid_total = 0;
  std::uint64_t invalid_total = 0;

  /// Issuers ranked by revoked-certificate count, descending (ties broken
  /// by name). A Heartbleed-style mass event puts its victim CA on top by
  /// an order of magnitude.
  struct IssuerRow {
    std::string issuer_cn;
    std::uint64_t revoked = 0;
  };
  std::vector<IssuerRow> top_revoked_issuers;

  std::uint64_t count(bool is_valid, pki::RevocationStatus s) const {
    const auto i = static_cast<std::size_t>(s);
    return is_valid ? valid[i] : invalid[i];
  }
};

/// Tallies the breakdown over every archived certificate. `statuses` is
/// fingerprint-keyed (simworld::WorldResult::revocation.statuses or a
/// notary export); certificates missing from it count as kUnknown, so an
/// archive analyzed without a revocation pass degrades gracefully.
RevocationBreakdown compute_revocation_breakdown(
    const scan::ScanArchive& archive,
    const std::unordered_map<scan::CertFingerprint, pki::RevocationStatus,
                             scan::FingerprintHash>& statuses,
    std::size_t top_issuers = 5);

/// Renders the breakdown as the report's plain-text table.
std::string render_revocation_table(const RevocationBreakdown& breakdown);

}  // namespace sm::analysis
