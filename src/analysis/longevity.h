// §4 and §5.1 analyses: validity isolation (the paper's openssl-verify
// pipeline output), the per-scan certificate series of Figure 2, and the
// longevity distributions of Figures 3, 4 and 5.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/dataset.h"
#include "scan/archive.h"
#include "scan/schedule.h"
#include "util/stats.h"

namespace sm::analysis {

/// §4.2's headline numbers.
struct ValidityBreakdown {
  std::uint64_t total_certs = 0;
  std::uint64_t valid_certs = 0;
  std::uint64_t invalid_certs = 0;
  std::uint64_t self_signed = 0;        ///< among invalid
  std::uint64_t untrusted_issuer = 0;   ///< among invalid
  std::uint64_t other_invalid = 0;      ///< among invalid
  std::uint64_t malformed_version = 0;  ///< disregarded, reported separately
  std::uint64_t transvalid = 0;         ///< valid only via pool completion

  double invalid_fraction() const {
    return total_certs == 0 ? 0.0
                            : static_cast<double>(invalid_certs) /
                                  static_cast<double>(total_certs);
  }
};

/// Computes the unique-certificate validity breakdown across the archive.
/// Certificates with illegal versions are excluded from the valid/invalid
/// totals (the paper disregards them) but counted in malformed_version.
ValidityBreakdown compute_validity_breakdown(const scan::ScanArchive& archive);

/// One Figure 2 point: unique certificates observed in one scan.
struct ScanSeriesRow {
  scan::Campaign campaign = scan::Campaign::kUMich;
  util::UnixTime date = 0;
  std::uint64_t invalid = 0;
  std::uint64_t valid = 0;

  double invalid_fraction() const {
    const std::uint64_t total = invalid + valid;
    return total == 0 ? 0.0
                      : static_cast<double>(invalid) /
                            static_cast<double>(total);
  }
};

/// Per-scan unique invalid/valid certificate counts (Figure 2), in scan
/// order.
std::vector<ScanSeriesRow> compute_scan_series(
    const scan::ScanArchive& archive);

/// Figure 3's inputs: validity-period distributions.
struct ValidityPeriods {
  util::EmpiricalCdf valid_days;    ///< non-negative periods only
  util::EmpiricalCdf invalid_days;  ///< non-negative periods only
  double invalid_negative_fraction = 0;  ///< paper: 5.38%
  double valid_negative_fraction = 0;
};

/// Computes validity-period CDFs for valid vs invalid certificates.
ValidityPeriods compute_validity_periods(const scan::ScanArchive& archive);

/// Figure 4's inputs: lifetime distributions (days, paper semantics).
struct Lifetimes {
  util::EmpiricalCdf valid_days;
  util::EmpiricalCdf invalid_days;
  double invalid_single_scan_fraction = 0;  ///< paper: ~60%
};

/// Computes lifetime CDFs over certificates observed at least once.
Lifetimes compute_lifetimes(const DatasetIndex& index);

/// Figure 5's inputs: (first-advertised date - NotBefore date) for
/// *ephemeral* invalid certificates (observed in exactly one scan).
struct NotBeforeDeltas {
  util::EmpiricalCdf positive_days;  ///< deltas >= 0, in days
  double same_day_fraction = 0;      ///< paper: ~30% at exactly 0
  double negative_fraction = 0;      ///< paper: 2.9% (NotBefore in future)
  double under_four_days_fraction = 0;   ///< paper: ~70%
  double over_thousand_days_fraction = 0;  ///< paper: ~20%
};

/// Computes the Figure 5 distribution.
NotBeforeDeltas compute_notbefore_deltas(const DatasetIndex& index);

}  // namespace sm::analysis
