#include "analysis/discrepancy.h"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <set>

namespace sm::analysis {

std::optional<ScanDiscrepancy> compute_scan_discrepancy(
    const scan::ScanArchive& archive) {
  const auto& scans = archive.scans();
  // Find the (UMich, Rapid7) pair with minimal start-time distance.
  std::optional<std::size_t> best_umich, best_rapid7;
  std::int64_t best_gap = 0;
  for (std::size_t u = 0; u < scans.size(); ++u) {
    if (scans[u].event.campaign != scan::Campaign::kUMich) continue;
    for (std::size_t r = 0; r < scans.size(); ++r) {
      if (scans[r].event.campaign != scan::Campaign::kRapid7) continue;
      const std::int64_t gap =
          std::abs(scans[u].event.start - scans[r].event.start);
      if (!best_umich || gap < best_gap) {
        best_umich = u;
        best_rapid7 = r;
        best_gap = gap;
      }
    }
  }
  if (!best_umich || !best_rapid7) return std::nullopt;

  const auto hosts_of = [&](std::size_t scan_index) {
    std::set<std::uint32_t> hosts;
    for (const scan::Observation& obs : scans[scan_index].observations) {
      hosts.insert(obs.ip);
    }
    return hosts;
  };
  const std::set<std::uint32_t> umich = hosts_of(*best_umich);
  const std::set<std::uint32_t> rapid7 = hosts_of(*best_rapid7);

  ScanDiscrepancy out;
  out.umich_scan = *best_umich;
  out.rapid7_scan = *best_rapid7;
  out.umich_total_hosts = umich.size();
  out.rapid7_total_hosts = rapid7.size();

  std::array<Slash8Discrepancy, 256> slots{};
  std::array<std::uint64_t, 256> umich_only{}, rapid7_only{};
  for (const std::uint32_t ip : umich) {
    const std::uint32_t octet = ip >> 24;
    ++slots[octet].umich_hosts;
    if (!rapid7.contains(ip)) {
      ++umich_only[octet];
      ++out.umich_only_hosts;
    }
  }
  for (const std::uint32_t ip : rapid7) {
    const std::uint32_t octet = ip >> 24;
    ++slots[octet].rapid7_hosts;
    if (!umich.contains(ip)) {
      ++rapid7_only[octet];
      ++out.rapid7_only_hosts;
    }
  }
  for (std::uint32_t octet = 0; octet < 256; ++octet) {
    Slash8Discrepancy& slot = slots[octet];
    if (slot.umich_hosts == 0 && slot.rapid7_hosts == 0) continue;
    slot.first_octet = octet;
    if (slot.umich_hosts > 0) {
      slot.umich_unique_fraction =
          static_cast<double>(umich_only[octet]) /
          static_cast<double>(slot.umich_hosts);
    }
    if (slot.rapid7_hosts > 0) {
      slot.rapid7_unique_fraction =
          static_cast<double>(rapid7_only[octet]) /
          static_cast<double>(slot.rapid7_hosts);
    }
    out.per_slash8.push_back(slot);
  }
  return out;
}

}  // namespace sm::analysis
