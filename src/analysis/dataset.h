// DatasetIndex — per-certificate derived statistics over a ScanArchive:
// lifetimes, per-scan IP counts, and AS residency. Computed once, consumed
// by every §5 analysis and by the linking evaluation.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/route_table.h"
#include "scan/archive.h"
#include "util/thread_pool.h"

namespace sm::analysis {

/// Derived per-certificate statistics.
struct CertStats {
  std::uint32_t scans_seen = 0;  ///< scans with >= 1 observation
  std::uint32_t first_scan = 0;
  std::uint32_t last_scan = 0;
  /// Sum over scans of the number of *unique* IPs advertising the cert.
  std::uint64_t total_ip_scan_slots = 0;
  std::uint32_t max_ips_in_scan = 0;
  std::uint32_t min_ips_in_scan = 0;
  std::uint32_t distinct_as_count = 0;
  /// The AS hosting this certificate most often (observation-weighted).
  net::Asn majority_as = 0;

  /// Average unique IPs advertising the certificate per scan where seen
  /// (the paper's Figure 7 metric). 0 when never observed.
  double avg_ips_per_scan() const {
    return scans_seen == 0 ? 0.0
                           : static_cast<double>(total_ip_scan_slots) /
                                 static_cast<double>(scans_seen);
  }
};

/// Index of derived statistics for every certificate in an archive.
class DatasetIndex {
 public:
  /// Builds the index; resolves every observation's IP to its origin AS via
  /// the routing snapshot in effect at each scan's start. Per-scan work
  /// (AS resolution, unique-IP dedup) runs on `pool` (the process-global
  /// pool when null); the result is identical for every thread count.
  DatasetIndex(const scan::ScanArchive& archive,
               const net::RoutingHistory& routing,
               util::ThreadPool* pool = nullptr);

  const scan::ScanArchive& archive() const { return *archive_; }

  /// Stats for certificate `id`.
  const CertStats& stats(scan::CertId id) const { return stats_[id]; }
  const std::vector<CertStats>& all_stats() const { return stats_; }

  /// Lifetime in days, computed the paper's way (1 day when seen once).
  double lifetime_days(scan::CertId id) const;

  /// The origin AS of `ip` at scan `scan_index` (0 when unroutable).
  net::Asn as_of(std::size_t scan_index, std::uint32_t ip) const;

  /// Number of scans in the archive.
  std::size_t scan_count() const { return archive_->scans().size(); }

 private:
  const scan::ScanArchive* archive_;
  const net::RoutingHistory* routing_;
  std::vector<CertStats> stats_;
  std::vector<const net::RouteTable*> scan_tables_;  // per scan
};

}  // namespace sm::analysis
