// DatasetIndex — the §5 analysis view over the shared corpus spine:
// per-certificate lifetimes, per-scan IP counts, and AS residency. Since
// the corpus::CorpusIndex refactor this class derives nothing itself; it
// either borrows an existing spine (the single-build-many-consumers path)
// or builds and owns one for callers that only need the analysis view.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "corpus/corpus_index.h"
#include "net/route_table.h"
#include "scan/archive.h"
#include "util/thread_pool.h"

namespace sm::analysis {

/// Derived per-certificate statistics (now computed by the corpus spine).
using CertStats = corpus::CertStats;

/// Analysis view of the derived statistics for every certificate.
class DatasetIndex {
 public:
  /// Convenience constructor: builds (and owns) a corpus spine for
  /// `archive`, resolving every observation's IP to its origin AS via the
  /// routing snapshot in effect at each scan's start. The build runs on
  /// `pool` (the process-global pool when null); the result is identical
  /// for every thread count.
  DatasetIndex(const scan::ScanArchive& archive,
               const net::RoutingHistory& routing,
               util::ThreadPool* pool = nullptr);

  /// View constructor: borrows an already-built spine (which must outlive
  /// this index). This is how tools share one spine across all layers.
  explicit DatasetIndex(const corpus::CorpusIndex& spine) : spine_(&spine) {}

  /// The underlying spine (for handing to other consumers).
  const corpus::CorpusIndex& corpus() const { return *spine_; }

  const scan::ScanArchive& archive() const { return spine_->archive(); }

  /// Stats for certificate `id`.
  const CertStats& stats(scan::CertId id) const { return spine_->stats(id); }
  const std::vector<CertStats>& all_stats() const {
    return spine_->all_stats();
  }

  /// Lifetime in days, computed the paper's way (1 day when seen once).
  double lifetime_days(scan::CertId id) const {
    return spine_->lifetime_days(id);
  }

  /// The origin AS of `ip` at scan `scan_index` (0 when unroutable).
  net::Asn as_of(std::size_t scan_index, std::uint32_t ip) const {
    return spine_->as_of(scan_index, ip);
  }

  /// Number of scans in the archive.
  std::size_t scan_count() const { return spine_->scan_count(); }

 private:
  std::unique_ptr<const corpus::CorpusIndex> owned_;  // null in view mode
  const corpus::CorpusIndex* spine_;
};

}  // namespace sm::analysis
