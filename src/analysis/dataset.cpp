#include "analysis/dataset.h"

namespace sm::analysis {

DatasetIndex::DatasetIndex(const scan::ScanArchive& archive,
                           const net::RoutingHistory& routing,
                           util::ThreadPool* pool)
    : owned_(std::make_unique<const corpus::CorpusIndex>(
          archive, corpus::CorpusOptions{&routing, pool})),
      spine_(owned_.get()) {}

}  // namespace sm::analysis
