#include "analysis/dataset.h"

#include <algorithm>
#include <limits>

namespace sm::analysis {

DatasetIndex::DatasetIndex(const scan::ScanArchive& archive,
                           const net::RoutingHistory& routing,
                           util::ThreadPool* pool)
    : archive_(&archive), routing_(&routing) {
  if (pool == nullptr) pool = &util::ThreadPool::global();
  const auto& scans = archive.scans();
  const std::size_t cert_count = archive.certs().size();
  stats_.assign(cert_count, CertStats{});
  for (auto& s : stats_) {
    s.min_ips_in_scan = std::numeric_limits<std::uint32_t>::max();
  }
  scan_tables_.reserve(scans.size());
  for (const scan::ScanData& scan : scans) {
    scan_tables_.push_back(routing.at(scan.event.start));
  }

  // Per-scan derivation (AS lookups + unique-(cert, ip) dedup) is
  // independent across scans: run it on the pool into per-scan slots, then
  // merge serially in scan order so the stats are thread-count-invariant.
  struct ScanDerived {
    std::vector<std::pair<scan::CertId, std::uint32_t>> unique_pairs;
    std::vector<std::pair<scan::CertId, net::Asn>> as_pairs;
  };
  std::vector<ScanDerived> derived(scans.size());
  pool->parallel_for(scans.size(), 1, [&](std::size_t begin,
                                          std::size_t end) {
    for (std::size_t scan_index = begin; scan_index < end; ++scan_index) {
      const auto& observations = scans[scan_index].observations;
      ScanDerived& out = derived[scan_index];
      out.unique_pairs.reserve(observations.size());
      out.as_pairs.reserve(observations.size());
      for (const scan::Observation& obs : observations) {
        out.unique_pairs.emplace_back(obs.cert, obs.ip);
        out.as_pairs.emplace_back(obs.cert, as_of(scan_index, obs.ip));
      }
      std::sort(out.unique_pairs.begin(), out.unique_pairs.end());
      out.unique_pairs.erase(
          std::unique(out.unique_pairs.begin(), out.unique_pairs.end()),
          out.unique_pairs.end());
    }
  });

  std::vector<bool> seen(cert_count, false);
  // (cert, asn) pairs across all observations, deduplicated at the end to
  // produce distinct-AS counts and majority ASes.
  std::vector<std::pair<scan::CertId, net::Asn>> cert_as_pairs;
  cert_as_pairs.reserve(archive.observation_count());

  for (std::size_t scan_index = 0; scan_index < scans.size(); ++scan_index) {
    const auto& scan_pairs = derived[scan_index].unique_pairs;
    auto& as_pairs = derived[scan_index].as_pairs;
    cert_as_pairs.insert(cert_as_pairs.end(), as_pairs.begin(),
                         as_pairs.end());
    as_pairs.clear();
    as_pairs.shrink_to_fit();
    // Count unique IPs per cert in this scan.
    for (std::size_t i = 0; i < scan_pairs.size();) {
      const scan::CertId cert = scan_pairs[i].first;
      std::size_t j = i;
      while (j < scan_pairs.size() && scan_pairs[j].first == cert) ++j;
      const auto ip_count = static_cast<std::uint32_t>(j - i);
      CertStats& s = stats_[cert];
      if (!seen[cert]) {
        seen[cert] = true;
        s.first_scan = static_cast<std::uint32_t>(scan_index);
      }
      s.last_scan = static_cast<std::uint32_t>(scan_index);
      ++s.scans_seen;
      s.total_ip_scan_slots += ip_count;
      s.max_ips_in_scan = std::max(s.max_ips_in_scan, ip_count);
      s.min_ips_in_scan = std::min(s.min_ips_in_scan, ip_count);
      i = j;
    }
  }
  for (auto& s : stats_) {
    if (s.scans_seen == 0) s.min_ips_in_scan = 0;
  }

  // Distinct ASes + majority AS per certificate.
  std::sort(cert_as_pairs.begin(), cert_as_pairs.end());
  for (std::size_t i = 0; i < cert_as_pairs.size();) {
    const scan::CertId cert = cert_as_pairs[i].first;
    std::size_t j = i;
    std::uint32_t distinct = 0;
    net::Asn best_as = 0;
    std::size_t best_count = 0;
    while (j < cert_as_pairs.size() && cert_as_pairs[j].first == cert) {
      const net::Asn asn = cert_as_pairs[j].second;
      std::size_t k = j;
      while (k < cert_as_pairs.size() && cert_as_pairs[k].first == cert &&
             cert_as_pairs[k].second == asn) {
        ++k;
      }
      ++distinct;
      if (k - j > best_count) {
        best_count = k - j;
        best_as = asn;
      }
      j = k;
    }
    stats_[cert].distinct_as_count = distinct;
    stats_[cert].majority_as = best_as;
    i = j;
  }
}

double DatasetIndex::lifetime_days(scan::CertId id) const {
  const CertStats& s = stats_[id];
  if (s.scans_seen == 0) return 0;
  if (s.first_scan == s.last_scan) return 1;
  const auto& scans = archive_->scans();
  const double seconds = static_cast<double>(
      scans[s.last_scan].event.start - scans[s.first_scan].event.start);
  return seconds / static_cast<double>(util::kSecondsPerDay) + 1.0;
}

net::Asn DatasetIndex::as_of(std::size_t scan_index, std::uint32_t ip) const {
  const net::RouteTable* table = scan_tables_[scan_index];
  if (table == nullptr) return 0;
  return table->lookup(net::Ipv4Address(ip)).value_or(0);
}

}  // namespace sm::analysis
