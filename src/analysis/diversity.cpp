#include "analysis/diversity.h"

#include <algorithm>
#include <unordered_map>

#include "net/ipv4.h"
#include "util/hex.h"

namespace sm::analysis {

namespace {

bool version_legal(const scan::CertRecord& cert) {
  return cert.raw_version >= 0 && cert.raw_version <= 2;
}

// Issuer display key: the CN, or "(Empty string)" as the paper prints it.
std::string issuer_key(const scan::CertRecord& cert) {
  return cert.issuer_cn.empty() ? "(Empty string)" : cert.issuer_cn;
}

}  // namespace

KeyDiversity compute_key_diversity(const scan::ScanArchive& archive) {
  std::unordered_map<scan::KeyFingerprint, std::uint64_t> valid_keys,
      invalid_keys;
  std::uint64_t valid_total = 0, invalid_total = 0;
  for (const scan::CertRecord& cert : archive.certs()) {
    if (!version_legal(cert)) continue;
    if (cert.valid) {
      ++valid_keys[cert.key_fingerprint];
      ++valid_total;
    } else {
      ++invalid_keys[cert.key_fingerprint];
      ++invalid_total;
    }
  }
  const auto collect = [](const auto& keys) {
    std::vector<std::uint64_t> mult;
    mult.reserve(keys.size());
    for (const auto& [key, count] : keys) mult.push_back(count);
    return mult;
  };
  const auto shared_fraction = [](const auto& keys, std::uint64_t total) {
    std::uint64_t shared = 0;
    for (const auto& [key, count] : keys) {
      if (count >= 2) shared += count;
    }
    return total == 0 ? 0.0
                      : static_cast<double>(shared) /
                            static_cast<double>(total);
  };

  KeyDiversity out;
  out.valid_curve = util::coverage_curve(collect(valid_keys), 512);
  out.invalid_curve = util::coverage_curve(collect(invalid_keys), 512);
  out.valid_shared_fraction = shared_fraction(valid_keys, valid_total);
  out.invalid_shared_fraction = shared_fraction(invalid_keys, invalid_total);
  for (const auto& [key, count] : invalid_keys) {
    out.top_invalid_key_certs = std::max(out.top_invalid_key_certs, count);
  }
  out.top_invalid_key_share =
      invalid_total == 0 ? 0.0
                         : static_cast<double>(out.top_invalid_key_certs) /
                               static_cast<double>(invalid_total);
  return out;
}

IssuerDiversity compute_issuer_diversity(const scan::ScanArchive& archive,
                                         std::size_t n) {
  util::Counter valid_issuers, invalid_issuers;
  util::Counter valid_parent_keys, invalid_parent_keys;
  std::uint64_t invalid_total = 0, invalid_private_ip = 0;
  for (const scan::CertRecord& cert : archive.certs()) {
    if (!version_legal(cert)) continue;
    if (cert.valid) {
      valid_issuers.add(issuer_key(cert));
      if (!cert.aki_hex.empty()) valid_parent_keys.add(cert.aki_hex);
    } else {
      invalid_issuers.add(issuer_key(cert));
      ++invalid_total;
      if (!cert.aki_hex.empty()) invalid_parent_keys.add(cert.aki_hex);
      const auto ip = net::Ipv4Address::parse(cert.issuer_cn);
      if (ip && net::is_private(*ip)) ++invalid_private_ip;
    }
  }
  IssuerDiversity out;
  for (const auto& [name, count] : valid_issuers.top(n)) {
    out.top_valid.push_back(IssuerRow{name, count});
  }
  for (const auto& [name, count] : invalid_issuers.top(n)) {
    out.top_invalid.push_back(IssuerRow{name, count});
  }
  out.valid_parent_keys = valid_parent_keys.distinct();
  out.invalid_parent_keys = invalid_parent_keys.distinct();
  out.valid_keys_for_half = valid_parent_keys.keys_to_cover(0.5);
  if (invalid_parent_keys.total() > 0) {
    std::uint64_t top5 = 0;
    for (const auto& [key, count] : invalid_parent_keys.top(5)) top5 += count;
    out.invalid_top5_key_share =
        static_cast<double>(top5) /
        static_cast<double>(invalid_parent_keys.total());
  }
  out.invalid_private_ip_issuer_fraction =
      invalid_total == 0 ? 0.0
                         : static_cast<double>(invalid_private_ip) /
                               static_cast<double>(invalid_total);
  return out;
}

HostDiversity compute_host_diversity(const DatasetIndex& index) {
  const auto& certs = index.archive().certs();
  std::vector<double> valid_avgs, invalid_avgs;
  std::uint64_t invalid_total = 0, invalid_multihost = 0;
  for (scan::CertId id = 0; id < certs.size(); ++id) {
    const CertStats& stats = index.stats(id);
    if (stats.scans_seen == 0 || !version_legal(certs[id])) continue;
    if (certs[id].valid) {
      valid_avgs.push_back(stats.avg_ips_per_scan());
    } else {
      invalid_avgs.push_back(stats.avg_ips_per_scan());
      ++invalid_total;
      if (stats.max_ips_in_scan > 2) ++invalid_multihost;
    }
  }
  HostDiversity out;
  out.valid_avg_ips = util::EmpiricalCdf(std::move(valid_avgs));
  out.invalid_avg_ips = util::EmpiricalCdf(std::move(invalid_avgs));
  if (!out.valid_avg_ips.empty()) out.valid_p99 = out.valid_avg_ips.percentile(0.99);
  if (!out.invalid_avg_ips.empty()) {
    out.invalid_p99 = out.invalid_avg_ips.percentile(0.99);
  }
  out.invalid_multihost_fraction =
      invalid_total == 0 ? 0.0
                         : static_cast<double>(invalid_multihost) /
                               static_cast<double>(invalid_total);
  return out;
}

AsDiversity compute_as_diversity(const DatasetIndex& index) {
  const auto& certs = index.archive().certs();
  std::vector<double> valid_counts, invalid_counts;
  util::Counter valid_as, invalid_as;
  for (scan::CertId id = 0; id < certs.size(); ++id) {
    const CertStats& stats = index.stats(id);
    if (stats.scans_seen == 0 || !version_legal(certs[id])) continue;
    const std::string as_key = std::to_string(stats.majority_as);
    if (certs[id].valid) {
      valid_counts.push_back(stats.distinct_as_count);
      valid_as.add(as_key);
    } else {
      invalid_counts.push_back(stats.distinct_as_count);
      invalid_as.add(as_key);
    }
  }
  AsDiversity out;
  out.valid_as_counts = util::EmpiricalCdf(std::move(valid_counts));
  out.invalid_as_counts = util::EmpiricalCdf(std::move(invalid_counts));
  const auto top_share = [](const util::Counter& counter) {
    if (counter.total() == 0) return 0.0;
    const auto top = counter.top(1);
    return static_cast<double>(top[0].second) /
           static_cast<double>(counter.total());
  };
  out.valid_top_as_share = top_share(valid_as);
  out.invalid_top_as_share = top_share(invalid_as);
  out.valid_ases_for_70 = valid_as.keys_to_cover(0.7);
  out.invalid_ases_for_70 = invalid_as.keys_to_cover(0.7);
  return out;
}

AsTypeBreakdown compute_as_type_breakdown(const DatasetIndex& index,
                                          const net::AsDatabase& as_db) {
  const auto& certs = index.archive().certs();
  std::map<net::AsType, std::pair<std::uint64_t, std::uint64_t>> counts;
  std::uint64_t valid_total = 0, invalid_total = 0;
  for (scan::CertId id = 0; id < certs.size(); ++id) {
    const CertStats& stats = index.stats(id);
    if (stats.scans_seen == 0 || !version_legal(certs[id])) continue;
    const net::AsType type = as_db.type_of(stats.majority_as);
    if (certs[id].valid) {
      ++counts[type].first;
      ++valid_total;
    } else {
      ++counts[type].second;
      ++invalid_total;
    }
  }
  AsTypeBreakdown out;
  for (const auto& [type, pair] : counts) {
    out.shares[type] = {
        valid_total == 0 ? 0.0
                         : static_cast<double>(pair.first) /
                               static_cast<double>(valid_total),
        invalid_total == 0 ? 0.0
                           : static_cast<double>(pair.second) /
                                 static_cast<double>(invalid_total)};
  }
  return out;
}

TopAses compute_top_ases(const DatasetIndex& index,
                         const net::AsDatabase& as_db, std::size_t n) {
  const auto& certs = index.archive().certs();
  util::Counter valid_as, invalid_as;
  for (scan::CertId id = 0; id < certs.size(); ++id) {
    const CertStats& stats = index.stats(id);
    if (stats.scans_seen == 0 || !version_legal(certs[id])) continue;
    (certs[id].valid ? valid_as : invalid_as)
        .add(std::to_string(stats.majority_as));
  }
  TopAses out;
  const auto fill = [&](const util::Counter& counter,
                        std::vector<TopAsRow>& rows) {
    for (const auto& [key, count] : counter.top(n)) {
      const net::Asn asn = static_cast<net::Asn>(std::stoul(key));
      rows.push_back(TopAsRow{asn, as_db.label(asn), count});
    }
  };
  fill(valid_as, out.valid);
  fill(invalid_as, out.invalid);
  return out;
}

std::string classify_issuer(const std::string& issuer_cn) {
  const auto contains = [&](const char* needle) {
    return issuer_cn.find(needle) != std::string::npos;
  };
  if (contains("lancom") || contains("fritz") || issuer_cn.rfind("192.168.", 0) == 0 ||
      issuer_cn.rfind("10.", 0) == 0 || contains("router") ||
      contains("LANCOM")) {
    return "Home router/cable modem";
  }
  if (contains("remotewd") || contains("WD2GO") || contains("mycloud")) {
    return "Remote storage";
  }
  if (contains("VMware") || contains("vmware") || contains("esx-")) {
    return "Remote administration";
  }
  if (contains("vpn") || contains("VPN")) return "VPN";
  if (contains("Firewall") || contains("SonicWALL") || contains("fw-")) {
    return "Firewall";
  }
  if (contains("HikVision") || contains("cam") || contains("Camera")) {
    return "IP camera";
  }
  if (contains("iptv") || contains("SIP") || contains("printer") ||
      contains("CAcert") || contains("IPTV")) {
    return "Other";
  }
  return "Unknown";
}

DeviceTypeBreakdown compute_device_types(const scan::ScanArchive& archive,
                                         std::size_t top_issuers) {
  util::Counter issuers;
  for (const scan::CertRecord& cert : archive.certs()) {
    if (cert.valid || !version_legal(cert)) continue;
    issuers.add(issuer_key(cert));
  }
  util::Counter types;
  for (const auto& [issuer, count] : issuers.top(top_issuers)) {
    types.add(issuer == "(Empty string)" ? "Unknown" : classify_issuer(issuer),
              count);
  }
  DeviceTypeBreakdown out;
  out.classified_certs = types.total();
  for (const auto& [type, count] : types.raw()) {
    out.shares.emplace_back(
        type, static_cast<double>(count) /
                  static_cast<double>(std::max<std::uint64_t>(1, types.total())));
  }
  std::sort(out.shares.begin(), out.shares.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

}  // namespace sm::analysis
