#include "simworld/vendor.h"

#include "simworld/isp.h"
#include "util/datetime.h"

namespace sm::simworld {

namespace {

constexpr std::int64_t kDay = util::kSecondsPerDay;
constexpr std::int64_t kYear = 365 * kDay;

}  // namespace

std::vector<VendorProfile> default_vendor_profiles() {
  std::vector<VendorProfile> out;

  // Lancom Systems: the vendor behind the paper's single most-shared public
  // key (one keypair on 4.59M certificates, 6.5% of all invalid certs) and
  // the top invalid issuer (www.lancom-systems.de).
  {
    VendorProfile v;
    v.name = "lancom";
    v.device_type = "Home router/cable modem";
    v.cn_policy = CnPolicy::kDeviceUnique;
    v.unique_prefix = "LANCOM-";
    v.issuer_policy = IssuerPolicy::kFixedName;
    v.fixed_issuer = "www.lancom-systems.de";
    v.key_policy = KeyPolicy::kGlobalShared;
    v.serial_policy = SerialPolicy::kIncrementing;
    v.reissue_period_mean = 170 * kDay;
    v.validity_seconds = 20 * kYear;
    v.clock.stuck_clock_prob = 0.15;
    v.clock.stuck_clock_date = util::make_date(2003, 1, 1);
    v.clock.negative_validity_prob = 0.02;
    v.weight = 16.0;
    v.preferred_ases = {asn::kDeutscheTelekom, asn::kVodafoneDe,
                        asn::kTelefonicaDe};
    out.push_back(std::move(v));
  }

  // AVM FRITZ!Box: stable per-device keys, the shared fritz.fonwlan.box
  // SAN, myfritz.net dynDNS CNs, deployed in daily-reassignment German
  // ISPs, and regenerating its certificate whenever it reconnects — the
  // combination behind the paper's public-key linking results (§6.4.2).
  {
    VendorProfile v;
    v.name = "avm-fritzbox";
    v.device_type = "Home router/cable modem";
    v.cn_policy = CnPolicy::kDynDns;
    v.dyndns_suffix = "myfritz.net";
    v.issuer_policy = IssuerPolicy::kSameAsSubject;
    v.key_policy = KeyPolicy::kStablePerDevice;
    v.serial_policy = SerialPolicy::kRandom;
    v.fixed_sans = {"dns:fritz.fonwlan.box"};
    v.san_includes_device_name = true;
    v.reissue_period_mean = 30 * kDay;
    v.reissue_on_ip_change = true;
    v.validity_seconds = 20 * kYear;
    v.clock.stuck_clock_prob = 0.18;
    v.clock.stuck_clock_date = util::make_date(1970, 1, 1);
    v.clock.clock_ahead_prob = 0.03;
    v.clock.negative_validity_prob = 0.04;
    v.clock.far_future_prob = 0.01;
    v.weight = 4.0;
    v.preferred_ases = {asn::kDeutscheTelekom, asn::kVodafoneDe,
                        asn::kTelefonicaDe};
    out.push_back(std::move(v));
  }

  // Generic home routers with the 192.168.1.1 CN: fresh key on every
  // reissue and a CN shared by millions — unlinkable by design, the bulk of
  // the paper's 60%-unlinked population.
  {
    VendorProfile v;
    v.name = "generic-router";
    v.device_type = "Home router/cable modem";
    v.cn_policy = CnPolicy::kFixed;
    v.fixed_cn = "192.168.1.1";
    v.issuer_policy = IssuerPolicy::kSameAsSubject;
    v.key_policy = KeyPolicy::kFreshPerReissue;
    v.serial_policy = SerialPolicy::kFixedOne;
    v.reissue_period_mean = 15 * kDay;  // reboot-happy
    v.reissue_on_ip_change = true;
    v.validity_seconds = 20 * kYear;
    v.clock.stuck_clock_prob = 0.25;
    v.clock.stuck_clock_date = util::make_date(1970, 1, 1);
    v.clock.negative_validity_prob = 0.10;
    v.clock.far_future_prob = 0.03;
    v.illegal_version_prob = 0.002;
    v.weight = 1.5;
    out.push_back(std::move(v));
  }

  // Other private-IP-CN routers (192.168.0.0/16 CNs beyond .1.1).
  {
    VendorProfile v;
    v.name = "private-ip-router";
    v.device_type = "Home router/cable modem";
    v.cn_policy = CnPolicy::kFixed;
    v.fixed_cn = "192.168.0.1";
    v.issuer_policy = IssuerPolicy::kSameAsSubject;
    v.key_policy = KeyPolicy::kFreshPerReissue;
    v.serial_policy = SerialPolicy::kFixedOne;
    v.reissue_period_mean = 450 * kDay;
    v.validity_seconds = 10 * kYear;
    v.clock.stuck_clock_prob = 0.2;
    v.clock.stuck_clock_date = util::make_date(2000, 1, 1);
    v.clock.negative_validity_prob = 0.08;
    v.weight = 7.0;
    out.push_back(std::move(v));
  }

  // Devices using their *public* IP as the CN — 46.9% of the paper's CNs
  // look like IPv4 addresses; the linker must exclude these from CN linking.
  {
    VendorProfile v;
    v.name = "public-ip-cn";
    v.device_type = "Unknown";
    v.cn_policy = CnPolicy::kPublicIp;
    v.issuer_policy = IssuerPolicy::kSameAsSubject;
    v.key_policy = KeyPolicy::kStablePerDevice;
    v.serial_policy = SerialPolicy::kRandom;
    v.reissue_period_mean = 30 * kDay;
    v.reissue_on_ip_change = true;
    v.validity_seconds = 20 * kYear;
    v.clock.stuck_clock_prob = 0.2;
    v.clock.stuck_clock_date = util::make_date(1970, 1, 1);
    v.clock.negative_validity_prob = 0.05;
    v.weight = 2.5;
    v.preferred_ases = {asn::kDeutscheTelekom, asn::kVodafoneDe,
                        asn::kTelefonicaDe};
    out.push_back(std::move(v));
  }

  // Empty-string subjects and issuers (Table 1's third-largest invalid
  // issuer).
  {
    VendorProfile v;
    v.name = "empty-cn";
    v.device_type = "Unknown";
    v.cn_policy = CnPolicy::kEmpty;
    v.issuer_policy = IssuerPolicy::kEmpty;
    v.key_policy = KeyPolicy::kFreshPerReissue;
    v.serial_policy = SerialPolicy::kFixedOne;
    v.reissue_period_mean = 30 * kDay;
    v.reissue_on_ip_change = true;
    v.validity_seconds = 20 * kYear;
    v.clock.stuck_clock_prob = 0.3;
    v.clock.stuck_clock_date = util::make_date(1970, 1, 1);
    v.clock.negative_validity_prob = 0.07;
    v.weight = 1.5;
    out.push_back(std::move(v));
  }

  // The broad "Unknown" remainder of Table 4: miscellaneous embedded web
  // servers with stable per-device names and keys and slow reissue cycles.
  {
    VendorProfile v;
    v.name = "unknown-misc";
    v.device_type = "Unknown";
    v.cn_policy = CnPolicy::kDeviceUnique;
    v.unique_prefix = "device-";
    v.issuer_policy = IssuerPolicy::kSameAsSubject;
    v.key_policy = KeyPolicy::kStablePerDevice;
    v.serial_policy = SerialPolicy::kRandom;
    v.reissue_period_mean = 900 * kDay;
    v.validity_seconds = 20 * kYear;
    v.clock.stuck_clock_prob = 0.22;
    v.clock.stuck_clock_date = util::make_date(1970, 1, 1);
    v.clock.negative_validity_prob = 0.06;
    v.clock.far_future_prob = 0.02;
    v.weight = 30.0;
    out.push_back(std::move(v));
  }

  // Western Digital My Cloud NAS: stable "WD2GO <serial>" names under the
  // remotewd.com issuer — the paper's canonical CN-linkable device.
  {
    VendorProfile v;
    v.name = "wd-mycloud";
    v.device_type = "Remote storage";
    v.cn_policy = CnPolicy::kDeviceUnique;
    v.unique_prefix = "WD2GO ";
    v.issuer_policy = IssuerPolicy::kFixedName;
    v.fixed_issuer = "remotewd.com";
    v.key_policy = KeyPolicy::kStablePerDevice;
    v.serial_policy = SerialPolicy::kRandom;
    v.reissue_period_mean = 450 * kDay;
    v.validity_seconds = 10 * kYear;
    v.clock.negative_validity_prob = 0.01;
    v.weight = 11.0;
    out.push_back(std::move(v));
  }

  // VMware management interfaces.
  {
    VendorProfile v;
    v.name = "vmware";
    v.device_type = "Remote administration";
    v.cn_policy = CnPolicy::kDeviceUnique;
    v.unique_prefix = "esx-";
    v.issuer_policy = IssuerPolicy::kFixedName;
    v.fixed_issuer = "VMware";
    v.key_policy = KeyPolicy::kStablePerDevice;
    v.serial_policy = SerialPolicy::kIncrementing;
    v.reissue_period_mean = 450 * kDay;
    v.validity_seconds = 10 * kYear;
    v.weight = 8.0;
    out.push_back(std::move(v));
  }

  // BlackBerry PlayBook tablets: "Issuer = PlayBook: <MAC>" with an
  // incrementing serial and a fresh key per reissue — the devices the paper
  // links via Issuer Name + Serial Number, roaming a mobile network.
  {
    VendorProfile v;
    v.name = "playbook";
    v.device_type = "Unknown";
    v.cn_policy = CnPolicy::kDeviceUnique;
    v.unique_prefix = "playbook-";
    v.issuer_policy = IssuerPolicy::kDeviceMac;
    v.fixed_issuer = "PlayBook: ";
    v.key_policy = KeyPolicy::kFreshPerReissue;
    v.serial_policy = SerialPolicy::kResetting;
    v.reissue_period_mean = 40 * kDay;
    v.reissue_on_ip_change = false;
    v.validity_seconds = 20 * kYear;
    v.weight = 1.0;
    v.preferred_ases = {asn::kBlackberryMobile};
    v.mobility = 0.10;
    out.push_back(std::move(v));
  }

  // Enterprise VPN gateways — stable names, some with CRL/AIA/OCSP
  // endpoints (the rare extensions of Table 6's right-hand columns).
  {
    VendorProfile v;
    v.name = "vpn-gateway";
    v.device_type = "VPN";
    v.cn_policy = CnPolicy::kDeviceUnique;
    v.unique_prefix = "vpn-";
    v.issuer_policy = IssuerPolicy::kSameAsSubject;
    v.key_policy = KeyPolicy::kStablePerDevice;
    v.serial_policy = SerialPolicy::kRandom;
    v.reissue_period_mean = 450 * kDay;
    v.validity_seconds = 5 * kYear;
    v.crl_prob = 0.10;
    v.aia_prob = 0.08;
    v.ocsp_prob = 0.01;
    v.policy_oid_prob = 0.01;
    v.weight = 1.0;
    out.push_back(std::move(v));
  }

  // Firewalls signed by an untrusted vendor CA — with the alternate-CA
  // profile below, the source of the paper's 11.99% untrusted-issuer
  // invalid certificates.
  {
    VendorProfile v;
    v.name = "sonic-firewall";
    v.device_type = "Firewall";
    v.cn_policy = CnPolicy::kDeviceUnique;
    v.unique_prefix = "fw-";
    v.issuer_policy = IssuerPolicy::kVendorCa;
    v.fixed_issuer = "SonicWALL Firewall DV CA";
    v.key_policy = KeyPolicy::kStablePerDevice;
    v.serial_policy = SerialPolicy::kIncrementing;
    v.reissue_period_mean = 450 * kDay;
    v.validity_seconds = 5 * kYear;
    v.crl_prob = 0.05;
    v.weight = 4.0;
    out.push_back(std::move(v));
  }

  // IP cameras signed by another untrusted vendor CA.
  {
    VendorProfile v;
    v.name = "ip-camera";
    v.device_type = "IP camera";
    v.cn_policy = CnPolicy::kDeviceUnique;
    v.unique_prefix = "cam-";
    v.issuer_policy = IssuerPolicy::kVendorCa;
    v.fixed_issuer = "HikVision Device CA";
    v.key_policy = KeyPolicy::kFreshPerReissue;
    v.serial_policy = SerialPolicy::kRandom;
    v.reissue_period_mean = 160 * kDay;
    v.validity_seconds = 10 * kYear;
    v.weight = 2.5;
    out.push_back(std::move(v));
  }

  // Factory-identical certificates: thousands of units of one firmware
  // image shipping the very same certificate (same key, same DER). These
  // are the certs the §6.2 duplicate filter exists for — advertised from
  // many IPs in every scan — and the source of Figure 7's invalid tail.
  {
    VendorProfile v;
    v.name = "factory-static";
    v.device_type = "Home router/cable modem";
    v.cn_policy = CnPolicy::kFixed;
    v.fixed_cn = "SpeedTouch";
    v.issuer_policy = IssuerPolicy::kFixedName;
    v.fixed_issuer = "Thomson";
    v.key_policy = KeyPolicy::kGlobalShared;
    v.serial_policy = SerialPolicy::kFixedOne;
    v.reissue_period_mean = 0;  // the factory cert is never reissued
    v.validity_seconds = 20 * kYear;
    v.clock.stuck_clock_prob = 1.0;  // identical NotBefore on every unit
    v.clock.stuck_clock_date = util::make_date(2008, 1, 1);
    v.factory_shards = 48;
    v.weight = 4.0;
    out.push_back(std::move(v));
  }

  // Devices with their public IP as CN *and* a fresh key per reissue:
  // unlinkable by construction (IP CNs are excluded from CN linking and the
  // key never repeats) — a large slice of the paper's 60.6% unlinked mass.
  {
    VendorProfile v;
    v.name = "public-ip-ephemeral";
    v.device_type = "Unknown";
    v.cn_policy = CnPolicy::kPublicIp;
    v.issuer_policy = IssuerPolicy::kSameAsSubject;
    v.key_policy = KeyPolicy::kFreshPerReissue;
    v.serial_policy = SerialPolicy::kRandom;
    v.reissue_period_mean = 12 * kDay;
    v.validity_seconds = 20 * kYear;
    v.clock.stuck_clock_prob = 0.18;
    v.clock.stuck_clock_date = util::make_date(1970, 1, 1);
    v.clock.negative_validity_prob = 0.06;
    v.weight = 5.0;
    out.push_back(std::move(v));
  }

  // ISP-managed cable modems whose certificates chain to an untrusted
  // operator CA and churn quickly — together with the vendor-CA devices
  // below, the bulk of the paper's 11.99% untrusted-issuer certificates.
  {
    VendorProfile v;
    v.name = "managed-cpe";
    v.device_type = "Home router/cable modem";
    v.cn_policy = CnPolicy::kPublicIp;
    v.issuer_policy = IssuerPolicy::kVendorCa;
    v.fixed_issuer = "CableLabs CM Device CA";
    v.vendor_ca_shards = 12;
    v.key_policy = KeyPolicy::kFreshPerReissue;
    v.serial_policy = SerialPolicy::kRandom;
    v.reissue_period_mean = 12 * kDay;
    v.validity_seconds = 10 * kYear;
    v.weight = 2.0;
    out.push_back(std::move(v));
  }

  // The small "Other" tail of Table 4: IPTV boxes, IP phones, printers, and
  // devices fronted by an alternate (untrusted) CA.
  {
    VendorProfile v;
    v.name = "iptv";
    v.device_type = "Other";
    v.cn_policy = CnPolicy::kFixed;
    v.fixed_cn = "iptv.local";
    v.issuer_policy = IssuerPolicy::kSameAsSubject;
    v.key_policy = KeyPolicy::kFreshPerReissue;
    v.serial_policy = SerialPolicy::kFixedOne;
    v.reissue_period_mean = 250 * kDay;
    v.validity_seconds = 20 * kYear;
    v.weight = 1.5;
    out.push_back(std::move(v));
  }
  {
    VendorProfile v;
    v.name = "ip-phone";
    v.device_type = "Other";
    v.cn_policy = CnPolicy::kDeviceUnique;
    v.unique_prefix = "sip-";
    v.issuer_policy = IssuerPolicy::kVendorCa;
    v.fixed_issuer = "Cisco SIP Device CA";
    v.key_policy = KeyPolicy::kStablePerDevice;
    v.serial_policy = SerialPolicy::kIncrementing;
    v.reissue_period_mean = 500 * kDay;
    v.validity_seconds = 10 * kYear;
    v.weight = 1.5;
    out.push_back(std::move(v));
  }
  {
    VendorProfile v;
    v.name = "printer";
    v.device_type = "Other";
    v.cn_policy = CnPolicy::kDeviceUnique;
    v.unique_prefix = "printer-";
    v.issuer_policy = IssuerPolicy::kSameAsSubject;
    v.key_policy = KeyPolicy::kStablePerDevice;
    v.serial_policy = SerialPolicy::kFixedOne;
    v.reissue_period_mean = 600 * kDay;
    v.validity_seconds = 20 * kYear;
    v.clock.stuck_clock_prob = 0.4;
    v.clock.stuck_clock_date = util::make_date(2005, 6, 1);
    v.weight = 1.5;
    out.push_back(std::move(v));
  }
  {
    VendorProfile v;
    v.name = "alt-ca-device";
    v.device_type = "Other";
    v.cn_policy = CnPolicy::kDeviceUnique;
    v.unique_prefix = "dev-";
    v.issuer_policy = IssuerPolicy::kVendorCa;
    v.fixed_issuer = "CAcert Community CA";
    v.key_policy = KeyPolicy::kStablePerDevice;
    v.serial_policy = SerialPolicy::kIncrementing;
    v.reissue_period_mean = 300 * kDay;
    v.validity_seconds = 3 * kYear;
    v.crl_prob = 0.2;
    v.aia_prob = 0.2;
    v.ocsp_prob = 0.02;
    v.policy_oid_prob = 0.02;
    v.weight = 0.8;
    out.push_back(std::move(v));
  }
  return out;
}

std::vector<VendorProfile> default_website_profiles() {
  std::vector<VendorProfile> out;
  const auto make_site = [&](std::string name, std::string issuer,
                             double weight, std::uint32_t replication,
                             KeyPolicy key_policy =
                                 KeyPolicy::kStablePerDevice) {
    VendorProfile v;
    v.name = std::move(name);
    v.device_type = "Website";
    v.cn_policy = CnPolicy::kDynDns;  // "<id>.<suffix>" domain names
    v.dyndns_suffix = "example-sites.com";
    v.issuer_policy = IssuerPolicy::kTrustedCa;
    v.fixed_issuer = std::move(issuer);  // which trusted intermediate signs
    // Zhang et al. found roughly half of valid-cert reissues keep the old
    // key; the website mix below splits key retention accordingly.
    v.key_policy = key_policy;
    v.serial_policy = SerialPolicy::kRandom;
    v.reissue_period_mean = 300 * kDay;  // median valid lifetime ~274 days
    v.validity_seconds = 400 * kDay;     // ~1.1-year validity periods
    v.crl_prob = 0.95;
    v.aia_prob = 0.95;
    v.ocsp_prob = 0.95;
    v.policy_oid_prob = 0.95;
    v.weight = weight;
    v.replication_max = replication;
    return v;
  };
  // Weights shaped after Table 1's top valid issuers; a slice of sites is
  // CDN-replicated so Figure 7's valid tail (99th pct ~11 hosts) exists.
  out.push_back(make_site("site-godaddy", "Go Daddy Secure Certification Authority", 19.0, 2,
                          KeyPolicy::kFreshPerReissue));
  out.push_back(make_site("site-rapidssl", "RapidSSL CA", 10.0, 2));
  out.push_back(make_site("site-positivessl", "PositiveSSL CA 2", 5.0, 2,
                          KeyPolicy::kFreshPerReissue));
  out.push_back(make_site("site-godaddy-g2", "Go Daddy Secure Certificate Authority - G2", 4.4, 2));
  out.push_back(make_site("site-geotrust", "GeoTrust DV SSL CA", 4.4, 2,
                          KeyPolicy::kFreshPerReissue));
  out.push_back(make_site("site-comodo", "COMODO High-Assurance Secure Server CA", 3.0, 2,
                          KeyPolicy::kFreshPerReissue));
  out.push_back(make_site("site-verisign", "VeriSign Class 3 Secure Server CA - G3", 2.5, 2));
  out.push_back(make_site("site-cdn", "GlobalSign CloudSSL CA", 1.2, 40));
  // A long-tail CA population so valid certificates show ~1.5k distinct
  // issuer keys as in §5.3.
  for (int i = 0; i < 24; ++i) {
    out.push_back(make_site("site-tail-" + std::to_string(i),
                            "Regional CA " + std::to_string(i), 0.35, 1,
                            i % 3 == 0 ? KeyPolicy::kStablePerDevice
                                       : KeyPolicy::kFreshPerReissue));
  }
  return out;
}

}  // namespace sm::simworld
