// World — the end-to-end simulator: builds an ISP topology, a CA hierarchy,
// and a device + website population; then executes the two scan campaigns
// against it, producing the ScanArchive that the analysis, linking, and
// tracking layers consume.
//
// Everything is deterministic in the seed. Ground-truth device identities
// ride along on each observation so linking quality can be scored — the
// validation the paper could not do.
//
// Scan execution is parallel (plan/commit over device shards on a
// util::ThreadPool) with bit-identical results at any thread count: the
// archive bytes for a given config are the same whether the world is built
// with 1 thread or 64.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "crypto/signature.h"
#include "net/as_database.h"
#include "net/route_table.h"
#include "pki/root_store.h"
#include "pki/verifier.h"
#include "revocation/ecosystem.h"
#include "scan/archive.h"
#include "scan/prefix_set.h"
#include "scan/schedule.h"
#include "simworld/isp.h"
#include "simworld/vendor.h"

namespace sm::util {
class ThreadPool;
}  // namespace sm::util

namespace sm::simworld {

/// Tunables for a simulated world.
struct WorldConfig {
  std::uint64_t seed = 1;

  /// End-user devices (the invalid-certificate population).
  std::size_t device_count = 5000;

  /// Valid websites hosted in content ASes. Sized so the per-scan invalid
  /// fraction lands near the paper's 65%.
  std::size_t website_count = 2200;

  /// Scan schedule shape (scale shrinks both campaigns proportionally).
  scan::ScheduleConfig schedule{};

  /// Fraction of address pools each campaign's operators never scan — the
  /// blacklisting behind Figure 1's dataset discrepancy. Rapid7's is larger
  /// (its scans were ~20% smaller).
  double umich_blacklist_fraction = 0.04;
  double rapid7_blacklist_fraction = 0.12;

  /// Fraction of devices born *after* the study starts (drives Figure 2's
  /// growth in invalid certificates).
  double late_birth_fraction = 0.55;

  /// Per-scan probability that a (non-mobile) device switches ISPs. Devices
  /// on dynamic (short-lease) ISPs get an additional churn component.
  double base_move_probability = 0.0005;

  /// Signature scheme for all issued certificates. kSimSha256 is the
  /// population-scale default; kRsaSha256 exercises real RSA end-to-end and
  /// is practical for small worlds only.
  crypto::SigScheme scheme = crypto::SigScheme::kSimSha256;

  /// RSA modulus bits when scheme == kRsaSha256.
  std::size_t rsa_bits = 512;

  /// Revocation-ecosystem knobs. After the scan campaigns finish, every CA
  /// publishes CRL editions and answers OCSP in-process
  /// (revocation::Ecosystem), and the BatchVerifier's revocation pass
  /// classifies every archived certificate as of one day past the last
  /// scan. The mass-revocation event (a Heartbleed analog) strikes
  /// `mass_event_ca` at the campaign midpoint.
  struct RevocationKnobs {
    bool enabled = true;
    double stale_fraction = 0.15;
    double unreachable_fraction = 0.10;
    double ocsp_unknown_fraction = 0.10;
    double ocsp_unreachable_fraction = 0.10;
    double baseline_revoked_fraction = 0.02;
    bool mass_event_enabled = true;
    /// Common name of the victim CA (a website issuer archetype).
    std::string mass_event_ca = "Go Daddy Secure Certification Authority";
    double mass_event_fraction = 0.5;
  };
  RevocationKnobs revocation;

  /// A small, fast world for unit tests.
  static WorldConfig tiny();

  /// The default experiment world (used by benches and EXPERIMENTS.md).
  static WorldConfig paper();
};

/// Everything a world run produces.
struct WorldResult {
  scan::ScanArchive archive;
  net::AsDatabase as_db;
  net::RoutingHistory routing;
  scan::PrefixSet umich_blacklist;
  scan::PrefixSet rapid7_blacklist;
  std::vector<scan::ScanEvent> schedule;
  pki::RootStore roots;

  /// Certificate issuance events. >= archive.certs().size(): devices of a
  /// factory-static firmware batch issue byte-identical certificates that
  /// intern to a single archive record.
  std::size_t issued_certificates = 0;
  /// True number of simulated devices (ground truth).
  std::size_t true_device_count = 0;
  /// True number of simulated websites.
  std::size_t true_website_count = 0;
  /// Lease intervals the scanner dropped because a (slot, scan) pair
  /// overlapped more than the per-replica interval cap — nonzero only for
  /// degenerately tiny leases, and surfaced here so the cap is never a
  /// silent data loss (it is 0 at the default configs; tests assert so).
  std::uint64_t dropped_lease_intervals = 0;
  /// Validation-work counters from the BatchVerifier that classified every
  /// issued certificate (all zero when the result was loaded from a bundle
  /// rather than simulated).
  pki::BatchVerifyStats verify_stats;

  /// Revocation pass output. The statuses live *outside* the archive
  /// (keyed by fingerprint, like the notary's key-count injection) so the
  /// archive bytes — and every golden hash over them — are untouched by
  /// the revocation subsystem. Empty/null when the pass was disabled or
  /// the result was loaded from a bundle.
  struct RevocationOutcome {
    /// The publishers; kept alive for analysis ground truth, notary
    /// serving, and benches. Shared because WorldResult is moved around.
    std::shared_ptr<const revocation::Ecosystem> ecosystem;
    /// Mechanism-path status per archived certificate
    /// (BatchVerifier::check_revocation_all against the ecosystem).
    std::unordered_map<scan::CertFingerprint, pki::RevocationStatus,
                       scan::FingerprintHash> statuses;
    /// The instant the pass evaluated staleness at.
    util::UnixTime check_time = 0;
  };
  RevocationOutcome revocation;
};

/// The simulator. Construct with a config, call run() once.
class World {
 public:
  /// `pool` is the thread pool scan planning runs on; null uses the
  /// process-global pool. The result is identical for every pool size.
  explicit World(WorldConfig config, util::ThreadPool* pool = nullptr);

  /// Executes the full scan schedule and returns the dataset.
  WorldResult run();

 private:
  struct DeviceState;
  class Impl;
  WorldConfig config_;
  util::ThreadPool* pool_ = nullptr;
};

}  // namespace sm::simworld
