// Vendor certificate policies — the per-manufacturer behaviours that, in
// aggregate, produce every invalid-certificate pathology the paper reports:
// Lancom's globally-shared keypair, FRITZ!Box's stable keys + shared SAN +
// myfritz.net dynDNS names, Western Digital's "WD2GO <serial>" names,
// 192.168.1.1 and empty-string issuers, PlayBook "Issuer = PlayBook: <MAC>"
// tablets, IP-as-CN devices, epoch-stuck clocks, negative validity periods,
// and year-3000 expiries.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/route_table.h"

namespace sm::simworld {

/// How a device picks its certificate's subject Common Name.
enum class CnPolicy : std::uint8_t {
  kFixed,         ///< every device uses the same CN (e.g. "192.168.1.1")
  kDeviceUnique,  ///< stable per-device name, e.g. "WD2GO 293822"
  kPublicIp,      ///< the device's current public IP (changes with leases)
  kEmpty,         ///< empty subject
  kDynDns,        ///< "<device-id>.<suffix>", e.g. "abc123.myfritz.net"
};

/// How a device fills its certificate's issuer name.
enum class IssuerPolicy : std::uint8_t {
  kSameAsSubject,  ///< classic self-signed: issuer == subject
  kFixedName,      ///< vendor-wide issuer CN, e.g. "www.lancom-systems.de"
  kEmpty,          ///< empty issuer (Table 1's "(Empty string)")
  kDeviceMac,      ///< "<prefix><MAC>", e.g. "PlayBook: 1C:69:..."
  kVendorCa,       ///< signed by the vendor's (untrusted) CA certificate
  kTrustedCa,      ///< signed by a trusted CA chain (valid websites)
};

/// How key material evolves across reissues.
enum class KeyPolicy : std::uint8_t {
  kGlobalShared,     ///< all of the vendor's devices share one keypair
  kStablePerDevice,  ///< unique per device, kept across reissues
  kFreshPerReissue,  ///< regenerated with every certificate
};

/// How serial numbers are chosen.
enum class SerialPolicy : std::uint8_t {
  kRandom,        ///< fresh random serial per certificate
  kFixedOne,      ///< always serial 1 (common in device firmware)
  kIncrementing,  ///< per-device counter
  kResetting,     ///< counter that wraps 1..3 (reboot-reset firmware) — the
                  ///< behaviour that makes Issuer Name + Serial No. recur
                  ///< across a PlayBook's reissues and therefore link them
};

/// Device clock / validity pathologies, drawn per reissue.
struct ClockModel {
  /// Probability NotBefore is a fixed factory date far in the past (the
  /// >1000-day mode of Figure 5) instead of the reissue instant.
  double stuck_clock_prob = 0.0;
  /// The stuck date used when the above fires.
  util::UnixTime stuck_clock_date = 0;
  /// Probability the clock runs ahead, putting NotBefore after the reissue
  /// instant (Figure 5's 2.9% negative tail). Offset is 1-30 days.
  double clock_ahead_prob = 0.0;
  /// Probability NotAfter < NotBefore (Figure 3's 5.38% negative validity).
  double negative_validity_prob = 0.0;
  /// Probability of an absurd far-future NotAfter (year 3000+).
  double far_future_prob = 0.0;
};

/// A complete vendor behaviour profile.
struct VendorProfile {
  std::string name;         ///< short slug, e.g. "lancom"
  std::string device_type;  ///< paper Table 4 category

  CnPolicy cn_policy = CnPolicy::kFixed;
  std::string fixed_cn;        ///< for kFixed
  std::string unique_prefix;   ///< for kDeviceUnique ("WD2GO ")
  std::string dyndns_suffix;   ///< for kDynDns ("myfritz.net")

  IssuerPolicy issuer_policy = IssuerPolicy::kSameAsSubject;
  std::string fixed_issuer;    ///< for kFixedName / prefix for kDeviceMac
  /// For kVendorCa: number of regional CA instances ("<issuer> 03"); a
  /// device is pinned to one shard. 1 = a single vendor-wide CA.
  std::uint32_t vendor_ca_shards = 1;

  KeyPolicy key_policy = KeyPolicy::kFreshPerReissue;
  SerialPolicy serial_policy = SerialPolicy::kRandom;
  /// For kGlobalShared factory certificates: number of firmware batches.
  /// Devices in one batch serve a byte-identical certificate (the batch
  /// index becomes the serial number), so each batch's cert is advertised
  /// from several IPs per scan — the population the §6.2 filter excludes.
  std::uint32_t factory_shards = 1;

  /// SANs present on every certificate (prefixed form, e.g.
  /// "dns:fritz.fonwlan.box").
  std::vector<std::string> fixed_sans;
  /// Also add the device's own unique name as a dNSName SAN.
  bool san_includes_device_name = false;

  /// Mean seconds between reissues; 0 = never reissue (factory cert only).
  std::int64_t reissue_period_mean = 0;
  /// Additionally reissue whenever the device's IP changes (FRITZ!Box-style
  /// regenerate-on-reconnect).
  bool reissue_on_ip_change = false;

  /// Nominal validity period (NotAfter - NotBefore), e.g. 20 years.
  std::int64_t validity_seconds = 0;

  ClockModel clock;

  /// Probabilities of carrying the rare revocation-infrastructure
  /// extensions (paper: >99% of invalid certs have none).
  double crl_prob = 0.0;
  double aia_prob = 0.0;
  double ocsp_prob = 0.0;
  double policy_oid_prob = 0.0;

  /// X.509 wire version to emit (2 = v3). A small population emits illegal
  /// versions, which the dataset builder then disregards, as the paper did.
  std::int64_t raw_version = 2;
  /// Probability of emitting an illegal version (overrides raw_version).
  double illegal_version_prob = 0.0;

  /// Relative population weight among end-user devices.
  double weight = 1.0;
  /// ASes this vendor's devices concentrate in (empty = any transit AS).
  std::vector<net::Asn> preferred_ases;
  /// Probability that a device moves to a different AS between consecutive
  /// scans (mobile devices like the PlayBook are high).
  double mobility = 0.0;
  /// Number of IPs simultaneously serving the same certificate (websites /
  /// CDNs; 1 for physical devices). Drawn in [1, replication_max].
  std::uint32_t replication_max = 1;
};

/// The default vendor population, with weights set so the device-type
/// breakdown approximates the paper's Table 4 and the issuer table
/// approximates Table 1.
std::vector<VendorProfile> default_vendor_profiles();

/// The valid-website profile population (CA-signed certificates hosted in
/// content ASes). Returned separately because worlds size the two
/// populations independently.
std::vector<VendorProfile> default_website_profiles();

}  // namespace sm::simworld
