// World-bundle persistence: everything the analysis/linking/tracking layers
// need from a WorldResult — the scan archive, the dated routing snapshots,
// the AS metadata, and the campaign blacklists — in one file, so a dataset
// can be produced once (by simulation or by importing real scans) and then
// analysed repeatedly without re-running the simulator.
//
// Format: "SMWB" magic + version, then the embedded SMAR archive followed
// by the routing/AS/blacklist sections. The root store is intentionally
// omitted (validation outcomes are already baked into the records).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "simworld/world.h"

namespace sm::simworld {

/// Serializes the analysable parts of a world result.
void save_world_bundle(const WorldResult& world, std::ostream& out);

/// Deserializes a bundle. The returned WorldResult carries an empty root
/// store and schedule entries reconstructed from the archive's scans.
/// Returns nullopt on malformed input.
std::optional<WorldResult> load_world_bundle(std::istream& in);

/// File-path conveniences.
bool save_world_bundle_file(const WorldResult& world, const std::string& path);
std::optional<WorldResult> load_world_bundle_file(const std::string& path);

}  // namespace sm::simworld
