// ISP / AS models — address pools, reassignment policies, and the routing
// events (prefix transfers) that the tracking layer later rediscovers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/as_database.h"
#include "net/route_table.h"

namespace sm::simworld {

/// Well-known AS numbers used by the default world (real ASNs from the
/// paper's Table 3 plus supporting cast).
namespace asn {
inline constexpr net::Asn kDeutscheTelekom = 3320;
inline constexpr net::Asn kComcast = 7922;
inline constexpr net::Asn kVodafoneDe = 3209;
inline constexpr net::Asn kTelefonicaDe = 6805;
inline constexpr net::Asn kKoreaTelecom = 4766;
inline constexpr net::Asn kAttInternet = 7018;
inline constexpr net::Asn kVerizonEast = 19262;
inline constexpr net::Asn kMciVerizon = 701;
inline constexpr net::Asn kGoDaddy = 26496;
inline constexpr net::Asn kUnifiedLayer = 46606;
inline constexpr net::Asn kAmazon14618 = 14618;
inline constexpr net::Asn kAmazon16509 = 16509;
inline constexpr net::Asn kSoftLayer = 36351;
inline constexpr net::Asn kBlackberryMobile = 18705;
inline constexpr net::Asn kTelefonicaVen = 8048;
inline constexpr net::Asn kTimCelular = 26615;
inline constexpr net::Asn kBsesTelecom = 17426;
}  // namespace asn

/// Configuration for one autonomous system in the simulated world.
struct IspConfig {
  net::Asn asn = 0;
  std::string name;
  std::string country;  ///< ISO alpha-3 as the paper prints (e.g. "DEU")
  net::AsType type = net::AsType::kTransitAccess;

  /// Address pools announced by this AS.
  std::vector<net::Prefix> pools;

  /// Fraction of subscriber devices with a static IP (Figure 11's subject).
  double static_fraction = 0.9;

  /// Dynamic-lease duration in seconds (e.g. 24h for the German ISPs that
  /// reassign between every scan).
  std::int64_t lease_seconds = 30 * 24 * 3600;

  /// Relative share of the device population homed here (transit/access
  /// ASes only; content ASes host websites instead).
  double device_share = 1.0;
};

/// A dated prefix transfer: `prefix` moves from AS `from` to AS `to` at
/// `when` — the §7.3 Verizon -> MCI style bulk movement.
struct PrefixTransfer {
  net::Prefix prefix;
  net::Asn from = 0;
  net::Asn to = 0;
  util::UnixTime when = 0;
};

/// The default AS population: the paper's named ISPs and hosters plus a
/// synthetic long tail of transit/content/enterprise ASes with a spread of
/// reassignment policies (so Figure 11 has a distribution to show).
std::vector<IspConfig> default_isps();

/// The default prefix-transfer events (Verizon -> MCI twice, an AT&T
/// consolidation) over the study window.
std::vector<PrefixTransfer> default_transfers(
    const std::vector<IspConfig>& isps);

/// Builds the AS metadata database for a set of ISPs.
net::AsDatabase build_as_database(const std::vector<IspConfig>& isps);

/// Builds the time-varying routing history: a base snapshot of every ISP's
/// pools plus one snapshot per transfer event.
net::RoutingHistory build_routing_history(
    const std::vector<IspConfig>& isps,
    const std::vector<PrefixTransfer>& transfers, util::UnixTime base_time);

}  // namespace sm::simworld
