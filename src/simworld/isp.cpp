#include "simworld/isp.h"

#include <algorithm>

#include "util/prng.h"

namespace sm::simworld {

namespace {

constexpr std::int64_t kDay = util::kSecondsPerDay;

/// Deterministically hands out non-overlapping /16 pools, spreading them
/// across many /8s (Figure 1 plots per-/8 behaviour, so pool diversity in
/// the first octet matters). Reserved/multicast/private ranges are skipped.
class PoolAllocator {
 public:
  net::Prefix next() {
    for (;;) {
      const unsigned a = first_octet_;
      const unsigned b = second_octet_;
      advance();
      if (a == 0 || a == 10 || a == 127 || a >= 224 ||
          (a == 172 && b >= 16 && b < 32) || (a == 192 && b == 168) ||
          (a == 169 && b == 254)) {
        continue;
      }
      return net::Prefix(
          net::Ipv4Address::from_octets(static_cast<std::uint8_t>(a),
                                        static_cast<std::uint8_t>(b), 0, 0),
          16);
    }
  }

 private:
  void advance() {
    // Walk first octets with a large stride so consecutive pools land in
    // different /8s; bump the second octet after each full cycle.
    first_octet_ = (first_octet_ + 37) % 224;
    if (first_octet_ < 4) {
      first_octet_ += 4;
      ++second_octet_;
    }
  }

  unsigned first_octet_ = 5;
  unsigned second_octet_ = 0;
};

void add_isp(std::vector<IspConfig>& out, PoolAllocator& alloc, net::Asn asn,
             std::string name, std::string country, net::AsType type,
             double static_fraction, std::int64_t lease_seconds,
             double device_share, int pool_count = 1) {
  IspConfig isp;
  isp.asn = asn;
  isp.name = std::move(name);
  isp.country = std::move(country);
  isp.type = type;
  isp.static_fraction = static_fraction;
  isp.lease_seconds = lease_seconds;
  isp.device_share = device_share;
  for (int i = 0; i < pool_count; ++i) isp.pools.push_back(alloc.next());
  out.push_back(std::move(isp));
}

}  // namespace

std::vector<IspConfig> default_isps() {
  std::vector<IspConfig> out;
  PoolAllocator alloc;
  using net::AsType;

  // --- the paper's named access ISPs (Table 3, §6.4.2, §7.4) --------------
  // German ISPs reassign dynamic IPs daily — the source of the paper's low
  // IP-level / high AS-level consistency for FRITZ!Box devices.
  add_isp(out, alloc, asn::kDeutscheTelekom, "Deutsche Telekom AG", "DEU",
          AsType::kTransitAccess, 0.24, 1 * kDay, 16.0, 3);
  add_isp(out, alloc, asn::kVodafoneDe, "Vodafone GmbH", "DEU",
          AsType::kTransitAccess, 0.10, 1 * kDay, 4.0, 2);
  add_isp(out, alloc, asn::kTelefonicaDe, "Telefonica Germany GmbH", "DEU",
          AsType::kTransitAccess, 0.10, 1 * kDay, 3.0, 2);
  // US cable ISPs barely reassign (§7.4: Comcast 90% static, AT&T 88.9%).
  add_isp(out, alloc, asn::kComcast, "Comcast Cable Comm., Inc.", "USA",
          AsType::kTransitAccess, 0.93, 60 * kDay, 5.0, 3);
  add_isp(out, alloc, asn::kAttInternet, "AT&T Internet Services", "USA",
          AsType::kTransitAccess, 0.92, 45 * kDay, 3.0, 2);
  add_isp(out, alloc, asn::kKoreaTelecom, "Korea Telecom", "KOR",
          AsType::kTransitAccess, 0.55, 14 * kDay, 3.0, 2);
  // Verizon's two ASes; prefixes transfer 19262 -> 701 during the study.
  add_isp(out, alloc, asn::kVerizonEast, "Verizon Internet Services", "USA",
          AsType::kTransitAccess, 0.85, 30 * kDay, 3.0, 2);
  add_isp(out, alloc, asn::kMciVerizon, "MCI Communications Services", "USA",
          AsType::kTransitAccess, 0.80, 30 * kDay, 1.0, 1);
  // Fully-dynamic ASes (§7.4: >=75% new IP between every scan).
  add_isp(out, alloc, asn::kTelefonicaVen, "Telefonica Venezolana", "VEN",
          AsType::kTransitAccess, 0.004, 1 * kDay, 0.8, 1);
  add_isp(out, alloc, asn::kTimCelular, "Tim Celular S.A.", "BRA",
          AsType::kTransitAccess, 0.03, 1 * kDay, 0.5, 1);
  add_isp(out, alloc, asn::kBsesTelecom, "BSES TeleCom Limited", "IND",
          AsType::kTransitAccess, 0.047, 1 * kDay, 0.4, 1);
  // Mobile network for the PlayBook population: new IP practically every
  // connection.
  add_isp(out, alloc, asn::kBlackberryMobile, "BlackBerry Mobile Net", "CAN",
          AsType::kTransitAccess, 0.0, kDay / 2, 1.2, 1);

  // --- content / hosting ASes (host valid websites, Table 3 top) ----------
  add_isp(out, alloc, asn::kGoDaddy, "GoDaddy.com, LLC", "USA",
          AsType::kContent, 1.0, 365 * kDay, 5.0, 2);
  add_isp(out, alloc, asn::kUnifiedLayer, "Unified Layer", "USA",
          AsType::kContent, 1.0, 365 * kDay, 2.0, 1);
  add_isp(out, alloc, asn::kAmazon14618, "Amazon, Inc.", "USA",
          AsType::kContent, 1.0, 365 * kDay, 1.6, 1);
  add_isp(out, alloc, asn::kSoftLayer, "SoftLayer Technologies", "USA",
          AsType::kContent, 1.0, 365 * kDay, 1.5, 1);
  add_isp(out, alloc, asn::kAmazon16509, "Amazon, Inc.", "USA",
          AsType::kContent, 1.0, 365 * kDay, 1.4, 1);

  // --- synthetic long tail -------------------------------------------------
  // Access ISPs with a spread of reassignment policies shaped like
  // Figure 11: most ASes are static-heavy, a minority fully dynamic.
  const char* countries[] = {"USA", "DEU", "GBR", "FRA", "JPN", "BRA",
                             "ITA", "ESP", "NLD", "POL", "TUR", "RUS",
                             "CHN", "IND", "MEX", "CAN"};
  util::Rng rng(util::fnv1a("default-isps"));
  for (int i = 0; i < 48; ++i) {
    const net::Asn as_number = 50000 + static_cast<net::Asn>(i);
    double static_fraction;
    std::int64_t lease;
    const double bucket = rng.unit();
    if (bucket < 0.58) {
      static_fraction = 0.95 + 0.05 * rng.unit();
      lease = rng.range(30, 90) * kDay;
    } else if (bucket < 0.80) {
      static_fraction = 0.50 + 0.40 * rng.unit();
      lease = rng.range(7, 30) * kDay;
    } else if (bucket < 0.92) {
      static_fraction = 0.20 + 0.30 * rng.unit();
      lease = rng.range(2, 7) * kDay;
    } else {
      static_fraction = 0.05 * rng.unit();
      lease = 1 * kDay;
    }
    add_isp(out, alloc, as_number,
            "Access Network " + std::to_string(i),
            countries[rng.below(std::size(countries))],
            net::AsType::kTransitAccess, static_fraction, lease,
            0.15 + 0.5 * rng.unit());
  }
  for (int i = 0; i < 8; ++i) {
    add_isp(out, alloc, 60000 + static_cast<net::Asn>(i),
            "Hosting Co " + std::to_string(i),
            countries[rng.below(std::size(countries))], net::AsType::kContent,
            1.0, 365 * kDay, 0.2 + 0.4 * rng.unit());
  }
  for (int i = 0; i < 10; ++i) {
    add_isp(out, alloc, 64600 + static_cast<net::Asn>(i),
            "Enterprise Net " + std::to_string(i),
            countries[rng.below(std::size(countries))],
            net::AsType::kEnterprise, 0.95, 90 * kDay, 0.08 + 0.1 * rng.unit());
  }
  return out;
}

std::vector<PrefixTransfer> default_transfers(
    const std::vector<IspConfig>& isps) {
  std::vector<PrefixTransfer> out;
  const auto find_pools = [&](net::Asn a) -> const std::vector<net::Prefix>* {
    for (const IspConfig& isp : isps) {
      if (isp.asn == a) return &isp.pools;
    }
    return nullptr;
  };
  // Verizon transferred blocks to MCI twice (§7.3), and AT&T consolidated
  // address space in September 2013.
  if (const auto* vz = find_pools(asn::kVerizonEast); vz && vz->size() >= 2) {
    out.push_back(PrefixTransfer{(*vz)[0], asn::kVerizonEast,
                                 asn::kMciVerizon,
                                 util::make_date(2013, 4, 15)});
    out.push_back(PrefixTransfer{(*vz)[1], asn::kVerizonEast,
                                 asn::kMciVerizon,
                                 util::make_date(2014, 6, 1)});
  }
  if (const auto* att = find_pools(asn::kAttInternet); att && !att->empty()) {
    out.push_back(PrefixTransfer{att->back(), asn::kAttInternet,
                                 asn::kComcast, util::make_date(2013, 9, 10)});
  }
  return out;
}

net::AsDatabase build_as_database(const std::vector<IspConfig>& isps) {
  net::AsDatabase db;
  for (const IspConfig& isp : isps) {
    db.add(net::AsInfo{isp.asn, isp.name, isp.country, isp.type});
  }
  return db;
}

net::RoutingHistory build_routing_history(
    const std::vector<IspConfig>& isps,
    const std::vector<PrefixTransfer>& transfers, util::UnixTime base_time) {
  net::RoutingHistory history;
  net::RouteTable table;
  for (const IspConfig& isp : isps) {
    for (const net::Prefix& pool : isp.pools) {
      table.announce(pool, isp.asn);
    }
  }
  history.add_snapshot(base_time, table);
  // Apply transfers cumulatively, one snapshot per event (sorted by time).
  std::vector<PrefixTransfer> sorted = transfers;
  std::sort(sorted.begin(), sorted.end(),
            [](const PrefixTransfer& a, const PrefixTransfer& b) {
              return a.when < b.when;
            });
  for (const PrefixTransfer& transfer : sorted) {
    table.announce(transfer.prefix, transfer.to);
    history.add_snapshot(transfer.when, table);
  }
  return history;
}

}  // namespace sm::simworld
