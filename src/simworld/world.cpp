#include "simworld/world.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <numeric>
#include <optional>
#include <stdexcept>

#include "pki/verifier.h"
#include "scan/permutation.h"
#include "util/hex.h"
#include "util/prng.h"
#include "util/thread_pool.h"
#include "x509/builder.h"

namespace sm::simworld {

namespace {

constexpr std::int64_t kDay = util::kSecondsPerDay;

/// Per-replica lease-interval cap. Only degenerately tiny leases (shorter
/// than scan_window / 12) can hit it; when they do the overflow is counted
/// in WorldResult::dropped_lease_intervals rather than dropped silently.
constexpr std::size_t kMaxLeaseIntervals = 12;

std::uint64_t mix3(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  util::SplitMix64 sm(a ^ (b * 0x9e3779b97f4a7c15ULL) ^
                      (c * 0xc2b2ae3d27d4eb4fULL));
  return sm.next();
}

/// An ISP's address pools flattened into one index space, plus per-epoch
/// affine permutations that hand dynamic devices a fresh pool-wide IP each
/// lease epoch without collisions between slots.
struct IspRuntime {
  IspConfig cfg;
  std::vector<std::uint64_t> pool_base;  // cumulative sizes
  std::uint64_t total = 0;
  std::uint32_t next_slot = 0;

  explicit IspRuntime(IspConfig c) : cfg(std::move(c)) {
    for (const net::Prefix& pool : cfg.pools) {
      pool_base.push_back(total);
      total += pool.size();
    }
  }

  /// The address of position `index` within pool `pool_index`.
  net::Ipv4Address addr_in_pool(std::size_t pool_index,
                                std::uint64_t index) const {
    return net::Ipv4Address(static_cast<std::uint32_t>(
        cfg.pools[pool_index].address().value() + index));
  }

  /// Position of `slot` within pool `pool_index` under the affine
  /// permutation keyed by `epoch_key`. Devices are pinned to one regional
  /// pool, so a prefix transfer carries its subscribers to the new AS
  /// instead of scattering them across the donor's other pools.
  std::uint64_t permute(std::size_t pool_index, std::uint32_t slot,
                        std::uint64_t epoch_key) const {
    const std::uint64_t size = cfg.pools[pool_index].size();
    const std::uint64_t h = mix3(cfg.asn, epoch_key, 0x51ee7 + pool_index);
    std::uint64_t a = (h | 1) % size;
    if (a == 0) a = 1;
    while (std::gcd(a, size) != 1) {
      a += 2;
      if (a >= size) a = 1;
    }
    const std::uint64_t b =
        mix3(cfg.asn, epoch_key, 0xb1a5 + pool_index) % size;
    return (a * (slot % size) + b) % size;
  }
};

std::string format_mac(std::uint64_t h) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%02X:%02X:%02X:%02X:%02X:%02X",
                static_cast<unsigned>(h & 0xff),
                static_cast<unsigned>((h >> 8) & 0xff),
                static_cast<unsigned>((h >> 16) & 0xff),
                static_cast<unsigned>((h >> 24) & 0xff),
                static_cast<unsigned>((h >> 32) & 0xff),
                static_cast<unsigned>((h >> 40) & 0xff));
  return buf;
}

std::string hex_token(std::uint64_t h, int digits) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  for (int i = 0; i < digits; ++i) {
    out.push_back(kDigits[h & 0xf]);
    h >>= 4;
  }
  return out;
}

/// A lease interval overlapping one scan window.
struct Interval {
  util::UnixTime from, to;
  std::int64_t epoch;
  util::UnixTime lease_start;
};

/// One planned probe response. `issue_index` is the index of the last
/// entry of DevicePlan::issues planned at the time of the hit (-1 when the
/// device still serves a certificate issued before this scan); the commit
/// phase interns issues up to it before appending the observation, which
/// reproduces the serial intern/observe interleaving exactly.
struct PlannedHit {
  std::uint32_t ip = 0;
  std::int32_t issue_index = -1;
};

/// Everything one device contributes to one scan, computed in the parallel
/// plan phase and applied by the serial commit. Buffers are reused across
/// scans (clear keeps capacity).
struct DevicePlan {
  std::vector<scan::CertRecord> issues;
  std::vector<PlannedHit> hits;
  std::uint32_t dropped = 0;
};

/// A device's planned ISP move for one round (plan phase output; the slot
/// is assigned at commit because `next_slot` is shared per ISP).
struct MoveDecision {
  bool moved = false;
  bool new_static = false;
  std::uint32_t new_isp = 0;
  std::uint32_t new_pool = 0;
};

}  // namespace

WorldConfig WorldConfig::tiny() {
  WorldConfig c;
  c.seed = 7;
  c.device_count = 220;
  c.website_count = 90;
  c.schedule.scale = 0.12;
  return c;
}

WorldConfig WorldConfig::paper() {
  WorldConfig c;
  c.seed = 42;
  c.device_count = 5000;
  c.website_count = 1700;
  c.schedule.scale = 0.45;
  return c;
}

struct World::DeviceState {
  std::uint32_t vendor = 0;
  std::uint32_t isp = 0;
  std::uint32_t pool = 0;  ///< home pool within the ISP
  std::uint32_t slot = 0;
  bool static_ip = false;
  bool is_website = false;
  std::uint32_t replication = 1;
  util::UnixTime born = 0;

  std::string name;
  std::string mac;

  crypto::SigningKey stable_key;
  bool has_stable_key = false;
  std::int64_t current_epoch = -1;
  scan::CertId current_cert = 0;
  std::uint64_t serial_counter = 0;
  std::int64_t reissue_period = 0;  ///< per-device jittered period

  /// Values that are constant per (isp, pool, slot+replica) but were
  /// recomputed in the scan inner loop: the lease-phase offset and the
  /// static-assignment address. Refreshed on every ISP move.
  struct ReplicaCache {
    std::int64_t lease_phase = 0;
    net::Ipv4Address static_addr{};
  };
  std::vector<ReplicaCache> replicas;
};

class World::Impl {
 public:
  Impl(const WorldConfig& config, util::ThreadPool* pool)
      : config_(config),
        master_rng_(config.seed),
        workers_(pool != nullptr ? *pool : util::ThreadPool::global()) {}

  WorldResult run();

 private:
  using DeviceState = World::DeviceState;

  void build_topology();
  void build_pki();
  void build_population();
  void build_blacklists();
  void build_revocation();
  void maybe_move_devices();
  void run_scan(std::size_t scan_index, const scan::ScanEvent& event);

  void plan_device(std::uint32_t device_id,
                   const scan::AddressPermutation& perm,
                   const scan::PrefixSet& blacklist,
                   const scan::ScanEvent& event, DevicePlan& plan);
  void plan_hit(std::uint32_t device_id, DevicePlan& plan,
                util::UnixTime probe, std::int64_t lease_epoch,
                util::UnixTime lease_start, net::Ipv4Address current_ip);
  scan::CertRecord build_cert_record(std::uint32_t device_id,
                                     std::int64_t epoch_id,
                                     util::UnixTime issue_time,
                                     net::Ipv4Address current_ip);
  MoveDecision plan_move(std::uint32_t device_id, std::uint64_t move_round);
  void refresh_replica_cache(DeviceState& device) const;

  util::Rng rng_at(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
    return util::Rng(mix3(config_.seed ^ a, b, c));
  }

  std::uint32_t pick_isp(const VendorProfile& vendor, util::Rng& rng,
                         bool website);

  const VendorProfile& vendor_of(const DeviceState& device) const {
    return device.is_website ? website_profiles_[device.vendor]
                             : device_profiles_[device.vendor];
  }

  WorldConfig config_;
  util::Rng master_rng_;
  std::uint64_t move_round_ = 0;
  util::ThreadPool& workers_;

  std::vector<IspRuntime> isps_;
  std::vector<std::size_t> transit_isps_;  // indices into isps_
  std::vector<std::size_t> content_isps_;
  std::vector<PrefixTransfer> transfers_;

  std::vector<VendorProfile> device_profiles_;
  std::vector<VendorProfile> website_profiles_;
  std::vector<crypto::SigningKey> vendor_shared_keys_;  // per device profile

  // CA infrastructure.
  struct CaEntry {
    crypto::SigningKey key;
    x509::Certificate cert;
  };
  std::vector<CaEntry> root_cas_;  // retained: roots sign CRLs too
  std::map<std::string, CaEntry> trusted_intermediates_;
  std::map<std::string, CaEntry> vendor_cas_;

  std::vector<DeviceState> devices_;

  // Per-scan plan buffers, indexed by device id (reused across scans).
  std::vector<DevicePlan> plans_;
  std::vector<MoveDecision> moves_;

  WorldResult result_;
  pki::IntermediatePool intermediates_;
  // Memoizing validator over roots/intermediates; constructed once both
  // stores are final (its memo caches by certificate address) and shared by
  // every planning thread.
  std::optional<pki::BatchVerifier> verifier_;
  util::UnixTime study_start_ = 0;
  util::UnixTime study_end_ = 0;
};

// --- topology ---------------------------------------------------------------

void World::Impl::build_topology() {
  const std::vector<IspConfig> configs = default_isps();
  isps_.reserve(configs.size());
  for (const IspConfig& cfg : configs) isps_.emplace_back(cfg);
  for (std::size_t i = 0; i < isps_.size(); ++i) {
    if (isps_[i].cfg.type == net::AsType::kTransitAccess) {
      transit_isps_.push_back(i);
    } else if (isps_[i].cfg.type == net::AsType::kContent) {
      content_isps_.push_back(i);
    }
  }
  transfers_ = default_transfers(configs);
  result_.as_db = build_as_database(configs);
  result_.routing = build_routing_history(
      configs, transfers_, study_start_ - 365 * kDay);
}

// --- PKI ---------------------------------------------------------------------

void World::Impl::build_pki() {
  util::Rng rng = rng_at(0xca, 0, 0);
  const auto make_ca = [&](const std::string& cn, const CaEntry* parent,
                           std::uint64_t serial) {
    CaEntry entry;
    entry.key = crypto::generate_keypair(config_.scheme, rng, config_.rsa_bits);
    const x509::Name subject = x509::Name::with_common_name(cn);
    const x509::Name issuer =
        parent ? parent->cert.subject : subject;
    const crypto::SigningKey& signer = parent ? parent->key : entry.key;
    x509::KeyUsage ca_usage;
    ca_usage.set(x509::KeyUsageBit::kKeyCertSign)
        .set(x509::KeyUsageBit::kCrlSign);
    entry.cert = x509::CertificateBuilder()
                     .set_serial(bignum::BigUint(serial))
                     .set_issuer(issuer)
                     .set_subject(subject)
                     .set_validity(util::make_date(2005, 1, 1),
                                   util::make_date(2035, 1, 1))
                     .set_public_key(entry.key.pub)
                     .set_basic_constraints(true)
                     .set_key_usage(ca_usage)
                     .sign(signer);
    return entry;
  };

  // Trusted roots (retained in root_cas_: they sign the revocation
  // ecosystem's CRLs after the campaigns).
  for (int i = 0; i < 3; ++i) {
    root_cas_.push_back(
        make_ca("SM Research Root CA " + std::to_string(i + 1), nullptr,
                static_cast<std::uint64_t>(100 + i)));
    result_.roots.add(root_cas_.back().cert);
  }

  // One trusted intermediate per distinct website issuer name.
  std::uint64_t serial = 1000;
  for (const VendorProfile& profile : website_profiles_) {
    if (trusted_intermediates_.contains(profile.fixed_issuer)) continue;
    const CaEntry& parent =
        root_cas_[trusted_intermediates_.size() % root_cas_.size()];
    CaEntry entry = make_ca(profile.fixed_issuer, &parent, ++serial);
    intermediates_.add(entry.cert);
    trusted_intermediates_.emplace(profile.fixed_issuer, std::move(entry));
  }

  // Untrusted vendor CAs (self-signed, never in the root store). Sharded
  // vendors get several regional CA instances.
  for (const VendorProfile& profile : device_profiles_) {
    if (profile.issuer_policy != IssuerPolicy::kVendorCa) continue;
    for (std::uint32_t shard = 0; shard < profile.vendor_ca_shards; ++shard) {
      std::string name = profile.fixed_issuer;
      if (profile.vendor_ca_shards > 1) {
        name += " " + std::to_string(shard + 1);
      }
      if (vendor_cas_.contains(name)) continue;
      CaEntry entry = make_ca(name, nullptr, ++serial);
      intermediates_.add(entry.cert);
      vendor_cas_.emplace(std::move(name), std::move(entry));
    }
  }

  // Vendor-wide shared keypairs (the Lancom pathology).
  for (const VendorProfile& profile : device_profiles_) {
    vendor_shared_keys_.push_back(
        profile.key_policy == KeyPolicy::kGlobalShared
            ? crypto::generate_keypair(config_.scheme, rng, config_.rsa_bits)
            : crypto::SigningKey{});
  }
}

// --- population ---------------------------------------------------------------

std::uint32_t World::Impl::pick_isp(const VendorProfile& vendor,
                                    util::Rng& rng, bool website) {
  if (!vendor.preferred_ases.empty()) {
    const net::Asn asn = vendor.preferred_ases[rng.below(
        vendor.preferred_ases.size())];
    for (std::size_t i = 0; i < isps_.size(); ++i) {
      if (isps_[i].cfg.asn == asn) return static_cast<std::uint32_t>(i);
    }
  }
  const std::vector<std::size_t>& candidates =
      website ? content_isps_ : transit_isps_;
  double total_share = 0;
  for (const std::size_t i : candidates) total_share += isps_[i].cfg.device_share;
  double pick = rng.unit() * total_share;
  for (const std::size_t i : candidates) {
    pick -= isps_[i].cfg.device_share;
    if (pick <= 0) return static_cast<std::uint32_t>(i);
  }
  return static_cast<std::uint32_t>(candidates.back());
}

void World::Impl::refresh_replica_cache(DeviceState& device) const {
  const IspRuntime& isp = isps_[device.isp];
  device.replicas.resize(device.replication);
  for (std::uint32_t replica = 0; replica < device.replication; ++replica) {
    const std::uint32_t slot = device.slot + replica;
    DeviceState::ReplicaCache& cache = device.replicas[replica];
    cache.lease_phase =
        isp.cfg.lease_seconds > 0
            ? static_cast<std::int64_t>(
                  mix3(0x9a5e, slot, isp.cfg.asn) %
                  static_cast<std::uint64_t>(isp.cfg.lease_seconds))
            : 0;
    cache.static_addr =
        isp.addr_in_pool(device.pool, isp.permute(device.pool, slot, 0x57a71c));
  }
}

void World::Impl::build_population() {
  // Cumulative weights for vendor selection.
  const auto pick_vendor = [](const std::vector<VendorProfile>& profiles,
                              util::Rng& rng) {
    double total = 0;
    for (const VendorProfile& p : profiles) total += p.weight;
    double pick = rng.unit() * total;
    for (std::size_t i = 0; i < profiles.size(); ++i) {
      pick -= profiles[i].weight;
      if (pick <= 0) return static_cast<std::uint32_t>(i);
    }
    return static_cast<std::uint32_t>(profiles.size() - 1);
  };

  const std::size_t total =
      config_.device_count + config_.website_count;
  devices_.reserve(total);
  for (std::size_t n = 0; n < total; ++n) {
    const bool website = n >= config_.device_count;
    util::Rng rng = rng_at(0xde5, n, 0);
    DeviceState d;
    d.is_website = website;
    const auto& profiles = website ? website_profiles_ : device_profiles_;
    d.vendor = pick_vendor(profiles, rng);
    const VendorProfile& vendor = profiles[d.vendor];
    d.isp = pick_isp(vendor, rng, website);
    IspRuntime& isp = isps_[d.isp];
    d.pool = static_cast<std::uint32_t>(rng.below(isp.cfg.pools.size()));
    d.replication = vendor.replication_max > 1
                        ? 1 + static_cast<std::uint32_t>(
                                  rng.below(vendor.replication_max))
                        : 1;
    d.slot = isp.next_slot;
    isp.next_slot += d.replication;
    d.static_ip = website || rng.chance(isp.cfg.static_fraction);
    // Birth: a fraction of the population predates the study; the rest
    // arrives during it (websites skew early).
    const double late_fraction =
        website ? 0.3 : config_.late_birth_fraction;
    if (rng.chance(late_fraction)) {
      d.born = study_start_ +
               static_cast<std::int64_t>(rng.unit() * static_cast<double>(
                                             study_end_ - study_start_));
    } else {
      d.born = study_start_ - rng.range(30, 720) * kDay;
    }
    const std::uint64_t token = mix3(config_.seed, 0x1d, n);
    d.name = hex_token(token, 10);
    d.mac = format_mac(token);
    if (vendor.reissue_period_mean > 0) {
      const double jitter = 0.7 + 0.6 * rng.unit();
      d.reissue_period = std::max<std::int64_t>(
          kDay, static_cast<std::int64_t>(
                    static_cast<double>(vendor.reissue_period_mean) * jitter));
    }
    refresh_replica_cache(d);
    devices_.push_back(std::move(d));
  }
  result_.true_device_count = config_.device_count;
  result_.true_website_count = config_.website_count;
}

void World::Impl::build_blacklists() {
  util::Rng rng = rng_at(0xb1ac, 0, 0);
  for (const IspRuntime& isp : isps_) {
    for (const net::Prefix& pool : isp.cfg.pools) {
      // Blacklist at /20 granularity so missing hosts spread across the
      // address space as in Figure 1.
      const std::uint32_t base = pool.address().value();
      for (std::uint32_t child = 0; child < 16; ++child) {
        const net::Prefix sub(net::Ipv4Address(base + (child << 12)), 20);
        if (rng.chance(config_.umich_blacklist_fraction)) {
          result_.umich_blacklist.add(sub);
        }
        if (rng.chance(config_.rapid7_blacklist_fraction)) {
          result_.rapid7_blacklist.add(sub);
        }
      }
    }
  }
}

// --- certificate issuance -------------------------------------------------------

scan::CertRecord World::Impl::build_cert_record(std::uint32_t device_id,
                                                std::int64_t epoch_id,
                                                util::UnixTime issue_time,
                                                net::Ipv4Address current_ip) {
  DeviceState& d = devices_[device_id];
  const VendorProfile& vendor = vendor_of(d);
  util::Rng rng = rng_at(0x15 + device_id, static_cast<std::uint64_t>(epoch_id),
                         0xce27);

  // --- key material ---
  crypto::SigningKey key;
  switch (vendor.key_policy) {
    case KeyPolicy::kGlobalShared:
      key = vendor_shared_keys_[d.vendor];
      break;
    case KeyPolicy::kStablePerDevice:
      if (!d.has_stable_key) {
        util::Rng key_rng = rng_at(0x6e7, device_id, 0);
        d.stable_key =
            crypto::generate_keypair(config_.scheme, key_rng, config_.rsa_bits);
        d.has_stable_key = true;
      }
      key = d.stable_key;
      break;
    case KeyPolicy::kFreshPerReissue:
      key = crypto::generate_keypair(config_.scheme, rng, config_.rsa_bits);
      break;
  }

  // --- names ---
  std::string cn;
  switch (vendor.cn_policy) {
    case CnPolicy::kFixed:
      cn = vendor.fixed_cn;
      break;
    case CnPolicy::kDeviceUnique:
      cn = vendor.unique_prefix + d.name;
      break;
    case CnPolicy::kPublicIp:
      cn = current_ip.to_string();
      break;
    case CnPolicy::kEmpty:
      break;
    case CnPolicy::kDynDns:
      cn = d.name + "." + vendor.dyndns_suffix;
      break;
  }
  x509::Name subject;
  if (vendor.cn_policy != CnPolicy::kEmpty) {
    subject = x509::Name::with_common_name(cn);
  }

  x509::Name issuer;
  const crypto::SigningKey* signer = &key;
  const x509::Certificate* issuing_ca = nullptr;
  switch (vendor.issuer_policy) {
    case IssuerPolicy::kSameAsSubject:
      issuer = subject;
      break;
    case IssuerPolicy::kFixedName:
      issuer = x509::Name::with_common_name(vendor.fixed_issuer);
      break;
    case IssuerPolicy::kEmpty:
      break;
    case IssuerPolicy::kDeviceMac:
      issuer = x509::Name::with_common_name(vendor.fixed_issuer + d.mac);
      break;
    case IssuerPolicy::kVendorCa: {
      std::string ca_name = vendor.fixed_issuer;
      if (vendor.vendor_ca_shards > 1) {
        const std::uint32_t shard = static_cast<std::uint32_t>(
            mix3(config_.seed, 0xca5d, device_id) % vendor.vendor_ca_shards);
        ca_name += " " + std::to_string(shard + 1);
      }
      const CaEntry& ca = vendor_cas_.at(ca_name);
      issuer = ca.cert.subject;
      signer = &ca.key;
      issuing_ca = &ca.cert;
      break;
    }
    case IssuerPolicy::kTrustedCa: {
      const CaEntry& ca = trusted_intermediates_.at(vendor.fixed_issuer);
      issuer = ca.cert.subject;
      signer = &ca.key;
      issuing_ca = &ca.cert;
      break;
    }
  }

  // --- clock / validity ---
  // Device firmware truncates NotBefore to the minute; combined with stuck
  // factory clocks, this is what makes NotBefore/NotAfter heavily
  // non-unique (Table 5) and lets them "link" unrelated certificates that
  // merely collide on a timestamp, with poor consistency (Table 6).
  util::UnixTime not_before = (issue_time / 60) * 60;
  if (rng.chance(vendor.clock.stuck_clock_prob)) {
    not_before = vendor.clock.stuck_clock_date;
  } else if (rng.chance(vendor.clock.clock_ahead_prob)) {
    not_before = not_before + rng.range(1, 30) * kDay;
  }
  util::UnixTime not_after;
  if (rng.chance(vendor.clock.negative_validity_prob)) {
    not_after = not_before - rng.range(1, 400) * kDay;
  } else if (rng.chance(vendor.clock.far_future_prob)) {
    not_after = not_before + rng.range(988, 2800) * 365 * kDay;
  } else {
    // The validity period is a firmware constant (exactly 20 years etc.),
    // which is why the paper's Figure 3 invalid CDF has hard steps.
    not_after = not_before + vendor.validity_seconds;
  }

  // --- serial ---
  bignum::BigUint serial;
  switch (vendor.serial_policy) {
    case SerialPolicy::kRandom:
      serial = bignum::BigUint(rng() >> 1);
      break;
    case SerialPolicy::kFixedOne:
      if (vendor.factory_shards > 1) {
        // Firmware-batch serial: identical across the batch, so batch
        // members produce byte-identical certificates.
        serial = bignum::BigUint(
            1 + mix3(config_.seed, 0xfac, device_id) % vendor.factory_shards);
      } else {
        serial = bignum::BigUint(1);
      }
      break;
    case SerialPolicy::kIncrementing:
      serial = bignum::BigUint(++d.serial_counter);
      break;
    case SerialPolicy::kResetting:
      serial = bignum::BigUint(1 + (d.serial_counter++ % 3));
      break;
  }

  // --- build ---
  x509::CertificateBuilder builder;
  builder.set_serial(serial)
      .set_issuer(issuer)
      .set_subject(subject)
      .set_validity(not_before, not_after)
      .set_public_key(key.pub);
  if (rng.chance(vendor.illegal_version_prob)) {
    builder.set_raw_version(rng.chance(0.5) ? 3 : 12);
  }
  std::vector<x509::GeneralName> sans;
  for (const std::string& fixed : vendor.fixed_sans) {
    const std::size_t colon = fixed.find(':');
    sans.push_back(x509::GeneralName{x509::GeneralName::Kind::kDns,
                                     fixed.substr(colon + 1)});
  }
  if (vendor.san_includes_device_name) {
    sans.push_back(x509::GeneralName{x509::GeneralName::Kind::kDns,
                                     d.name + "." + vendor.dyndns_suffix});
  }
  if (!sans.empty()) builder.set_subject_alt_names(sans);
  // Revocation-infrastructure endpoints are rare on device certificates and
  // device-specific where present (self-hosted management CAs embed the
  // device identity in the URL), which is what makes CRL/AIA/OCSP/OID small
  // but *high-consistency* linking features in Table 6. Websites use their
  // CA's shared endpoints instead.
  const bool device_endpoints =
      vendor.issuer_policy != IssuerPolicy::kTrustedCa;
  const std::string endpoint_host =
      device_endpoints ? d.name + "." + vendor.name + ".example"
                       : vendor.name + ".example";
  if (rng.chance(vendor.crl_prob)) {
    builder.set_crl_distribution_points(
        {"http://crl." + endpoint_host + "/current.crl"});
  }
  const bool want_ocsp = rng.chance(vendor.ocsp_prob);
  const bool want_aia = rng.chance(vendor.aia_prob);
  if (want_ocsp || want_aia) {
    builder.set_authority_info_access(
        want_ocsp ? std::vector<std::string>{"http://ocsp." + endpoint_host}
                  : std::vector<std::string>{},
        want_aia ? std::vector<std::string>{"http://ca." + endpoint_host +
                                            "/ca.crt"}
                 : std::vector<std::string>{});
  }
  if (rng.chance(vendor.policy_oid_prob)) {
    if (device_endpoints) {
      // Private-arc OID derived from the device identity.
      builder.set_policy_oids({asn1::Oid{
          {1, 3, 6, 1, 4, 1, 99999, 2,
           static_cast<std::uint32_t>(mix3(config_.seed, 0x01d, device_id) &
                                      0xffffff)}}});
    } else {
      builder.set_policy_oids(
          {asn1::Oid{{2, 23, 140, 1, 2, static_cast<std::uint32_t>(
                                            1 + rng.below(3))}}});
    }
  }
  if (issuing_ca != nullptr) {
    // CA-issued certificates carry an AuthorityKeyIdentifier, giving the
    // §5.3 issuer-key-diversity analysis something to read, and the usual
    // TLS-server KeyUsage.
    util::Bytes aki = issuing_ca->spki.fingerprint();
    aki.resize(20);
    builder.set_authority_key_id(aki);
    if (vendor.issuer_policy == IssuerPolicy::kTrustedCa) {
      x509::KeyUsage usage;
      usage.set(x509::KeyUsageBit::kDigitalSignature)
          .set(x509::KeyUsageBit::kKeyEncipherment);
      builder.set_key_usage(usage);
      builder.set_extended_key_usage(
          {asn1::oids::kp_server_auth(), asn1::oids::kp_client_auth()});
    }
  }
  const x509::Certificate cert = builder.sign(*signer);

  // --- validate (the paper's openssl-verify step, §4.2) ---
  // The shared BatchVerifier memoizes the CA-level sub-checks across all
  // planning threads; results are identical to a per-call pki::Verifier.
  std::vector<x509::Certificate> presented;
  if (issuing_ca != nullptr) {
    // Websites usually present their chain; devices rarely do — the gap is
    // what the transvalid machinery closes.
    const double present_prob =
        vendor.issuer_policy == IssuerPolicy::kTrustedCa ? 0.9 : 0.4;
    if (rng.chance(present_prob)) presented.push_back(*issuing_ca);
  }
  const pki::ValidationResult validation = verifier_->verify(cert, presented);

  return scan::make_cert_record(cert, validation);
}

void World::Impl::plan_hit(std::uint32_t device_id, DevicePlan& plan,
                           util::UnixTime probe, std::int64_t lease_epoch,
                           util::UnixTime lease_start,
                           net::Ipv4Address current_ip) {
  DeviceState& d = devices_[device_id];
  const VendorProfile& vendor = vendor_of(d);
  std::int64_t time_epoch = 0;
  util::UnixTime issue_time = d.born;
  if (d.reissue_period > 0 && probe > d.born) {
    time_epoch = (probe - d.born) / d.reissue_period;
    issue_time = d.born + time_epoch * d.reissue_period;
  }
  std::int64_t ip_epoch = 0;
  if (vendor.reissue_on_ip_change && !d.static_ip) {
    ip_epoch = lease_epoch;
    issue_time = std::max(issue_time, lease_start);
  }
  // ip_epoch is bounded by study_days/lease_days << 1e6, so this composite
  // id is collision-free.
  const std::int64_t epoch_id = time_epoch * 1000000 + ip_epoch;
  if (epoch_id != d.current_epoch) {
    plan.issues.push_back(build_cert_record(
        device_id, epoch_id, std::max(issue_time, d.born), current_ip));
    d.current_epoch = epoch_id;
  }
  plan.hits.push_back(PlannedHit{
      current_ip.value(), static_cast<std::int32_t>(plan.issues.size()) - 1});
}

// --- scanning --------------------------------------------------------------

MoveDecision World::Impl::plan_move(std::uint32_t device_id,
                                    std::uint64_t move_round) {
  MoveDecision decision;
  DeviceState& d = devices_[device_id];
  if (d.is_website) return decision;
  const VendorProfile& vendor = vendor_of(d);
  // ISP churn concentrates in dynamic networks (mobile / daily-lease);
  // static-ISP subscribers rarely switch providers.
  const bool dynamic_isp =
      isps_[d.isp].cfg.lease_seconds < 7 * kDay && !d.static_ip;
  const double p = vendor.mobility + config_.base_move_probability +
                   (dynamic_isp ? 0.0015 : 0.0);
  if (p <= 0) return decision;
  util::Rng rng = rng_at(0x30f3, device_id, move_round);
  if (!rng.chance(p)) return decision;
  const std::uint32_t new_isp = pick_isp(vendor, rng, false);
  if (new_isp == d.isp) return decision;  // same provider: no move happened
  const IspRuntime& isp = isps_[new_isp];
  decision.moved = true;
  decision.new_isp = new_isp;
  decision.new_pool = static_cast<std::uint32_t>(rng.below(isp.cfg.pools.size()));
  decision.new_static = rng.chance(isp.cfg.static_fraction);
  return decision;
}

void World::Impl::maybe_move_devices() {
  const std::uint64_t move_round = ++move_round_;
  moves_.resize(devices_.size());
  // Plan: per-device decisions are independently seeded
  // (rng_at(0x30f3, device_id, round)), so they shard freely.
  workers_.parallel_for(
      devices_.size(), 256, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          moves_[i] = plan_move(static_cast<std::uint32_t>(i), move_round);
        }
      });
  // Commit in device order: slot assignment consumes the target ISP's
  // shared next_slot counter.
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    const MoveDecision& decision = moves_[i];
    if (!decision.moved) continue;
    DeviceState& d = devices_[i];
    d.isp = decision.new_isp;
    d.pool = decision.new_pool;
    IspRuntime& isp = isps_[d.isp];
    d.slot = isp.next_slot;
    isp.next_slot += d.replication;
    d.static_ip = decision.new_static;
    refresh_replica_cache(d);
  }
}

void World::Impl::plan_device(std::uint32_t device_id,
                              const scan::AddressPermutation& perm,
                              const scan::PrefixSet& blacklist,
                              const scan::ScanEvent& event, DevicePlan& plan) {
  plan.issues.clear();
  plan.hits.clear();
  plan.dropped = 0;
  DeviceState& d = devices_[device_id];
  const util::UnixTime start = event.start;
  const util::UnixTime end = event.start + event.duration_seconds;
  if (d.born >= end) return;
  const IspRuntime& isp = isps_[d.isp];
  for (std::uint32_t replica = 0; replica < d.replication; ++replica) {
    const std::uint32_t slot = d.slot + replica;
    const DeviceState::ReplicaCache& cache = d.replicas[replica];
    // The lease intervals overlapping the scan window: one for static
    // devices, one per lease epoch for dynamic devices.
    Interval intervals[kMaxLeaseIntervals];
    std::size_t interval_count = 0;
    if (d.static_ip) {
      intervals[interval_count++] = Interval{start, end, -1, d.born};
    } else {
      const std::int64_t lease = isp.cfg.lease_seconds;
      const std::int64_t phase = cache.lease_phase;
      std::int64_t e = (start - phase) / lease;
      for (; phase + e * lease < end; ++e) {
        const util::UnixTime lease_from = phase + e * lease;
        const util::UnixTime lease_to = lease_from + lease;
        intervals[interval_count++] = Interval{std::max(start, lease_from),
                                               std::min(end, lease_to), e,
                                               lease_from};
        if (interval_count >= kMaxLeaseIntervals) {
          // Degenerate tiny leases: count what the cap drops instead of
          // losing it silently.
          plan.dropped +=
              static_cast<std::uint32_t>((end - 1 - phase) / lease - e);
          break;
        }
      }
    }
    for (std::size_t k = 0; k < interval_count; ++k) {
      const Interval& interval = intervals[k];
      const net::Ipv4Address ip =
          d.static_ip
              ? cache.static_addr
              : isp.addr_in_pool(
                    d.pool,
                    isp.permute(d.pool, slot,
                                0x1ea5e000ULL + static_cast<std::uint64_t>(
                                                    interval.epoch)));
      const util::UnixTime probe =
          scan::probe_time(perm, ip, start, event.duration_seconds);
      if (probe < interval.from || probe >= interval.to) continue;
      if (probe < d.born) continue;
      if (blacklist.covers(ip)) continue;
      plan_hit(device_id, plan, probe, interval.epoch, interval.lease_start,
               ip);
    }
  }
}

void World::Impl::run_scan(std::size_t scan_index,
                           const scan::ScanEvent& event) {
  const scan::AddressPermutation perm(
      mix3(config_.seed, 0x5ca9, scan_index));
  const scan::PrefixSet& blacklist = event.campaign == scan::Campaign::kUMich
                                         ? result_.umich_blacklist
                                         : result_.rapid7_blacklist;

  // Plan phase: each device's probe hits and certificate builds (the x509
  // build + hash + sign work) shard across the pool. Safe because a device
  // is planned by exactly one chunk, everything shared is read-only, and
  // certificate validation goes through the thread-safe BatchVerifier.
  plans_.resize(devices_.size());
  workers_.parallel_for(
      devices_.size(), 16, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          plan_device(static_cast<std::uint32_t>(i), perm, blacklist, event,
                      plans_[i]);
        }
      });

  // Commit phase: intern certificates and append observations in canonical
  // device order — the exact sequence the serial loop produced, so archive
  // ids and bytes are identical at any thread count.
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    DevicePlan& plan = plans_[i];
    DeviceState& d = devices_[i];
    result_.dropped_lease_intervals += plan.dropped;
    std::int32_t committed = -1;
    for (const PlannedHit& hit : plan.hits) {
      while (committed < hit.issue_index) {
        ++committed;
        d.current_cert = result_.archive.intern(
            std::move(plan.issues[static_cast<std::size_t>(committed)]));
        ++result_.issued_certificates;
      }
      result_.archive.add_observation(scan_index, d.current_cert, hit.ip,
                                      static_cast<scan::DeviceId>(i));
    }
  }
}

// --- revocation ecosystem ---------------------------------------------------

void World::Impl::build_revocation() {
  const WorldConfig::RevocationKnobs& knobs = config_.revocation;

  revocation::EcosystemConfig eco;
  eco.seed = mix3(config_.seed, 0x4e0c, 0);
  // Clients check one day after the last scan starts, so "fresh" CRLs
  // published the day before are still inside their validity window.
  eco.check_time = study_end_ + kDay;
  eco.stale_fraction = knobs.stale_fraction;
  eco.unreachable_fraction = knobs.unreachable_fraction;
  eco.ocsp_unknown_fraction = knobs.ocsp_unknown_fraction;
  eco.ocsp_unreachable_fraction = knobs.ocsp_unreachable_fraction;
  eco.baseline_revoked_fraction = knobs.baseline_revoked_fraction;
  eco.mass_event_enabled = knobs.mass_event_enabled;
  eco.mass_event_issuer =
      x509::Name::with_common_name(knobs.mass_event_ca).to_string();
  eco.mass_event_fraction = knobs.mass_event_fraction;
  eco.mass_event_time = study_start_ + (study_end_ - study_start_) / 2;

  auto ecosystem = std::make_shared<revocation::Ecosystem>(eco);
  // Every CA is a publisher, and every CA certificate is store-resident
  // (roots in the root store, intermediates and vendor CAs in the
  // intermediate pool), so clients can verify every CRL signature.
  for (const CaEntry& root : root_cas_) {
    ecosystem->add_authority(root.cert.subject.to_string(), root.cert,
                             root.key, /*trusted=*/true);
  }
  for (const auto& [name, entry] : trusted_intermediates_) {
    ecosystem->add_authority(entry.cert.subject.to_string(), entry.cert,
                             entry.key, /*trusted=*/true);
  }
  for (const auto& [name, entry] : vendor_cas_) {
    ecosystem->add_authority(entry.cert.subject.to_string(), entry.cert,
                             entry.key, /*trusted=*/true);
  }
  const std::vector<scan::CertRecord>& certs = result_.archive.certs();
  for (const scan::CertRecord& rec : certs) {
    ecosystem->add_certificate(rec.issuer_dn, rec.serial_hex, rec.not_before);
  }
  ecosystem->publish();

  // Mechanism pass: the same BatchVerifier that classified every issued
  // certificate now fetches, parses and signature-checks the published
  // CRLs — per issuer once, shared by every certificate of that issuer.
  std::vector<pki::RevocationQuery> queries;
  queries.reserve(certs.size());
  for (const scan::CertRecord& rec : certs) {
    queries.push_back({rec.issuer_dn, rec.serial_hex, !rec.crl_url.empty(),
                       !rec.ocsp_url.empty()});
  }
  const std::vector<pki::RevocationStatus> statuses =
      verifier_->check_revocation_all(queries, *ecosystem, eco.check_time,
                                      &workers_);
  result_.revocation.statuses.reserve(certs.size());
  for (std::size_t i = 0; i < certs.size(); ++i) {
    result_.revocation.statuses.emplace(certs[i].fingerprint, statuses[i]);
  }
  result_.revocation.ecosystem = std::move(ecosystem);
  result_.revocation.check_time = eco.check_time;
}

WorldResult World::Impl::run() {
  util::Rng schedule_rng = rng_at(0x5c4ed, 0, 0);
  result_.schedule = scan::make_paper_schedule(config_.schedule, schedule_rng);
  if (result_.schedule.empty()) {
    throw std::logic_error("empty scan schedule");
  }
  study_start_ = result_.schedule.front().start;
  study_end_ = result_.schedule.back().start;

  website_profiles_ = default_website_profiles();
  device_profiles_ = default_vendor_profiles();

  build_topology();
  build_pki();
  // Both stores are final now; the memo may cache by certificate address.
  verifier_.emplace(result_.roots, intermediates_);
  build_population();
  build_blacklists();

  for (std::size_t i = 0; i < result_.schedule.size(); ++i) {
    if (i > 0) maybe_move_devices();
    const std::size_t scan_index =
        result_.archive.begin_scan(result_.schedule[i]);
    run_scan(scan_index, result_.schedule[i]);
  }
  if (config_.revocation.enabled) build_revocation();
  result_.verify_stats = verifier_->stats();
  return std::move(result_);
}

World::World(WorldConfig config, util::ThreadPool* pool)
    : config_(std::move(config)), pool_(pool) {}

WorldResult World::run() {
  Impl impl(config_, pool_);
  return impl.run();
}

}  // namespace sm::simworld
