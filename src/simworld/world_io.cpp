#include "simworld/world_io.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "scan/archive_io.h"

namespace sm::simworld {

namespace {

constexpr char kMagic[4] = {'S', 'M', 'W', 'B'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void put(std::ostream& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
bool get(std::istream& in, T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  return static_cast<std::size_t>(in.gcount()) == sizeof(value);
}

void put_string(std::ostream& out, const std::string& s) {
  put<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool get_string(std::istream& in, std::string& s) {
  std::uint32_t len = 0;
  if (!get(in, len) || len > (1u << 20)) return false;
  s.resize(len);
  in.read(s.data(), len);
  return static_cast<std::uint32_t>(in.gcount()) == len;
}

void put_prefix_set(std::ostream& out, const scan::PrefixSet& set) {
  const auto prefixes = set.prefixes();
  put<std::uint32_t>(out, static_cast<std::uint32_t>(prefixes.size()));
  for (const net::Prefix& prefix : prefixes) {
    put(out, prefix.address().value());
    put<std::uint8_t>(out, static_cast<std::uint8_t>(prefix.length()));
  }
}

bool get_prefix_set(std::istream& in, scan::PrefixSet& set) {
  std::uint32_t count = 0;
  if (!get(in, count) || count > (1u << 22)) return false;
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t addr = 0;
    std::uint8_t length = 0;
    if (!get(in, addr) || !get(in, length) || length > 32) return false;
    set.add(net::Prefix(net::Ipv4Address(addr), length));
  }
  return true;
}

}  // namespace

void save_world_bundle(const WorldResult& world, std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  put(out, kVersion);
  if (!scan::save_archive(world.archive, out)) {
    // A format-limit overflow must not produce a silently corrupt bundle.
    out.setstate(std::ios::failbit);
    return;
  }

  // Routing history: reconstructed snapshot by snapshot from the tables in
  // effect at each scan (plus one pre-study snapshot). We re-derive the
  // snapshot set by probing the history at distinct scan times.
  std::vector<std::pair<util::UnixTime, const net::RouteTable*>> snapshots;
  {
    // Probe well before the first scan, then at every scan start; dedupe by
    // table pointer (RoutingHistory returns stable pointers).
    std::vector<util::UnixTime> probes;
    if (!world.archive.scans().empty()) {
      probes.push_back(world.archive.scans().front().event.start -
                       10LL * 365 * util::kSecondsPerDay);
    }
    for (const scan::ScanData& scan : world.archive.scans()) {
      probes.push_back(scan.event.start);
    }
    for (const util::UnixTime t : probes) {
      const net::RouteTable* table = world.routing.at(t);
      if (table == nullptr) continue;
      if (snapshots.empty() || snapshots.back().second != table) {
        snapshots.emplace_back(t, table);
      }
    }
  }
  put<std::uint32_t>(out, static_cast<std::uint32_t>(snapshots.size()));
  for (const auto& [time, table] : snapshots) {
    put(out, time);
    const auto entries = table->entries();
    put<std::uint32_t>(out, static_cast<std::uint32_t>(entries.size()));
    for (const auto& [prefix, asn] : entries) {
      put(out, prefix.address().value());
      put<std::uint8_t>(out, static_cast<std::uint8_t>(prefix.length()));
      put(out, asn);
    }
  }

  // AS database: walk all ASNs seen in the routing tables.
  std::vector<net::Asn> asns;
  for (const auto& [time, table] : snapshots) {
    for (const auto& [prefix, asn] : table->entries()) asns.push_back(asn);
  }
  std::sort(asns.begin(), asns.end());
  asns.erase(std::unique(asns.begin(), asns.end()), asns.end());
  std::uint32_t known = 0;
  for (const net::Asn asn : asns) {
    if (world.as_db.find(asn) != nullptr) ++known;
  }
  put(out, known);
  for (const net::Asn asn : asns) {
    const net::AsInfo* info = world.as_db.find(asn);
    if (info == nullptr) continue;
    put(out, info->asn);
    put_string(out, info->name);
    put_string(out, info->country);
    put<std::uint8_t>(out, static_cast<std::uint8_t>(info->type));
  }

  put_prefix_set(out, world.umich_blacklist);
  put_prefix_set(out, world.rapid7_blacklist);
}

std::optional<WorldResult> load_world_bundle(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (static_cast<std::size_t>(in.gcount()) != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return std::nullopt;
  }
  std::uint32_t version = 0;
  if (!get(in, version) || version != kVersion) return std::nullopt;

  WorldResult world;
  auto archive = scan::load_archive(in);
  if (!archive) return std::nullopt;
  world.archive = std::move(*archive);

  std::uint32_t snapshot_count = 0;
  if (!get(in, snapshot_count) || snapshot_count > (1u << 16)) {
    return std::nullopt;
  }
  for (std::uint32_t s = 0; s < snapshot_count; ++s) {
    util::UnixTime time = 0;
    std::uint32_t entry_count = 0;
    if (!get(in, time) || !get(in, entry_count) || entry_count > (1u << 24)) {
      return std::nullopt;
    }
    net::RouteTable table;
    for (std::uint32_t i = 0; i < entry_count; ++i) {
      std::uint32_t addr = 0;
      std::uint8_t length = 0;
      net::Asn asn = 0;
      if (!get(in, addr) || !get(in, length) || length > 32 || !get(in, asn)) {
        return std::nullopt;
      }
      table.announce(net::Prefix(net::Ipv4Address(addr), length), asn);
    }
    world.routing.add_snapshot(time, std::move(table));
  }

  std::uint32_t as_count = 0;
  if (!get(in, as_count) || as_count > (1u << 20)) return std::nullopt;
  for (std::uint32_t i = 0; i < as_count; ++i) {
    net::AsInfo info;
    std::uint8_t type = 0;
    if (!get(in, info.asn) || !get_string(in, info.name) ||
        !get_string(in, info.country) || !get(in, type) ||
        type > static_cast<std::uint8_t>(net::AsType::kUnknown)) {
      return std::nullopt;
    }
    info.type = static_cast<net::AsType>(type);
    world.as_db.add(std::move(info));
  }

  if (!get_prefix_set(in, world.umich_blacklist) ||
      !get_prefix_set(in, world.rapid7_blacklist)) {
    return std::nullopt;
  }

  for (const scan::ScanData& scan : world.archive.scans()) {
    world.schedule.push_back(scan.event);
  }
  world.issued_certificates = world.archive.certs().size();
  return world;
}

bool save_world_bundle_file(const WorldResult& world,
                            const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  save_world_bundle(world, out);
  return out.good();
}

std::optional<WorldResult> load_world_bundle_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  return load_world_bundle(in);
}

}  // namespace sm::simworld
