#include "netio/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace sm::netio {
namespace {

using Clock = std::chrono::steady_clock;

// epoll_wait ceiling so idle sweeps and drain checks run even on a silent
// socket set.
constexpr int kTickMs = 100;

// How long the acceptor sleeps when accept4 fails for lack of fds. The
// listen socket is level-triggered, so without a pause poll() reports
// POLLIN again immediately and the acceptor pins a core until the fd
// table recovers.
constexpr int kAcceptBackoffMs = 10;

bool is_fd_exhaustion(int err) {
  return err == EMFILE || err == ENFILE || err == ENOBUFS || err == ENOMEM;
}

void close_quietly(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace

struct TcpServer::Impl {
  // One connection, owned exclusively by one worker. Responses use two
  // buffers: `outbuf` is the in-flight flush (prefix out_off already on
  // the wire), `queued` is where the handler appends new frames. flush()
  // sends both in one vectored sendmsg and swaps `queued` forward when
  // `outbuf` drains — the swap recycles both heap buffers, so a steady
  // pipelined connection stops allocating entirely once the buffers
  // reach their high-water capacity.
  struct Connection {
    explicit Connection(std::size_t max_payload) : decoder(max_payload) {}

    FrameDecoder decoder;
    std::string outbuf;
    std::size_t out_off = 0;  // bytes of outbuf already sent
    std::string queued;       // frames appended since the last flush
    bool close_after_flush = false;
    bool discard_input = false;  // half-closed; draining input to EOF
    bool reading = true;    // EPOLLIN armed
    bool writing = false;   // EPOLLOUT armed
    Clock::time_point last_activity = Clock::now();

    std::size_t unsent() const {
      return outbuf.size() - out_off + queued.size();
    }
  };

  // One worker event loop. All members except `pending`/`wake_fd` are
  // touched only from the worker's own thread.
  struct Worker {
    int epoll_fd = -1;
    int wake_fd = -1;
    std::thread thread;
    std::mutex pending_mutex;
    std::vector<int> pending;  // accepted sockets awaiting adoption
    std::unordered_map<int, std::unique_ptr<Connection>> conns;

    std::atomic<std::uint64_t> frames{0};
    std::atomic<std::uint64_t> malformed{0};
    std::atomic<std::uint64_t> closed{0};
    std::atomic<std::uint64_t> idle_closed{0};
    std::atomic<std::uint64_t> idle_exempted{0};
    std::atomic<std::uint64_t> bp_pauses{0};
    std::atomic<std::uint64_t> bp_resumes{0};
    std::atomic<std::uint64_t> lingering{0};
    std::atomic<std::uint64_t> send_calls{0};
  };

  ServerConfig config;
  StreamHandler handler;

  int listen_fd = -1;
  int stop_accept_fd = -1;  // eventfd: tells the acceptor to exit
  std::uint16_t bound_port = 0;
  std::thread acceptor;
  std::vector<std::unique_ptr<Worker>> workers;

  std::atomic<bool> started{false};
  std::atomic<bool> draining{false};
  std::atomic<bool> stopped{false};
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> accept_backoffs{0};
  std::mutex shutdown_mutex;

  // ---- acceptor ----------------------------------------------------------

  void acceptor_loop() {
    std::size_t next_worker = 0;
    for (;;) {
      pollfd fds[2] = {{listen_fd, POLLIN, 0}, {stop_accept_fd, POLLIN, 0}};
      const int n = ::poll(fds, 2, -1);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (fds[1].revents != 0) break;  // shutdown requested
      if ((fds[0].revents & POLLIN) == 0) continue;
      for (;;) {
        const int fd = ::accept4(listen_fd, nullptr, nullptr,
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
          if (errno == EINTR) continue;
          if (is_fd_exhaustion(errno)) {
            // Out of fds: the pending connection stays in the backlog, so
            // back off instead of spinning on the level-triggered POLLIN.
            // Sleeping on stop_accept_fd keeps shutdown responsive.
            accept_backoffs.fetch_add(1, std::memory_order_relaxed);
            pollfd stop = {stop_accept_fd, POLLIN, 0};
            ::poll(&stop, 1, kAcceptBackoffMs);
          }
          break;  // EAGAIN or a transient accept failure: back to poll
        }
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        accepted.fetch_add(1, std::memory_order_relaxed);
        Worker& worker = *workers[next_worker];
        next_worker = (next_worker + 1) % workers.size();
        {
          std::lock_guard lock(worker.pending_mutex);
          worker.pending.push_back(fd);
        }
        wake(worker);
      }
    }
  }

  static void wake(Worker& worker) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(worker.wake_fd, &one, sizeof one);
  }

  // ---- worker ------------------------------------------------------------

  void update_interest(Worker& worker, int fd, Connection& conn) {
    epoll_event ev{};
    ev.data.fd = fd;
    ev.events = (conn.reading ? EPOLLIN : 0u) | (conn.writing ? EPOLLOUT : 0u);
    ::epoll_ctl(worker.epoll_fd, EPOLL_CTL_MOD, fd, &ev);
  }

  void close_connection(Worker& worker, int fd) {
    ::epoll_ctl(worker.epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
    close_quietly(fd);
    worker.conns.erase(fd);
    worker.closed.fetch_add(1, std::memory_order_relaxed);
  }

  /// Sends as much of outbuf + queued as the socket accepts, in one
  /// vectored sendmsg per kernel round (a response queued while the
  /// previous one was still blocked rides out in the same syscall).
  /// Returns false when the connection was closed (write error or
  /// flush-complete on a connection marked close_after_flush).
  bool flush(Worker& worker, int fd, Connection& conn) {
    while (conn.unsent() > 0) {
      if (conn.out_off == conn.outbuf.size()) {
        // outbuf drained: promote queued frames. swap (not assign)
        // recycles both buffers' heap storage.
        conn.outbuf.clear();
        conn.out_off = 0;
        std::swap(conn.outbuf, conn.queued);
      }
      iovec iov[2];
      iov[0].iov_base = conn.outbuf.data() + conn.out_off;
      iov[0].iov_len = conn.outbuf.size() - conn.out_off;
      int iovcnt = 1;
      if (!conn.queued.empty()) {
        iov[1].iov_base = conn.queued.data();
        iov[1].iov_len = conn.queued.size();
        iovcnt = 2;
      }
      msghdr msg{};
      msg.msg_iov = iov;
      msg.msg_iovlen = iovcnt;
      // sendmsg, not writev: the flags argument carries MSG_NOSIGNAL (a
      // peer that closed mid-response must not SIGPIPE the worker).
      const ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
      if (n > 0) {
        worker.send_calls.fetch_add(1, std::memory_order_relaxed);
        std::size_t sent = static_cast<std::size_t>(n);
        if (sent < iov[0].iov_len) {
          conn.out_off += sent;
        } else {
          // outbuf finished (and possibly part of queued): promote queued
          // to outbuf and mark the bytes sendmsg already covered.
          sent -= iov[0].iov_len;
          conn.outbuf.clear();
          conn.out_off = 0;
          std::swap(conn.outbuf, conn.queued);
          conn.out_off = sent;
        }
        conn.last_activity = Clock::now();
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        bool rearm = false;
        if (!conn.writing) {
          conn.writing = true;
          rearm = true;
        }
        // Hysteresis: a paused connection resumes reading as soon as at
        // most half the backpressure budget remains queued — waiting for a
        // completely empty outbuf (the old behaviour) stalls a pipelining
        // client for a full round trip after every large burst.
        if (!conn.reading && !conn.close_after_flush &&
            conn.unsent() <= config.max_buffered_responses / 2) {
          conn.reading = true;
          worker.bp_resumes.fetch_add(1, std::memory_order_relaxed);
          rearm = true;
        }
        if (rearm) update_interest(worker, fd, conn);
        return true;
      }
      if (n < 0 && errno == EINTR) continue;
      close_connection(worker, fd);  // peer vanished mid-response
      return false;
    }
    conn.outbuf.clear();
    conn.out_off = 0;
    if (conn.close_after_flush) {
      // Closing while unread request bytes sit in the receive queue makes
      // the kernel send RST, which destroys response bytes still in
      // flight to the peer (a pipelining client mid-burst would lose the
      // tail of a stream we just promised to flush). Probe the queue: if
      // bytes are pending, half-close instead — FIN after the last
      // response byte — and discard input until the peer's EOF completes
      // the close (bounded by the idle sweep / drain deadline).
      char probe;
      if (::recv(fd, &probe, 1, MSG_PEEK) > 0) {
        if (!conn.discard_input) {
          conn.discard_input = true;
          worker.lingering.fetch_add(1, std::memory_order_relaxed);
          ::shutdown(fd, SHUT_WR);
        }
        // Re-arm unconditionally: the drain pass clears `reading` on
        // every connection, including one already lingering.
        conn.reading = true;  // EPOLLIN drives discard_until_eof
        conn.writing = false;
        update_interest(worker, fd, conn);
        return true;
      }
      close_connection(worker, fd);
      return false;
    }
    bool rearm = false;
    if (conn.writing) {
      conn.writing = false;
      rearm = true;
    }
    // Backpressure released: the response queue flushed before the
    // half-drain threshold had a chance to re-arm reading. (Not counted
    // as a backpressure_resume — that counter tracks only resumes with
    // bytes still queued, i.e. the hysteresis path.)
    if (!conn.reading && !conn.close_after_flush) {
      conn.reading = true;
      rearm = true;
    }
    if (rearm) update_interest(worker, fd, conn);
    return true;
  }

  /// Consumes and discards input on a half-closed lingering connection;
  /// the peer's EOF completes the close. Returns false when the
  /// connection was closed. last_activity is deliberately not refreshed:
  /// the idle sweep bounds how long a peer that never stops sending (or
  /// never closes) can hold the lingering connection open.
  bool discard_until_eof(Worker& worker, int fd) {
    char buf[64 * 1024];
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
      if (n > 0) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      if (n < 0 && errno == EINTR) continue;
      close_connection(worker, fd);  // EOF (or error): linger complete
      return false;
    }
  }

  /// Reads, decodes, and dispatches everything available on `fd`. Returns
  /// false when the connection was closed.
  bool handle_input(Worker& worker, int fd, Connection& conn) {
    char buf[64 * 1024];
    bool saw_eof = false;
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
      if (n > 0) {
        conn.decoder.feed(buf, static_cast<std::size_t>(n));
        conn.last_activity = Clock::now();
        if (static_cast<std::size_t>(n) < sizeof buf) break;
        continue;
      }
      if (n == 0) {
        saw_eof = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      close_connection(worker, fd);
      return false;
    }

    Frame request;
    for (;;) {
      const DecodeStatus status = conn.decoder.next(request);
      if (status == DecodeStatus::kNeedMore) break;
      if (status == DecodeStatus::kMalformed) {
        // One error frame, then drop the connection: framing is lost, so
        // nothing after the bad bytes can be trusted.
        worker.malformed.fetch_add(1, std::memory_order_relaxed);
        encode_frame_into(conn.queued, FrameType::kError,
                          conn.decoder.error());
        conn.close_after_flush = true;
        conn.reading = false;
        update_interest(worker, fd, conn);
        return flush(worker, fd, conn);
      }
      worker.frames.fetch_add(1, std::memory_order_relaxed);
      // The handler appends the encoded response frame straight into the
      // connection's queue buffer — no intermediate Frame, no re-encode.
      handler(request.type, request.payload, conn.queued);
    }

    if (saw_eof) {
      // Flush whatever responses are pending, then close.
      conn.close_after_flush = true;
      conn.reading = false;
      update_interest(worker, fd, conn);
      return flush(worker, fd, conn);
    }
    if (!flush(worker, fd, conn)) return false;
    if (conn.unsent() > config.max_buffered_responses && conn.reading) {
      conn.reading = false;  // pipelining backpressure
      worker.bp_pauses.fetch_add(1, std::memory_order_relaxed);
      update_interest(worker, fd, conn);
    }
    return true;
  }

  void adopt_pending(Worker& worker) {
    std::vector<int> adopted;
    {
      std::lock_guard lock(worker.pending_mutex);
      adopted.swap(worker.pending);
    }
    const bool drain = draining.load(std::memory_order_acquire);
    for (const int fd : adopted) {
      if (drain) {  // raced with shutdown: nothing was promised to the peer
        close_quietly(fd);
        worker.closed.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      auto conn = std::make_unique<Connection>(config.max_frame_payload);
      epoll_event ev{};
      ev.data.fd = fd;
      ev.events = EPOLLIN;
      if (::epoll_ctl(worker.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
        close_quietly(fd);
        worker.closed.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      worker.conns.emplace(fd, std::move(conn));
    }
  }

  void sweep_idle(Worker& worker) {
    const auto now = Clock::now();
    const auto limit = std::chrono::milliseconds(config.idle_timeout_ms);
    std::vector<int> idle;
    for (const auto& [fd, conn] : worker.conns) {
      if (now - conn->last_activity <= limit) continue;
      // A connection stalled behind our own EPOLLOUT queue is not idle:
      // the server still owes it bytes, and only reads/writes refresh
      // last_activity, so reaping here would cut a response off
      // mid-frame. Leave it to the kernel's write path — if the peer is
      // truly gone, send() fails and close_connection runs then.
      if (conn->unsent() > 0 && conn->writing) {
        worker.idle_exempted.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      idle.push_back(fd);
    }
    for (const int fd : idle) {
      worker.idle_closed.fetch_add(1, std::memory_order_relaxed);
      close_connection(worker, fd);
    }
  }

  void worker_loop(Worker& worker) {
    bool drain_seen = false;
    Clock::time_point drain_deadline{};
    epoll_event events[64];
    for (;;) {
      const int n = ::epoll_wait(worker.epoll_fd, events, 64, kTickMs);
      if (n < 0 && errno != EINTR) break;
      bool adopt = false;
      for (int i = 0; i < std::max(n, 0); ++i) {
        const int fd = events[i].data.fd;
        if (fd == worker.wake_fd) {
          std::uint64_t drainv;
          while (::read(worker.wake_fd, &drainv, sizeof drainv) > 0) {
          }
          // Adopt AFTER the batch: registering a connection here could
          // reuse an fd number closed earlier in this events[] array, and
          // a stale EPOLLHUP/EPOLLERR for the old socket later in the
          // batch would then kill the freshly adopted connection.
          adopt = true;
          continue;
        }
        auto it = worker.conns.find(fd);
        if (it == worker.conns.end()) continue;  // closed earlier this batch
        Connection& conn = *it->second;
        if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0 &&
            (events[i].events & EPOLLIN) == 0) {
          close_connection(worker, fd);
          continue;
        }
        if ((events[i].events & EPOLLOUT) != 0) {
          if (!flush(worker, fd, conn)) continue;
        }
        if ((events[i].events & EPOLLIN) != 0) {
          if (conn.discard_input) {
            // Lingering half-closed connections drain input even while
            // the server itself is draining.
            if (!discard_until_eof(worker, fd)) continue;
          } else if (conn.reading && !drain_seen) {
            if (!handle_input(worker, fd, conn)) continue;
          }
        }
      }
      if (adopt) adopt_pending(worker);

      if (draining.load(std::memory_order_acquire)) {
        if (!drain_seen) {
          drain_seen = true;
          drain_deadline = Clock::now() + std::chrono::milliseconds(
                                              config.drain_timeout_ms);
          adopt_pending(worker);  // sockets handed off before the stop
          // Stop consuming requests; finish sending what is queued. flush
          // either closes the drained connection (nothing unsent) or arms
          // EPOLLOUT for the remainder.
          std::vector<int> open_fds;
          open_fds.reserve(worker.conns.size());
          for (const auto& [fd, conn] : worker.conns) {
            open_fds.push_back(fd);
          }
          for (const int fd : open_fds) {
            const auto it = worker.conns.find(fd);
            if (it == worker.conns.end()) continue;
            it->second->reading = false;
            it->second->close_after_flush = true;
            update_interest(worker, fd, *it->second);
            flush(worker, fd, *it->second);
          }
        }
        if (worker.conns.empty() || Clock::now() >= drain_deadline) break;
        continue;
      }
      sweep_idle(worker);
    }
    // Force-close anything the drain deadline cut off.
    while (!worker.conns.empty()) {
      close_connection(worker, worker.conns.begin()->first);
    }
  }

  // ---- lifecycle ---------------------------------------------------------

  bool start(std::string* error) {
    const auto fail = [&](const char* what) {
      // strerror before any close() below can clobber errno.
      if (error != nullptr) {
        *error = std::string(what) + ": " + std::strerror(errno);
      }
      // Unwind everything created so far — shutdown() early-returns while
      // `started` is false, so a partial start must clean up after itself
      // or earlier workers' epoll/event fds leak.
      for (const auto& worker : workers) {
        close_quietly(worker->epoll_fd);
        close_quietly(worker->wake_fd);
      }
      workers.clear();
      close_quietly(stop_accept_fd);
      stop_accept_fd = -1;
      close_quietly(listen_fd);
      listen_fd = -1;
      return false;
    };

    // Every fd the server creates is CLOEXEC: the embedding tool may
    // fork/exec helpers, and a leaked listen socket would hold the port
    // open (and leaked epoll/event fds pin kernel resources) after
    // shutdown for as long as the child lives.
    listen_fd =
        ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (listen_fd < 0) return fail("socket");
    int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config.port);
    if (::inet_pton(AF_INET, config.bind_address.c_str(), &addr.sin_addr) !=
        1) {
      return fail("inet_pton");
    }
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
        0) {
      return fail("bind");
    }
    if (::listen(listen_fd, 128) != 0) return fail("listen");
    socklen_t len = sizeof addr;
    ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
    bound_port = ntohs(addr.sin_port);

    stop_accept_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (stop_accept_fd < 0) return fail("eventfd");

    std::size_t count = config.workers;
    if (count == 0) count = std::thread::hardware_concurrency();
    if (count == 0) count = 1;
    for (std::size_t i = 0; i < count; ++i) {
      auto worker = std::make_unique<Worker>();
      worker->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
      worker->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
      if (worker->epoll_fd < 0 || worker->wake_fd < 0) {
        close_quietly(worker->epoll_fd);
        close_quietly(worker->wake_fd);
        return fail("worker setup");
      }
      epoll_event ev{};
      ev.data.fd = worker->wake_fd;
      ev.events = EPOLLIN;
      ::epoll_ctl(worker->epoll_fd, EPOLL_CTL_ADD, worker->wake_fd, &ev);
      workers.push_back(std::move(worker));
    }
    for (auto& worker : workers) {
      worker->thread = std::thread([this, w = worker.get()] {
        worker_loop(*w);
      });
    }
    acceptor = std::thread([this] { acceptor_loop(); });
    started.store(true, std::memory_order_release);
    return true;
  }

  void shutdown() {
    std::lock_guard lock(shutdown_mutex);
    if (!started.load(std::memory_order_acquire) ||
        stopped.load(std::memory_order_acquire)) {
      return;
    }
    // 1. Stop the intake: no new connections once the drain begins.
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(stop_accept_fd, &one, sizeof one);
    acceptor.join();
    close_quietly(listen_fd);
    listen_fd = -1;

    // 2. Drain the workers: flush queued responses, then close and join.
    draining.store(true, std::memory_order_release);
    for (auto& worker : workers) wake(*worker);
    for (auto& worker : workers) worker->thread.join();
    for (auto& worker : workers) {
      close_quietly(worker->epoll_fd);
      close_quietly(worker->wake_fd);
    }
    close_quietly(stop_accept_fd);
    stop_accept_fd = -1;
    stopped.store(true, std::memory_order_release);
  }

  ServerCounters counters() const {
    ServerCounters out;
    out.connections_accepted = accepted.load(std::memory_order_relaxed);
    out.accept_backoffs = accept_backoffs.load(std::memory_order_relaxed);
    for (const auto& worker : workers) {
      out.connections_closed +=
          worker->closed.load(std::memory_order_relaxed);
      out.frames_handled += worker->frames.load(std::memory_order_relaxed);
      out.malformed_frames +=
          worker->malformed.load(std::memory_order_relaxed);
      out.idle_closed +=
          worker->idle_closed.load(std::memory_order_relaxed);
      out.idle_exempted +=
          worker->idle_exempted.load(std::memory_order_relaxed);
      out.backpressure_pauses +=
          worker->bp_pauses.load(std::memory_order_relaxed);
      out.backpressure_resumes +=
          worker->bp_resumes.load(std::memory_order_relaxed);
      out.lingering_closes +=
          worker->lingering.load(std::memory_order_relaxed);
      out.send_syscalls +=
          worker->send_calls.load(std::memory_order_relaxed);
    }
    return out;
  }
};

TcpServer::TcpServer(ServerConfig config, Handler handler)
    : TcpServer(std::move(config),
                StreamHandler([h = std::move(handler)](
                                  FrameType type, std::string_view payload,
                                  std::string& out) {
                  const Frame response = h(type, payload);
                  encode_frame_into(out, response.type, response.payload);
                })) {}

TcpServer::TcpServer(ServerConfig config, StreamHandler handler)
    : impl_(std::make_unique<Impl>()) {
  impl_->config = std::move(config);
  impl_->handler = std::move(handler);
}

TcpServer::~TcpServer() {
  if (impl_ != nullptr) impl_->shutdown();
}

bool TcpServer::start(std::string* error) { return impl_->start(error); }

std::uint16_t TcpServer::port() const { return impl_->bound_port; }

void TcpServer::shutdown() { impl_->shutdown(); }

bool TcpServer::running() const {
  return impl_->started.load(std::memory_order_acquire) &&
         !impl_->stopped.load(std::memory_order_acquire);
}

ServerCounters TcpServer::counters() const { return impl_->counters(); }

}  // namespace sm::netio
