#include "netio/client_pool.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>

#include "util/crc32.h"

namespace sm::netio {
namespace {

using Clock = std::chrono::steady_clock;

// Poll ceiling so reader/prober threads notice shutdown on a silent
// socket within one tick.
constexpr int kTickMs = 100;

int remaining_ms(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - Clock::now())
                        .count();
  if (left <= 0) return 0;
  return static_cast<int>(std::min<long long>(left, kTickMs));
}

/// Connects with a bounded wait; returns -1 on any failure. The returned
/// fd is blocking (writers use plain send loops bounded by SO_SNDTIMEO)
/// and CLOEXEC.
int connect_backend(const Endpoint& ep, int connect_timeout_ms,
                    int send_timeout_ms) {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (errno != EINPROGRESS) {
      ::close(fd);
      return -1;
    }
    pollfd pfd = {fd, POLLOUT, 0};
    if (::poll(&pfd, 1, connect_timeout_ms) <= 0) {
      ::close(fd);
      return -1;
    }
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0) {
      ::close(fd);
      return -1;
    }
  }
  const int flags = ::fcntl(fd, F_GETFL);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK) != 0) {
    ::close(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  timeval tv{};
  tv.tv_sec = send_timeout_ms / 1000;
  tv.tv_usec = (send_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  return fd;
}

void put_u32le_bytes(unsigned char* p, std::uint32_t value) {
  p[0] = static_cast<unsigned char>(value & 0xff);
  p[1] = static_cast<unsigned char>((value >> 8) & 0xff);
  p[2] = static_cast<unsigned char>((value >> 16) & 0xff);
  p[3] = static_cast<unsigned char>((value >> 24) & 0xff);
}

/// Encodes and sends a run of same-typed frames scatter/gather: per-frame
/// header and CRC trailer live on the stack, payload bytes go straight
/// from the caller's views — no frame string is ever materialized. Frames
/// ship in sendmsg chunks of up to kSendChunk (3 iovecs each, well under
/// IOV_MAX), resuming mid-iovec after partial sends.
bool send_frames(int fd, FrameType type,
                 std::span<const std::string_view> payloads) {
  constexpr std::size_t kSendChunk = 64;
  unsigned char headers[kSendChunk][kFrameHeaderSize];
  unsigned char trailers[kSendChunk][kFrameTrailerSize];
  iovec iov[kSendChunk * 3];
  for (std::size_t base = 0; base < payloads.size(); base += kSendChunk) {
    const std::size_t count = std::min(kSendChunk, payloads.size() - base);
    std::size_t iovcnt = 0;
    std::size_t total = 0;
    for (std::size_t i = 0; i < count; ++i) {
      const std::string_view payload = payloads[base + i];
      unsigned char* header = headers[i];
      header[0] = static_cast<unsigned char>(type);
      put_u32le_bytes(header + 1,
                      static_cast<std::uint32_t>(payload.size()));
      std::uint32_t crc = util::crc32(header, kFrameHeaderSize);
      crc = util::crc32(payload.data(), payload.size(), crc);
      put_u32le_bytes(trailers[i], crc);
      iov[iovcnt++] = {header, kFrameHeaderSize};
      if (!payload.empty()) {
        iov[iovcnt++] = {const_cast<char*>(payload.data()), payload.size()};
      }
      iov[iovcnt++] = {trailers[i], kFrameTrailerSize};
      total += kFrameHeaderSize + payload.size() + kFrameTrailerSize;
    }
    std::size_t iov_idx = 0;
    std::size_t sent_total = 0;
    while (sent_total < total) {
      msghdr msg{};
      msg.msg_iov = iov + iov_idx;
      msg.msg_iovlen = iovcnt - iov_idx;
      const ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;  // SO_SNDTIMEO expiry surfaces as EAGAIN: dead peer
      }
      sent_total += static_cast<std::size_t>(n);
      std::size_t sent = static_cast<std::size_t>(n);
      while (sent > 0 && sent >= iov[iov_idx].iov_len) {
        sent -= iov[iov_idx].iov_len;
        ++iov_idx;
      }
      if (sent > 0) {
        iov[iov_idx].iov_base =
            static_cast<char*>(iov[iov_idx].iov_base) + sent;
        iov[iov_idx].iov_len -= sent;
      }
    }
  }
  return true;
}

}  // namespace

struct ClientPool::Impl {
  struct Waiter {
    std::promise<CallResult> promise;
    Clock::time_point deadline;
  };

  // One pooled connection. Ownership discipline, so fd lifetime is
  // single-writer: the fd transitions -1 -> live only by a caller (under
  // `mutex`, and only while fd == -1, which implies the reader is parked
  // and not touching fd/decoder), and live -> -1 only by the reader —
  // except that a caller may close it directly when `waiters` is empty
  // (the reader only runs its read phase with waiters in flight, so an
  // empty deque means it is parked behind `mutex`). With waiters in
  // flight a failing caller calls ::shutdown() instead and lets the
  // reader observe the broken stream and clean up.
  struct Conn {
    std::mutex mutex;
    std::condition_variable cv;
    int fd = -1;
    FrameDecoder decoder;
    std::deque<Waiter> waiters;
    std::thread reader;
    // Probe traffic is accounted in pings_ok/pings_failed only; a probe
    // conn stays out of the data-path counters (requests, ok, errors,
    // reconnects) so ROUTER-STATS error classes mean what they say.
    bool is_probe = false;
  };

  struct Backend {
    Endpoint endpoint;
    std::vector<std::unique_ptr<Conn>> conns;  // round-robin data conns
    std::unique_ptr<Conn> probe;  // prober-only, so a slow probe never
                                  // queues behind (or fails) data calls
    std::atomic<std::size_t> next{0};
    std::atomic<bool> healthy{true};

    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> ok{0};
    std::atomic<std::uint64_t> connect_errors{0};
    std::atomic<std::uint64_t> timeouts{0};
    std::atomic<std::uint64_t> io_errors{0};
    std::atomic<std::uint64_t> pings_ok{0};
    std::atomic<std::uint64_t> pings_failed{0};
    std::atomic<std::uint64_t> mark_downs{0};
    std::atomic<std::uint64_t> reconnects{0};
  };

  // The backend list is immutable once published: add_backend copies it,
  // appends, and release-stores the new list (RCU). Readers (call paths,
  // the prober, counters) acquire-load a snapshot and index into it;
  // Backend objects themselves are shared_ptr-owned, so a snapshot taken
  // before an add keeps working unchanged. Backends are never removed —
  // a retired shard's backend just stops being named by any routing
  // table, its counters still visible in ROUTER-STATS.
  using BackendList = std::vector<std::shared_ptr<Backend>>;

  ClientPoolConfig config;
  std::atomic<std::shared_ptr<const BackendList>> backends{nullptr};
  std::mutex grow_mutex;  // serializes add_backend; shutdown takes it to
                          // pin the final list before joining threads
  std::atomic<bool> stop{false};
  std::thread prober;
  std::mutex prober_mutex;
  std::condition_variable prober_cv;

  std::shared_ptr<const BackendList> list() const {
    return backends.load(std::memory_order_acquire);
  }

  static void mark_down(Backend& b) {
    if (b.healthy.exchange(false, std::memory_order_relaxed)) {
      b.mark_downs.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Fails and clears every in-flight waiter. Caller holds conn.mutex.
  static void fail_waiters(Conn& conn, CallStatus status) {
    for (Waiter& w : conn.waiters) {
      w.promise.set_value(CallResult{status, {}});
    }
    conn.waiters.clear();
  }

  /// Reader-side teardown. Caller holds conn.mutex.
  void break_connection(Backend& backend, Conn& conn, CallStatus status) {
    if (!conn.is_probe) {
      const std::uint64_t n = conn.waiters.size();
      auto& counter = status == CallStatus::kTimeout ? backend.timeouts
                                                     : backend.io_errors;
      counter.fetch_add(n, std::memory_order_relaxed);
    }
    fail_waiters(conn, status);
    ::close(conn.fd);
    conn.fd = -1;
    mark_down(backend);
  }

  void reader_loop(Backend& backend, Conn& conn) {
    std::unique_lock lock(conn.mutex);
    for (;;) {
      conn.cv.wait(lock, [&] {
        return stop.load(std::memory_order_acquire) ||
               (conn.fd >= 0 && !conn.waiters.empty());
      });
      if (stop.load(std::memory_order_acquire)) break;
      const int fd = conn.fd;
      const Clock::time_point deadline = conn.waiters.front().deadline;
      lock.unlock();

      pollfd pfd = {fd, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, remaining_ms(deadline));
      if (ready < 0 && errno != EINTR) {
        lock.lock();
        break_connection(backend, conn, CallStatus::kIoError);
        continue;
      }
      if (ready <= 0) {
        lock.lock();
        if (Clock::now() >= deadline) {
          // The oldest answer is overdue. Everything behind it on this
          // connection is unidentifiable once the stream is abandoned,
          // so the whole flight fails and the connection resets.
          break_connection(backend, conn, CallStatus::kTimeout);
        }
        continue;
      }

      char buf[64 * 1024];
      const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
      if (n < 0 && errno == EINTR) {
        lock.lock();
        continue;
      }
      lock.lock();
      if (n <= 0) {  // EOF or error: the stream is gone
        break_connection(backend, conn, CallStatus::kIoError);
        continue;
      }
      conn.decoder.feed(buf, static_cast<std::size_t>(n));
      bool broken = false;
      Frame frame;
      while (!broken) {
        const DecodeStatus status = conn.decoder.next(frame);
        if (status == DecodeStatus::kNeedMore) break;
        if (status == DecodeStatus::kMalformed || conn.waiters.empty()) {
          // Garbage, or a response nobody asked for: correlation is
          // positional, so the stream is unusable from here on.
          break_connection(backend, conn, CallStatus::kIoError);
          broken = true;
          break;
        }
        Waiter waiter = std::move(conn.waiters.front());
        conn.waiters.pop_front();
        if (!conn.is_probe) {
          backend.ok.fetch_add(1, std::memory_order_relaxed);
        }
        waiter.promise.set_value(CallResult{CallStatus::kOk, std::move(frame)});
        frame = Frame{};
      }
    }
    // Shutdown: resolve anything still in flight, release the socket.
    fail_waiters(conn, CallStatus::kShutdown);
    if (conn.fd >= 0) {
      ::close(conn.fd);
      conn.fd = -1;
    }
  }

  /// Sends every payload as one pipelined flight on `conn`: one lock, one
  /// vectored send, payloads.size() FIFO waiters. Futures are appended to
  /// `out` in payload order. Any failure fails the whole batch — the
  /// frames share one stream, so none of them can be answered once it
  /// breaks.
  void call_many_on_conn(Backend& backend, Conn& conn, FrameType type,
                         std::span<const std::string_view> payloads,
                         std::vector<std::future<CallResult>>& out) {
    std::vector<std::promise<CallResult>> promises(payloads.size());
    out.reserve(out.size() + promises.size());
    for (auto& promise : promises) out.push_back(promise.get_future());
    const auto fail_all = [&](CallStatus status) {
      for (auto& promise : promises) {
        promise.set_value(CallResult{status, {}});
      }
    };

    std::lock_guard lock(conn.mutex);
    if (stop.load(std::memory_order_acquire)) {
      fail_all(CallStatus::kShutdown);
      return;
    }
    if (conn.fd < 0) {
      const int fd = connect_backend(backend.endpoint,
                                     config.connect_timeout_ms,
                                     config.request_timeout_ms);
      if (fd < 0) {
        if (!conn.is_probe) {
          backend.connect_errors.fetch_add(promises.size(),
                                           std::memory_order_relaxed);
        }
        mark_down(backend);
        fail_all(CallStatus::kConnectFailed);
        return;
      }
      conn.fd = fd;
      conn.decoder = FrameDecoder(config.max_frame_payload);
      if (!conn.is_probe) {
        backend.reconnects.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (!send_frames(conn.fd, type, payloads)) {
      if (!conn.is_probe) {
        backend.io_errors.fetch_add(promises.size(),
                                    std::memory_order_relaxed);
      }
      mark_down(backend);
      if (conn.waiters.empty()) {
        ::close(conn.fd);  // reader is parked: safe to take the fd down
        conn.fd = -1;
      } else {
        ::shutdown(conn.fd, SHUT_RDWR);  // reader owns the teardown
        conn.cv.notify_all();
      }
      fail_all(CallStatus::kIoError);
      return;
    }
    const Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(config.request_timeout_ms);
    for (auto& promise : promises) {
      conn.waiters.push_back({std::move(promise), deadline});
    }
    conn.cv.notify_all();
  }

  std::future<CallResult> call_on_conn(Backend& backend, Conn& conn,
                                       FrameType type,
                                       std::string_view payload) {
    const std::string_view payloads[1] = {payload};
    std::vector<std::future<CallResult>> futures;
    call_many_on_conn(backend, conn, type, payloads, futures);
    return std::move(futures[0]);
  }

  void probe_loop() {
    std::unique_lock lock(prober_mutex);
    while (!stop.load(std::memory_order_acquire)) {
      prober_cv.wait_for(
          lock, std::chrono::milliseconds(config.ping_interval_ms),
          [&] { return stop.load(std::memory_order_acquire); });
      if (stop.load(std::memory_order_acquire)) break;
      lock.unlock();
      // Per-round snapshot: a backend added mid-round is probed from the
      // next round on.
      const std::shared_ptr<const BackendList> snapshot = list();
      for (const auto& backend : *snapshot) {
        if (stop.load(std::memory_order_acquire)) break;
        std::future<CallResult> future =
            call_on_conn(*backend, *backend->probe, FrameType::kPing, "hp");
        const CallResult result = future.get();
        if (result.ok() && result.response.type == FrameType::kPong) {
          backend->pings_ok.fetch_add(1, std::memory_order_relaxed);
          backend->healthy.store(true, std::memory_order_relaxed);
        } else {
          backend->pings_failed.fetch_add(1, std::memory_order_relaxed);
          mark_down(*backend);
        }
      }
      lock.lock();
    }
  }

  std::shared_ptr<Backend> make_backend(Endpoint endpoint) {
    auto backend = std::make_shared<Backend>();
    backend->endpoint = std::move(endpoint);
    for (std::size_t i = 0; i < config.connections_per_backend; ++i) {
      backend->conns.push_back(std::make_unique<Conn>());
    }
    backend->probe = std::make_unique<Conn>();
    backend->probe->is_probe = true;
    return backend;
  }

  void start_backend(Backend& backend) {
    for (auto& conn : backend.conns) {
      conn->reader = std::thread(
          [this, b = &backend, c = conn.get()] { reader_loop(*b, *c); });
    }
    backend.probe->reader = std::thread(
        [this, b = &backend] { reader_loop(*b, *b->probe); });
  }

  void start() {
    for (const auto& backend : *list()) start_backend(*backend);
    if (config.ping_interval_ms > 0) {
      prober = std::thread([this] { probe_loop(); });
    }
  }

  void shutdown() {
    stop.store(true, std::memory_order_release);
    prober_cv.notify_all();
    // Pin the final list under grow_mutex: any add_backend that won the
    // lock before us is fully in the list (threads included); any that
    // loses it observes `stop` and refuses, so no thread escapes the
    // joins below.
    std::shared_ptr<const BackendList> final_list;
    {
      std::lock_guard grow(grow_mutex);
      final_list = list();
    }
    const auto poke = [](Conn& conn) {
      std::lock_guard lock(conn.mutex);
      if (conn.fd >= 0) ::shutdown(conn.fd, SHUT_RDWR);
      conn.cv.notify_all();
    };
    for (const auto& backend : *final_list) {
      for (auto& conn : backend->conns) poke(*conn);
      poke(*backend->probe);
    }
    for (const auto& backend : *final_list) {
      for (auto& conn : backend->conns) {
        if (conn->reader.joinable()) conn->reader.join();
      }
      if (backend->probe->reader.joinable()) backend->probe->reader.join();
    }
    if (prober.joinable()) prober.join();
  }
};

ClientPool::ClientPool(std::vector<Endpoint> backends,
                       ClientPoolConfig config)
    : impl_(std::make_unique<Impl>()) {
  impl_->config = config;
  if (impl_->config.connections_per_backend == 0) {
    impl_->config.connections_per_backend = 1;
  }
  auto initial = std::make_shared<Impl::BackendList>();
  for (Endpoint& endpoint : backends) {
    initial->push_back(impl_->make_backend(std::move(endpoint)));
  }
  impl_->backends.store(std::move(initial), std::memory_order_release);
  impl_->start();
}

ClientPool::~ClientPool() { impl_->shutdown(); }

std::size_t ClientPool::backend_count() const {
  return impl_->list()->size();
}

const Endpoint& ClientPool::backend(std::size_t index) const {
  return (*impl_->list())[index]->endpoint;
}

std::size_t ClientPool::add_backend(const Endpoint& endpoint) {
  std::lock_guard grow(impl_->grow_mutex);
  const std::shared_ptr<const Impl::BackendList> cur = impl_->list();
  for (std::size_t i = 0; i < cur->size(); ++i) {
    const Endpoint& existing = (*cur)[i]->endpoint;
    if (existing.host == endpoint.host && existing.port == endpoint.port) {
      return i;
    }
  }
  if (impl_->stop.load(std::memory_order_acquire)) return kNoBackend;
  std::shared_ptr<Impl::Backend> backend = impl_->make_backend(endpoint);
  impl_->start_backend(*backend);
  auto next = std::make_shared<Impl::BackendList>(*cur);
  next->push_back(std::move(backend));
  impl_->backends.store(std::move(next), std::memory_order_release);
  return cur->size();
}

std::future<CallResult> ClientPool::call(std::size_t backend,
                                         FrameType type,
                                         std::string_view payload) {
  const std::shared_ptr<const Impl::BackendList> list = impl_->list();
  Impl::Backend& b = *(*list)[backend];
  b.requests.fetch_add(1, std::memory_order_relaxed);
  Impl::Conn& conn =
      *b.conns[b.next.fetch_add(1, std::memory_order_relaxed) %
               b.conns.size()];
  return impl_->call_on_conn(b, conn, type, payload);
}

std::vector<std::future<CallResult>> ClientPool::call_many(
    std::size_t backend, FrameType type,
    std::span<const std::string_view> payloads) {
  std::vector<std::future<CallResult>> out;
  if (payloads.empty()) return out;
  const std::shared_ptr<const Impl::BackendList> list = impl_->list();
  Impl::Backend& b = *(*list)[backend];
  b.requests.fetch_add(payloads.size(), std::memory_order_relaxed);
  Impl::Conn& conn =
      *b.conns[b.next.fetch_add(1, std::memory_order_relaxed) %
               b.conns.size()];
  impl_->call_many_on_conn(b, conn, type, payloads, out);
  return out;
}

bool ClientPool::healthy(std::size_t backend) const {
  return (*impl_->list())[backend]->healthy.load(std::memory_order_relaxed);
}

BackendCounters ClientPool::counters(std::size_t backend) const {
  const Impl::Backend& b = *(*impl_->list())[backend];
  BackendCounters out;
  out.requests = b.requests.load(std::memory_order_relaxed);
  out.ok = b.ok.load(std::memory_order_relaxed);
  out.connect_errors = b.connect_errors.load(std::memory_order_relaxed);
  out.timeouts = b.timeouts.load(std::memory_order_relaxed);
  out.io_errors = b.io_errors.load(std::memory_order_relaxed);
  out.pings_ok = b.pings_ok.load(std::memory_order_relaxed);
  out.pings_failed = b.pings_failed.load(std::memory_order_relaxed);
  out.mark_downs = b.mark_downs.load(std::memory_order_relaxed);
  out.reconnects = b.reconnects.load(std::memory_order_relaxed);
  return out;
}

}  // namespace sm::netio
