// A from-scratch epoll TCP server for the notary daemon: one acceptor
// thread plus N single-threaded worker event loops (the util::ThreadPool
// shape — fixed threads created up front, no per-connection threads).
// Connections are non-blocking end to end, with per-connection read/write
// buffers, idle timeouts, write backpressure, and a clean drain shutdown:
//
//  * the acceptor distributes accepted sockets round-robin over the
//    workers through an eventfd-signalled handoff queue;
//  * each worker owns its connections exclusively, so the event loop runs
//    lock-free; the request handler is the only shared code and must be
//    thread-safe;
//  * a malformed frame (unknown type, oversized length, CRC mismatch)
//    earns one kError response and a connection close — the worker and
//    every other connection keep running;
//  * shutdown() (the SIGTERM path) stops accepting, lets workers flush
//    every response already queued (bounded by drain_timeout_ms), then
//    closes and joins. It is safe to call from a signal-driven thread
//    while clients are mid-request.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "netio/frame.h"

namespace sm::netio {

/// Server tunables.
struct ServerConfig {
  /// Dotted-quad address to bind ("127.0.0.1" keeps the notary loopback-
  /// only; "0.0.0.0" serves the world).
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 asks the kernel for an ephemeral port (see TcpServer::
  /// port() after start()).
  std::uint16_t port = 0;
  /// Worker event loops; 0 means one per hardware thread.
  std::size_t workers = 0;
  /// Connections silent (no readable bytes, nothing to write) this long
  /// are closed.
  int idle_timeout_ms = 60'000;
  /// shutdown(): maximum time workers keep flushing queued responses
  /// before force-closing.
  int drain_timeout_ms = 5'000;
  /// Per-frame payload ceiling (rejected before allocation).
  std::size_t max_frame_payload = kMaxFramePayload;
  /// Pause reading from a connection whose unsent responses exceed this;
  /// reading resumes once at most half of it remains queued (hysteresis,
  /// so a pipelining client is not re-paused after every partial flush).
  std::size_t max_buffered_responses = 4u << 20;
};

/// Lifetime totals, aggregated over acceptor + workers. Safe to snapshot
/// while running (relaxed atomics; exact once the server is shut down).
struct ServerCounters {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t frames_handled = 0;     ///< well-formed frames dispatched
  std::uint64_t malformed_frames = 0;   ///< framing violations (1/connection)
  std::uint64_t idle_closed = 0;        ///< closed by the idle timeout
  /// Idle-sweep passes that spared a connection because the server still
  /// owed it queued response bytes (unsent() > 0 with EPOLLOUT armed).
  std::uint64_t idle_exempted = 0;
  std::uint64_t accept_backoffs = 0;    ///< acceptor sleeps on fd exhaustion
  /// Flush-complete closes that found unread request bytes still queued
  /// and half-closed (FIN) instead: closing outright would have made the
  /// kernel send RST, destroying response bytes still in flight to the
  /// peer. The connection lingers, discarding input, until the peer's
  /// EOF (bounded by the idle sweep / drain deadline).
  std::uint64_t lingering_closes = 0;
  std::uint64_t backpressure_pauses = 0;   ///< reads paused (outbuf > max)
  /// Reads resumed with responses still queued (the half-drain
  /// hysteresis; resumes via a fully drained outbuf are not counted).
  std::uint64_t backpressure_resumes = 0;
  /// sendmsg(2) calls that moved at least one byte. Responses queued
  /// while a flush is blocked ride out in the same vectored call, so for
  /// a pipelining client this grows far slower than frames_handled.
  std::uint64_t send_syscalls = 0;
};

/// The server. Construct, start(), serve until shutdown().
class TcpServer {
 public:
  /// Called on a worker thread once per well-formed request frame; the
  /// returned frame is sent back on the same connection. Must be
  /// thread-safe; must not block indefinitely (it stalls that worker's
  /// event loop).
  using Handler = std::function<Frame(FrameType, std::string_view payload)>;

  /// The zero-copy handler shape: appends the complete, already-encoded
  /// response frame (header, payload, CRC) directly to `out`, which is
  /// the connection's output buffer — no intermediate Frame, no payload
  /// copy. Same threading rules as Handler. Must append exactly one
  /// well-formed frame per call.
  using StreamHandler =
      std::function<void(FrameType, std::string_view payload,
                         std::string& out)>;

  /// The Handler form re-encodes the returned frame into the connection
  /// buffer; the StreamHandler form skips that copy.
  TcpServer(ServerConfig config, Handler handler);
  TcpServer(ServerConfig config, StreamHandler handler);
  ~TcpServer();  ///< implies shutdown()

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens, and launches the acceptor + workers. False (with
  /// `error` filled in when given) if the socket could not be set up.
  bool start(std::string* error = nullptr);

  /// The bound port (valid after start(); resolves port 0 requests).
  std::uint16_t port() const;

  /// Graceful drain: stop accepting, flush queued responses, close, join.
  /// Idempotent; safe to call concurrently with serving traffic.
  void shutdown();

  /// True between a successful start() and shutdown().
  bool running() const;

  ServerCounters counters() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace sm::netio
