// ClientPool — pooled, pipelined frame-protocol client connections, the
// router tier's path to its backends.
//
//  * Each backend gets a fixed set of persistent connections. A call()
//    picks one (round-robin), appends the request frame, and returns a
//    future; many calls share one connection in flight (pipelining), so
//    a single TCP stream amortizes syscalls and keeps the backend's
//    epoll loop busy.
//  * Correlation is FIFO per connection: the server answers every frame
//    on the connection it arrived on, in arrival order, so the oldest
//    unanswered call owns the next response. (No request ids on the
//    wire — ordering IS the correlation scheme. Responses across
//    *different* connections complete out of order freely.)
//  * One reader thread per connection parses responses and completes
//    futures; the oldest waiter's deadline is the connection's read
//    timeout. A timeout, EOF, or malformed response fails every call in
//    flight on that connection (their responses are unidentifiable once
//    the stream is broken) and the connection reconnects lazily.
//  * A prober thread kPings every backend on a fixed cadence and flips
//    its health bit; callers can route around unhealthy backends and
//    the prober's successful ping marks them back up.
//  * Counters are per-backend and per-error-class, since-start
//    (requests, ok, connect errors, timeouts, io errors, pings ok/
//    failed, mark-downs, reconnects) — the ROUTER-STATS raw material.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "netio/frame.h"

namespace sm::netio {

/// One backend address.
struct Endpoint {
  std::string host;
  std::uint16_t port = 0;
};

/// Pool tunables.
struct ClientPoolConfig {
  /// Persistent connections per backend.
  std::size_t connections_per_backend = 2;
  int connect_timeout_ms = 1'000;
  /// Deadline for the oldest in-flight call on a connection; hitting it
  /// fails everything queued behind it too.
  int request_timeout_ms = 2'000;
  /// Health-probe cadence; 0 disables the prober thread.
  int ping_interval_ms = 200;
  /// Response decoder ceiling. Batch responses aggregate many rendered
  /// certificates, so this defaults well above the frame codec's
  /// single-frame kMaxFramePayload.
  std::size_t max_frame_payload = 32u << 20;
};

/// How a call() ended.
enum class CallStatus {
  kOk,            ///< response frame received
  kConnectFailed, ///< could not establish a connection
  kTimeout,       ///< oldest-waiter deadline expired
  kIoError,       ///< send/recv error, EOF, or malformed response
  kShutdown,      ///< pool destroyed with the call in flight
};

struct CallResult {
  CallStatus status = CallStatus::kShutdown;
  Frame response;  ///< valid only when status == kOk

  bool ok() const { return status == CallStatus::kOk; }
};

/// Since-start, per-backend counters (relaxed atomics under the hood;
/// this is the copied-out view).
struct BackendCounters {
  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  std::uint64_t connect_errors = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t io_errors = 0;
  std::uint64_t pings_ok = 0;
  std::uint64_t pings_failed = 0;
  std::uint64_t mark_downs = 0;   ///< healthy -> unhealthy transitions
  std::uint64_t reconnects = 0;   ///< successful (re-)connects
};

/// The pool. Construct with the backend list, then call() from any
/// thread. Backends can be added while the pool is live (resharding
/// brings up successors at runtime) but never removed — indices handed
/// out stay valid for the pool's lifetime, which is what lets the router
/// publish routing tables that name backends by index. Destruction fails
/// outstanding calls with kShutdown and joins every reader/prober thread.
class ClientPool {
 public:
  /// add_backend's failure value (pool already shutting down).
  static constexpr std::size_t kNoBackend = static_cast<std::size_t>(-1);

  ClientPool(std::vector<Endpoint> backends, ClientPoolConfig config = {});
  ~ClientPool();

  ClientPool(const ClientPool&) = delete;
  ClientPool& operator=(const ClientPool&) = delete;

  std::size_t backend_count() const;
  const Endpoint& backend(std::size_t index) const;

  /// Registers `endpoint` and returns its pool index, starting its
  /// connections and enrolling it with the health prober. Idempotent: an
  /// endpoint already in the pool (same host:port) returns its existing
  /// index. Thread-safe against calls, probes, and other add_backend
  /// invocations (the backend list is copy-on-add behind an atomic
  /// shared_ptr, the same RCU pattern as the router's prefix map).
  /// Returns kNoBackend if the pool is already shutting down.
  std::size_t add_backend(const Endpoint& endpoint);

  /// Sends one request frame to `backend` and resolves the future when
  /// its response arrives (or the call fails). Thread-safe; returns
  /// immediately.
  std::future<CallResult> call(std::size_t backend, FrameType type,
                               std::string_view payload);

  /// Pipelines payloads.size() same-typed request frames to `backend`
  /// over ONE pooled connection in one vectored send: one lock, one
  /// sendmsg batch, N FIFO-correlated futures (result i answers
  /// payloads[i]). A send failure fails every call in the batch. The
  /// frames are encoded scatter/gather straight from the payload views —
  /// no per-call frame string is built.
  std::vector<std::future<CallResult>> call_many(
      std::size_t backend, FrameType type,
      std::span<const std::string_view> payloads);

  /// Current health bit: set by successful probes/calls, cleared by any
  /// failure. A fresh pool reports healthy until proven otherwise.
  bool healthy(std::size_t backend) const;

  BackendCounters counters(std::size_t backend) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace sm::netio
