// The sm_notaryd wire protocol: length-prefixed binary frames, each
// carrying a CRC32 of everything before the trailer so corruption on the
// wire (or a confused client) is detected per frame instead of poisoning
// the stream silently.
//
// Frame layout (all integers little-endian):
//
//   offset  size  field
//   0       1     type        (FrameType)
//   1       4     size        (payload bytes; bounded by max_payload)
//   5       size  payload
//   5+size  4     crc32       (util::crc32 over bytes [0, 5+size))
//
// Request frames a client may send: kQuery (payload = 16- or 32-byte
// certificate fingerprint; 32-byte SHA-256 inputs are truncated to the
// archive's 128-bit intern key), kBatchQuery (u32le count + count 16-byte
// fingerprints — one frame, many lookups, amortizing framing cost on the
// hot path), kRevocationQuery (same payload shapes as kQuery/kBatchQuery;
// asks for revocation status instead of full knowledge), kStats (empty
// payload), kPing (arbitrary payload, echoed), kSnapshot (empty payload;
// asks which index epoch is serving). The server answers kCertInfo /
// kNotFound / kBatchInfo / kRevocationInfo / kStatsText / kPong /
// kSnapshotInfo, or kError with a human-readable reason.
//
// The resharding control plane rides the same framing: kMapUpdate /
// kMapInfo move the router's serialized prefix map (notary/prefix_map.h),
// and kSliceBegin / kSliceSegment / kSliceDone / kSliceSend / kSliceRetire
// move a backend's prefix slice to a successor daemon (notary/reshard.h).
// Daemons and routers that predate these types answer them kError under
// the forward-compatibility rule below, which is what makes a mixed-epoch
// fleet safe during rollout.
//
// A frame that cannot be parsed at all (oversized length, checksum
// mismatch) gets one kError response and the connection is closed —
// framing is lost, so the stream cannot be resynchronized — but the
// worker and every other connection keep running. A well-framed frame of
// an *unknown type*, by contrast, decodes cleanly: framing is intact, so
// the handler answers kError ("unsupported request frame") and the
// connection stays healthy. That forward-compatibility rule is what let
// kRevocationQuery roll out against fleets of older daemons.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace sm::netio {

/// Fixed bytes before the payload (type + size) and after it (crc32).
inline constexpr std::size_t kFrameHeaderSize = 5;
inline constexpr std::size_t kFrameTrailerSize = 4;

/// Default ceiling on payload size; a length field above the limit is
/// rejected before any allocation, so hostile lengths cannot balloon
/// memory (mirrors the archive loader's bounded reads).
inline constexpr std::size_t kMaxFramePayload = 1 << 20;

/// Frame kinds. Requests are < 0x80, responses >= 0x80.
enum class FrameType : std::uint8_t {
  kQuery = 0x01,      ///< fingerprint lookup
  kStats = 0x02,      ///< metrics snapshot request
  kPing = 0x03,       ///< liveness probe; payload echoed back
  kSnapshot = 0x04,   ///< which index epoch is serving? (empty payload)
  kBatchQuery = 0x05,  ///< many fingerprint lookups in one frame
  kRevocationQuery = 0x06,  ///< revocation status lookup (single or batch)
  kMapUpdate = 0x07,  ///< routing map: empty payload fetches, else applies
  kSliceBegin = 0x08,    ///< start of a prefix-slice transfer (lo, hi, aux)
  kSliceSegment = 0x09,  ///< one chunk of a slice stream (stream id + bytes)
  kSliceDone = 0x0a,     ///< end of transfer; receiver merges and publishes
  kSliceSend = 0x0b,  ///< tell a backend to stream [lo,hi] to a successor
  kSliceRetire = 0x0c,   ///< tell a backend to drop its [lo,hi] slice
  kCertInfo = 0x81,   ///< rendered certificate knowledge
  kNotFound = 0x82,   ///< fingerprint unknown to the notary
  kStatsText = 0x83,  ///< rendered metrics
  kPong = 0x84,       ///< ping echo
  kSnapshotInfo = 0x85,  ///< snapshot staleness bound ("as of scan N")
  kBatchInfo = 0x86,  ///< per-entry answers to a kBatchQuery
  kRevocationInfo = 0x87,  ///< rendered revocation status
  kMapInfo = 0x88,    ///< serialized routing map now in effect
  kSliceInfo = 0x89,  ///< progress/summary answer to a slice-control frame
  kError = 0xee,      ///< malformed/unsupported request; payload = reason
};

/// True for the byte values enumerated above. NOT consulted by the frame
/// decoder — an unknown type with intact framing decodes and is answered
/// kError by the handler (forward compatibility) — but handlers use it to
/// classify, and batch-entry statuses are validated against it.
bool is_known_frame_type(std::uint8_t value);

/// Little-endian u32 helpers, shared by the frame codec and the batch
/// payload format layered on top of it (notary/batch.h).
void put_u32le(std::string& out, std::uint32_t value);
std::uint32_t get_u32le(const char* p);

/// One decoded (or to-be-encoded) frame.
struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;

  friend bool operator==(const Frame&, const Frame&) = default;
};

/// Serializes a frame (header + payload + CRC32 trailer).
std::string encode_frame(FrameType type, std::string_view payload);
inline std::string encode_frame(const Frame& frame) {
  return encode_frame(frame.type, frame.payload);
}

/// Overwrites 4 bytes at `offset` with `value` (little-endian). The
/// counterpart of put_u32le for length fields patched after the fact.
void patch_u32le(std::string& out, std::size_t offset, std::uint32_t value);

/// Builds one frame in place at the tail of an output buffer, so response
/// bytes go straight into a connection's outbuf with no intermediate
/// string. Usage:
///
///   FrameWriter frame(out, FrameType::kCertInfo);
///   render_into(out);        // append payload bytes directly
///   frame.finish();          // patches the size field, appends the CRC
///
/// finish() must be called exactly once, before anything else appends to
/// `out`; it returns the frame's CRC32 (useful to cache alongside the
/// payload so a later replay skips the checksum pass entirely).
class FrameWriter {
 public:
  FrameWriter(std::string& out, FrameType type) : out_(out),
                                                  start_(out.size()) {
    out_.push_back(static_cast<char>(type));
    out_.append(4, '\0');  // size, patched by finish()
  }

  /// Offset in the output buffer where the payload begins.
  std::size_t payload_offset() const { return start_ + kFrameHeaderSize; }

  std::uint32_t finish();

 private:
  std::string& out_;
  std::size_t start_;
};

/// Appends a fully-encoded frame to `out` — byte-identical to
/// `out += encode_frame(type, payload)` without the temporary string.
/// `payload` must not alias `out` (appending may reallocate).
void encode_frame_into(std::string& out, FrameType type,
                       std::string_view payload);

/// Outcome of one FrameDecoder::next call.
enum class DecodeStatus {
  kNeedMore,   ///< no complete frame buffered yet
  kFrame,      ///< one frame decoded and removed from the buffer
  kMalformed,  ///< the stream is corrupt; the decoder is poisoned
};

/// Incremental frame parser over a connection's receive buffer. Feed bytes
/// as they arrive, then drain complete frames with next(). Any framing
/// violation (oversized length, CRC mismatch) poisons the decoder
/// permanently — after a bad frame the stream offsets are meaningless, so
/// the only safe recovery is closing the connection. An unknown type byte
/// is NOT a framing violation: if length and CRC check out the frame
/// decodes, and the receiver decides what to do with it.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  /// Appends raw bytes received from the peer.
  void feed(const char* data, std::size_t size);
  void feed(std::string_view data) { feed(data.data(), data.size()); }

  /// Attempts to decode the next frame from the buffered bytes.
  DecodeStatus next(Frame& out);

  /// Bytes buffered but not yet consumed by a decoded frame.
  std::size_t buffered() const { return buffer_.size() - consumed_; }

  /// True once a framing violation was seen.
  bool poisoned() const { return poisoned_; }

  /// Reason for the poisoning ("" while healthy).
  const std::string& error() const { return error_; }

 private:
  std::size_t max_payload_;
  std::string buffer_;
  std::size_t consumed_ = 0;  // decoded prefix awaiting compaction
  bool poisoned_ = false;
  std::string error_;
};

}  // namespace sm::netio
