#include "netio/frame.h"

#include <cstring>

#include "util/crc32.h"

namespace sm::netio {

void put_u32le(std::string& out, std::uint32_t value) {
  out.push_back(static_cast<char>(value & 0xff));
  out.push_back(static_cast<char>((value >> 8) & 0xff));
  out.push_back(static_cast<char>((value >> 16) & 0xff));
  out.push_back(static_cast<char>((value >> 24) & 0xff));
}

std::uint32_t get_u32le(const char* p) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

bool is_known_frame_type(std::uint8_t value) {
  switch (static_cast<FrameType>(value)) {
    case FrameType::kQuery:
    case FrameType::kStats:
    case FrameType::kPing:
    case FrameType::kSnapshot:
    case FrameType::kBatchQuery:
    case FrameType::kRevocationQuery:
    case FrameType::kMapUpdate:
    case FrameType::kSliceBegin:
    case FrameType::kSliceSegment:
    case FrameType::kSliceDone:
    case FrameType::kSliceSend:
    case FrameType::kSliceRetire:
    case FrameType::kCertInfo:
    case FrameType::kNotFound:
    case FrameType::kStatsText:
    case FrameType::kPong:
    case FrameType::kSnapshotInfo:
    case FrameType::kBatchInfo:
    case FrameType::kRevocationInfo:
    case FrameType::kMapInfo:
    case FrameType::kSliceInfo:
    case FrameType::kError:
      return true;
  }
  return false;
}

void patch_u32le(std::string& out, std::size_t offset, std::uint32_t value) {
  out[offset] = static_cast<char>(value & 0xff);
  out[offset + 1] = static_cast<char>((value >> 8) & 0xff);
  out[offset + 2] = static_cast<char>((value >> 16) & 0xff);
  out[offset + 3] = static_cast<char>((value >> 24) & 0xff);
}

std::uint32_t FrameWriter::finish() {
  const std::size_t payload = out_.size() - start_ - kFrameHeaderSize;
  patch_u32le(out_, start_ + 1, static_cast<std::uint32_t>(payload));
  const std::uint32_t crc =
      util::crc32(out_.data() + start_, out_.size() - start_);
  put_u32le(out_, crc);
  return crc;
}

void encode_frame_into(std::string& out, FrameType type,
                       std::string_view payload) {
  FrameWriter frame(out, type);
  out.append(payload);
  frame.finish();
}

std::string encode_frame(FrameType type, std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderSize + payload.size() + kFrameTrailerSize);
  out.push_back(static_cast<char>(type));
  put_u32le(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
  put_u32le(out, util::crc32(out.data(), out.size()));
  return out;
}

void FrameDecoder::feed(const char* data, std::size_t size) {
  if (poisoned_) return;  // the connection is doomed; don't buffer more
  // Compact lazily: only when the decoded prefix dominates the buffer.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, size);
}

DecodeStatus FrameDecoder::next(Frame& out) {
  if (poisoned_) return DecodeStatus::kMalformed;
  const std::size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderSize) return DecodeStatus::kNeedMore;
  const char* frame = buffer_.data() + consumed_;

  // The type byte is deliberately NOT validated here: a frame whose length
  // and CRC check out is structurally sound even when the type is from a
  // protocol revision this decoder predates, and handlers answer such
  // frames with kError while the connection stays healthy (forward
  // compatibility). Garbage streams are still caught — a random type byte
  // comes with a random length (caught below) or a broken CRC, since the
  // checksum covers the type byte.
  const std::uint8_t type = static_cast<std::uint8_t>(frame[0]);
  const std::uint32_t size = get_u32le(frame + 1);
  if (size > max_payload_) {
    poisoned_ = true;
    error_ = "frame payload exceeds limit";
    return DecodeStatus::kMalformed;
  }
  const std::size_t total = kFrameHeaderSize + size + kFrameTrailerSize;
  if (available < total) return DecodeStatus::kNeedMore;

  const std::uint32_t expected = get_u32le(frame + kFrameHeaderSize + size);
  const std::uint32_t actual =
      util::crc32(frame, kFrameHeaderSize + size);
  if (expected != actual) {
    poisoned_ = true;
    error_ = "frame checksum mismatch";
    return DecodeStatus::kMalformed;
  }

  out.type = static_cast<FrameType>(type);
  out.payload.assign(frame + kFrameHeaderSize, size);
  consumed_ += total;
  return DecodeStatus::kFrame;
}

}  // namespace sm::netio
