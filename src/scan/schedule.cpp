#include "scan/schedule.h"

#include <algorithm>
#include <set>

namespace sm::scan {

std::string to_string(Campaign campaign) {
  return campaign == Campaign::kUMich ? "umich" : "rapid7";
}

std::vector<ScanEvent> make_paper_schedule(const ScheduleConfig& config,
                                           util::Rng& rng) {
  std::vector<ScanEvent> events;
  const auto day_start = [&](util::UnixTime day) {
    // 02:00 UTC + up to 30 min jitter.
    return day + 2 * 3600 + static_cast<std::int64_t>(rng.below(1800));
  };

  // --- UMich-like: irregular cadence -------------------------------------
  {
    util::UnixTime day = config.umich_start;
    const std::int64_t span_days =
        (config.umich_end - config.umich_start) / util::kSecondsPerDay;
    // Position of the 42-day daily streak, somewhere in the middle.
    const std::int64_t streak_begin = span_days / 3;
    const std::int64_t streak_days =
        std::max<std::int64_t>(2, static_cast<std::int64_t>(42 * config.scale));
    std::int64_t elapsed = 0;
    while (day <= config.umich_end) {
      events.push_back(ScanEvent{Campaign::kUMich, day_start(day)});
      std::int64_t gap_days;
      if (elapsed >= streak_begin && elapsed < streak_begin + streak_days) {
        gap_days = 1;  // the daily-scan streak
      } else if (rng.chance(0.04)) {
        gap_days = rng.range(14, 24);  // occasional long quiet gap
      } else {
        // Mostly 2-6 day gaps; mean lands near the paper's 3.83 days.
        gap_days = rng.range(2, 6);
      }
      // Scale the cadence: larger gaps when scale < 1 so the scan count
      // shrinks proportionally over the same span.
      gap_days = std::max<std::int64_t>(
          1, static_cast<std::int64_t>(
                 static_cast<double>(gap_days) / config.scale + 0.5));
      day += gap_days * util::kSecondsPerDay;
      elapsed += gap_days;
    }
  }

  // --- Rapid7-like: strict weekly ------------------------------------------
  {
    const std::int64_t week = 7 * util::kSecondsPerDay;
    const std::int64_t gap = std::max<std::int64_t>(
        util::kSecondsPerDay,
        static_cast<std::int64_t>(static_cast<double>(week) / config.scale));
    for (util::UnixTime day = config.rapid7_start; day <= config.rapid7_end;
         day += gap) {
      events.push_back(ScanEvent{Campaign::kRapid7, day_start(day)});
    }
  }

  // Guarantee at least one dual-scan day (the paper had eight): when the
  // generated cadences never coincide, add a UMich scan on the first
  // Rapid7 day inside the UMich window.
  if (dual_scan_days(events).empty()) {
    for (const ScanEvent& event : events) {
      if (event.campaign != Campaign::kRapid7) continue;
      if (event.start > config.umich_end) break;
      const util::UnixTime day =
          (event.start / util::kSecondsPerDay) * util::kSecondsPerDay;
      events.push_back(ScanEvent{Campaign::kUMich, day_start(day)});
      break;
    }
  }

  std::sort(events.begin(), events.end(),
            [](const ScanEvent& a, const ScanEvent& b) {
              return a.start < b.start;
            });
  return events;
}

std::vector<util::UnixTime> dual_scan_days(
    const std::vector<ScanEvent>& events) {
  std::set<util::UnixTime> umich_days, rapid7_days;
  for (const ScanEvent& event : events) {
    const util::UnixTime day =
        (event.start / util::kSecondsPerDay) * util::kSecondsPerDay;
    (event.campaign == Campaign::kUMich ? umich_days : rapid7_days)
        .insert(day);
  }
  std::vector<util::UnixTime> out;
  std::set_intersection(umich_days.begin(), umich_days.end(),
                        rapid7_days.begin(), rapid7_days.end(),
                        std::back_inserter(out));
  return out;
}

}  // namespace sm::scan
