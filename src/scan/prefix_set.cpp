#include "scan/prefix_set.h"

namespace sm::scan {

void PrefixSet::add(const net::Prefix& prefix) { table_.announce(prefix, 1); }

bool PrefixSet::covers(net::Ipv4Address ip) const {
  return table_.lookup(ip).has_value();
}

std::vector<net::Prefix> PrefixSet::prefixes() const {
  std::vector<net::Prefix> out;
  for (const auto& [prefix, asn] : table_.entries()) out.push_back(prefix);
  return out;
}

}  // namespace sm::scan
