// ScanArchive — the dataset container: an interned table of unique
// certificates plus, per scan, the (certificate, IP) observations. This is
// the in-memory analog of the paper's 222-scan corpus.
//
// Observations also carry the *true* device id assigned by the simulator.
// The paper had no such ground truth; the analysis layer never uses it for
// linking, only for the precision/recall scoring the paper lists as future
// work.
#pragma once

#include <cstdint>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "scan/cert_record.h"
#include "scan/schedule.h"

namespace sm::scan {

/// Index of a unique certificate within the archive.
using CertId = std::uint32_t;

/// Ground-truth device identifier (simulator-assigned).
using DeviceId = std::uint32_t;

/// Sentinel for "no known device".
inline constexpr DeviceId kNoDevice = 0xffffffff;

/// One host observation within one scan.
struct Observation {
  CertId cert = 0;
  std::uint32_t ip = 0;
  DeviceId device = kNoDevice;  ///< ground truth only; not a linking input
};

/// One completed scan: its metadata and all observations.
struct ScanData {
  ScanEvent event;
  std::vector<Observation> observations;
};

/// The full dataset.
class ScanArchive {
 public:
  /// Interns a certificate record, returning its stable id. Records with a
  /// previously-seen fingerprint are deduplicated.
  CertId intern(const CertRecord& record);
  CertId intern(CertRecord&& record);

  /// Looks up an interned certificate by fingerprint; returns false when
  /// unknown.
  bool find(const CertFingerprint& fingerprint, CertId& out) const;

  /// Starts a new scan; observations are appended to the returned ScanData
  /// via add_observation. Scans must be begun in chronological order.
  std::size_t begin_scan(const ScanEvent& event);

  /// Appends one observation to scan `scan_index`.
  void add_observation(std::size_t scan_index, CertId cert, std::uint32_t ip,
                       DeviceId device);

  /// Appends a fully-built scan (event + observations) in one move — the
  /// bulk path the parallel archive loader uses. Same chronological
  /// requirement as begin_scan. Returns the new scan's index.
  std::size_t add_scan(ScanData&& scan);

  /// Pre-sizes the certificate table (a load-time optimization).
  void reserve_certs(std::size_t n);

  const std::vector<CertRecord>& certs() const { return certs_; }
  const std::vector<ScanData>& scans() const { return scans_; }

  const CertRecord& cert(CertId id) const { return certs_[id]; }

  /// Total observations across all scans (O(1): maintained as a running
  /// counter by add_observation/add_scan — this is on hot stat paths).
  std::size_t observation_count() const { return observation_count_; }

 private:
  std::vector<CertRecord> certs_;
  std::unordered_map<CertFingerprint, CertId, FingerprintHash> by_fingerprint_;
  std::vector<ScanData> scans_;
  std::size_t observation_count_ = 0;
};

/// Per-certificate lifetime summary over an archive: the scan-index range
/// and observation counts the linking methodology consumes.
struct CertLifetime {
  std::uint32_t first_scan = 0;  ///< index of first scan observed
  std::uint32_t last_scan = 0;   ///< index of last scan observed
  std::uint32_t scans_seen = 0;  ///< number of scans with >= 1 observation

  /// Inclusive lifetime in days given the scan start times, computed the
  /// paper's way: 1 day when seen once; (last - first) + 1 day otherwise.
  double days(const std::vector<ScanData>& scans) const;
};

/// Computes lifetimes for every certificate in the archive ([] = cert id).
std::vector<CertLifetime> compute_lifetimes(const ScanArchive& archive);

}  // namespace sm::scan
