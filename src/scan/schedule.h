// Scan campaign schedules mirroring the paper's two data sources:
//
//  * "UMich-like": 156 scans, 2012-06-10 .. 2014-01-29, irregular cadence
//    (mean gap 3.83 days) including a 42-day run of daily scans and quiet
//    gaps of up to 24 days;
//  * "Rapid7-like": 74 scans, 2013-10-30 .. 2015-03-30, almost always
//    exactly seven days apart;
//  * eight days on which both campaigns scan.
//
// A scale factor shrinks the schedule proportionally for fast tests/benches
// while preserving its shape.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/datetime.h"
#include "util/prng.h"

namespace sm::scan {

/// Which data source a scan belongs to.
enum class Campaign : std::uint8_t {
  kUMich = 0,
  kRapid7 = 1,
};

/// Display name ("umich" / "rapid7").
std::string to_string(Campaign campaign);

/// One planned full-IPv4 scan.
struct ScanEvent {
  Campaign campaign = Campaign::kUMich;
  util::UnixTime start = 0;
  std::int64_t duration_seconds = 10 * 3600;  ///< paper: up to 10 hours

  friend bool operator==(const ScanEvent&, const ScanEvent&) = default;
};

/// Parameters for schedule generation.
struct ScheduleConfig {
  /// Scales the number of scans in both campaigns (1.0 = the paper's 156+74
  /// scans minus overlap handling; 0.25 = a quarter of each).
  double scale = 1.0;
  util::UnixTime umich_start = util::make_date(2012, 6, 10);
  util::UnixTime umich_end = util::make_date(2014, 1, 29);
  util::UnixTime rapid7_start = util::make_date(2013, 10, 30);
  util::UnixTime rapid7_end = util::make_date(2015, 3, 30);
};

/// Generates both campaigns' scan events, sorted by start time. The UMich
/// cadence is drawn from `rng` (irregular, with a daily streak and long
/// gaps); the Rapid7 cadence is deterministic weekly. Scans start at
/// 02:00 UTC plus small jitter.
std::vector<ScanEvent> make_paper_schedule(const ScheduleConfig& config,
                                           util::Rng& rng);

/// The calendar days (midnight UTC) on which both campaigns have a scan.
std::vector<util::UnixTime> dual_scan_days(const std::vector<ScanEvent>& events);

}  // namespace sm::scan
