// A set of CIDR prefixes with covering-prefix membership tests — used for
// the per-campaign scan blacklists behind the paper's Figure 1 dataset
// discrepancy.
#pragma once

#include <vector>

#include "net/route_table.h"

namespace sm::scan {

/// A prefix set; `covers(ip)` is true when any member prefix contains `ip`.
class PrefixSet {
 public:
  /// Adds a prefix to the set.
  void add(const net::Prefix& prefix);

  /// True when some member prefix contains `ip`.
  bool covers(net::Ipv4Address ip) const;

  /// All member prefixes.
  std::vector<net::Prefix> prefixes() const;

  std::size_t size() const { return table_.size(); }
  bool empty() const { return table_.size() == 0; }

 private:
  net::RouteTable table_;  // membership encoded as announcements
};

}  // namespace sm::scan
