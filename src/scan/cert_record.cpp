#include "scan/cert_record.h"

#include <algorithm>

#include "util/hex.h"

namespace sm::scan {

std::string CertRecord::san_joined() const {
  if (san.empty()) return {};
  std::vector<std::string> sorted = san;
  std::sort(sorted.begin(), sorted.end());
  std::string out;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i) out.push_back('|');
    out += sorted[i];
  }
  return out;
}

CertFingerprint truncate_fingerprint(const util::Bytes& sha256) {
  CertFingerprint out{};
  std::copy_n(sha256.begin(),
              std::min(out.size(), sha256.size()), out.begin());
  return out;
}

KeyFingerprint truncate_key_fingerprint(const util::Bytes& sha256) {
  KeyFingerprint out = 0;
  for (std::size_t i = 0; i < 8 && i < sha256.size(); ++i) {
    out = (out << 8) | sha256[i];
  }
  return out;
}

CertRecord make_cert_record(const x509::Certificate& cert,
                            const pki::ValidationResult& validation) {
  CertRecord rec;
  rec.fingerprint = truncate_fingerprint(cert.fingerprint_sha256());
  rec.key_fingerprint = truncate_key_fingerprint(cert.spki.fingerprint());
  rec.subject_cn = cert.subject.common_name();
  rec.issuer_cn = cert.issuer.common_name();
  rec.issuer_dn = cert.issuer.to_string();
  rec.serial_hex = cert.serial.to_hex();
  rec.not_before = cert.validity.not_before;
  rec.not_after = cert.validity.not_after;
  for (const x509::GeneralName& name : cert.subject_alt_names()) {
    rec.san.push_back(name.to_string());
  }
  if (const auto aki = cert.authority_key_id()) {
    rec.aki_hex = util::hex_encode(*aki);
  }
  const auto crls = cert.crl_distribution_points();
  if (!crls.empty()) rec.crl_url = crls.front();
  const auto aia = cert.authority_info_access();
  if (!aia.ca_issuers.empty()) rec.aia_url = aia.ca_issuers.front();
  if (!aia.ocsp.empty()) rec.ocsp_url = aia.ocsp.front();
  const auto policies = cert.policy_oids();
  if (!policies.empty()) rec.policy_oid = policies.front().to_string();
  rec.raw_version = static_cast<std::int32_t>(cert.raw_version);
  const auto bc = cert.basic_constraints();
  rec.is_ca = bc.has_value() && bc->is_ca;
  rec.valid = validation.valid;
  rec.transvalid = validation.transvalid;
  rec.invalid_reason = validation.reason;
  return rec;
}

}  // namespace sm::scan
