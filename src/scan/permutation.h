// The scan-order model: a keyed bijection over the 32-bit address space,
// standing in for ZMap's random-order scanning (multiplicative-group
// iteration in the real tool; a balanced Feistel network here — both are
// keyed bijections of the IPv4 space).
//
// Having the *inverse* permutation is what makes the simulator efficient:
// instead of iterating all 2^32 addresses per scan, the position of a live
// IP in the scan order — and hence its probe time — is computed in O(1).
#pragma once

#include <cstdint>

#include "net/ipv4.h"
#include "util/datetime.h"

namespace sm::scan {

/// A keyed bijection of the 32-bit integers (6-round balanced Feistel).
class AddressPermutation {
 public:
  /// Creates the permutation for a scan key (each scan uses a fresh key, as
  /// ZMap seeds each run independently).
  explicit AddressPermutation(std::uint64_t key);

  /// Maps scan-order index -> address.
  std::uint32_t forward(std::uint32_t index) const;

  /// Maps address -> scan-order index (inverse of forward()).
  std::uint32_t inverse(std::uint32_t address) const;

 private:
  static constexpr int kRounds = 6;
  std::uint32_t round_keys_[kRounds];
};

/// The instant within a scan at which `ip` is probed: scans start at
/// `start` and sweep the whole space in `duration_seconds` (the paper cites
/// up to 10 hours for a full IPv4 scan), probing addresses in permutation
/// order at a uniform rate.
util::UnixTime probe_time(const AddressPermutation& perm, net::Ipv4Address ip,
                          util::UnixTime start, std::int64_t duration_seconds);

}  // namespace sm::scan
