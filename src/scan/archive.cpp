#include "scan/archive.h"

#include <stdexcept>
#include <utility>

namespace sm::scan {

CertId ScanArchive::intern(const CertRecord& record) {
  const auto it = by_fingerprint_.find(record.fingerprint);
  if (it != by_fingerprint_.end()) return it->second;
  const CertId id = static_cast<CertId>(certs_.size());
  by_fingerprint_.emplace(record.fingerprint, id);
  certs_.push_back(record);
  return id;
}

CertId ScanArchive::intern(CertRecord&& record) {
  const auto it = by_fingerprint_.find(record.fingerprint);
  if (it != by_fingerprint_.end()) return it->second;
  const CertId id = static_cast<CertId>(certs_.size());
  by_fingerprint_.emplace(record.fingerprint, id);
  certs_.push_back(std::move(record));
  return id;
}

bool ScanArchive::find(const CertFingerprint& fingerprint, CertId& out) const {
  const auto it = by_fingerprint_.find(fingerprint);
  if (it == by_fingerprint_.end()) return false;
  out = it->second;
  return true;
}

std::size_t ScanArchive::begin_scan(const ScanEvent& event) {
  if (!scans_.empty() && event.start < scans_.back().event.start) {
    throw std::logic_error("scans must be appended chronologically");
  }
  scans_.push_back(ScanData{event, {}});
  return scans_.size() - 1;
}

void ScanArchive::add_observation(std::size_t scan_index, CertId cert,
                                  std::uint32_t ip, DeviceId device) {
  scans_.at(scan_index).observations.push_back(Observation{cert, ip, device});
  ++observation_count_;
}

std::size_t ScanArchive::add_scan(ScanData&& scan) {
  if (!scans_.empty() && scan.event.start < scans_.back().event.start) {
    throw std::logic_error("scans must be appended chronologically");
  }
  observation_count_ += scan.observations.size();
  scans_.push_back(std::move(scan));
  return scans_.size() - 1;
}

void ScanArchive::reserve_certs(std::size_t n) {
  certs_.reserve(n);
  by_fingerprint_.reserve(n);
}

double CertLifetime::days(const std::vector<ScanData>& scans) const {
  if (scans_seen == 0) return 0;
  if (first_scan == last_scan) return 1;
  const double seconds = static_cast<double>(scans[last_scan].event.start -
                                             scans[first_scan].event.start);
  return seconds / static_cast<double>(util::kSecondsPerDay) + 1.0;
}

std::vector<CertLifetime> compute_lifetimes(const ScanArchive& archive) {
  std::vector<CertLifetime> out(archive.certs().size());
  std::vector<bool> seen(archive.certs().size(), false);
  const auto& scans = archive.scans();
  for (std::uint32_t scan_index = 0; scan_index < scans.size(); ++scan_index) {
    // A certificate may appear several times in one scan (multiple IPs);
    // count the scan once via a per-scan first-touch check on last_scan.
    for (const Observation& obs : scans[scan_index].observations) {
      CertLifetime& life = out[obs.cert];
      if (!seen[obs.cert]) {
        seen[obs.cert] = true;
        life.first_scan = scan_index;
        life.last_scan = scan_index;
        life.scans_seen = 1;
      } else if (life.last_scan != scan_index) {
        life.last_scan = scan_index;
        ++life.scans_seen;
      }
    }
  }
  return out;
}

}  // namespace sm::scan
