// ScanArchive persistence:
//
//  * a compact binary container ("SMAR") for saving/reloading archives, so
//    an expensive simulation or a parsed real-world scan corpus is paid for
//    once. Two on-disk revisions exist:
//      - v1 (legacy): a single unframed stream with no checksums. Still
//        readable; new archives are not written in it unless asked.
//      - v2 (default): per-section frames — a header, the certificate table
//        sharded into fixed-size chunks, one frame per scan, and an end
//        marker — each carrying a CRC32 of its payload, so truncation,
//        bit rot, and trailing garbage are detected at load time. Frames
//        are serialized/deserialized in parallel on the shared
//        util::ThreadPool; the bytes written and the archive loaded are
//        bit-identical for every thread count.
//  * a streaming visitor (ArchiveReader) that walks certificates and scans
//    one record at a time without materializing the whole ScanArchive;
//  * a TSV interchange format so real scan data (e.g. parsed scans.io
//    snapshots) can be fed to the analysis/linking/tracking pipeline, and
//    simulated data can be exported to external tooling.
//
// All formats round-trip every field the pipeline consumes, including
// hostile string contents (tabs, newlines, '%', '|' inside SAN entries).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>

#include "scan/archive.h"

namespace sm::scan {

/// On-disk revisions of the binary "SMAR" container.
enum class ArchiveVersion : std::uint32_t {
  kV1 = 1,  ///< legacy: unframed, no checksums
  kV2 = 2,  ///< framed, CRC32 per section, sharded, end marker
};

/// Extra detail a load can report beyond success/failure.
struct ArchiveLoadReport {
  std::uint32_t version = 0;    ///< format version encountered (0 = none)
  bool trailing_bytes = false;  ///< the stream continued past the archive
};

/// Serializes an archive to the binary "SMAR" format. Returns false — with
/// the stream possibly part-written but never silently truncated counts —
/// when the archive exceeds a format limit (certificate/scan/observation/
/// SAN counts or string lengths) or the stream fails.
bool save_archive(const ScanArchive& archive, std::ostream& out,
                  ArchiveVersion version = ArchiveVersion::kV2);

/// Deserializes a binary archive (either version, self-identified by its
/// header). Returns nullopt on malformed input — bad magic, unsupported
/// version, truncation, checksum mismatch, out-of-range indices,
/// non-chronological scans — without crashing or over-allocating. Reads
/// exactly the archive's bytes, so an archive embedded in a larger stream
/// (see simworld/world_io.h) leaves the remainder untouched. When `report`
/// is non-null, it receives the version and — by peeking one byte past the
/// end, so don't combine with embedded use — whether trailing bytes follow.
std::optional<ScanArchive> load_archive(std::istream& in,
                                        ArchiveLoadReport* report = nullptr);

/// Convenience: save to / load from a file path. A file must contain
/// exactly one archive, so load rejects trailing bytes (for v1, which has
/// no end marker, this is the only trailing-garbage detection). Load
/// returns nullopt when the file is missing or malformed; save returns
/// false on I/O failure or format-limit overflow.
bool save_archive_file(const ScanArchive& archive, const std::string& path,
                       ArchiveVersion version = ArchiveVersion::kV2);
std::optional<ScanArchive> load_archive_file(const std::string& path);

/// Streams an archive record-by-record without building a ScanArchive —
/// the low-memory path for analyses and `sm_survey stat` over corpora that
/// should not be materialized whole. The underlying stream is consumed
/// sequentially, so visit certificates (optional) before scans:
///
///   ArchiveReader reader(in);
///   reader.for_each_cert([&](CertId id, const CertRecord& cert) { ... });
///   reader.for_each_scan([&](const ScanData& scan) { ... });
///
/// Every record is validated exactly as load_archive would (checksums,
/// bounds, ordering); any failure puts the reader in a sticky error state.
class ArchiveReader {
 public:
  using CertFn = std::function<void(CertId, const CertRecord&)>;
  using ScanFn = std::function<void(const ScanData&)>;

  /// Reads and validates the archive header. On failure ok() is false.
  explicit ArchiveReader(std::istream& in);

  /// True until the header or any streamed section fails to parse.
  bool ok() const { return state_ != State::kError; }
  std::uint32_t version() const { return version_; }

  /// Total unique certificates (known from the header in both versions).
  std::uint64_t cert_count() const { return cert_count_; }

  /// Total scans: known up front for v2; for v1 only once the certificate
  /// section has been consumed (0 before that).
  std::uint64_t scan_count() const { return scan_count_; }

  /// Streams every certificate in id order. Returns false on corrupt
  /// input or if the certificate section was already consumed.
  bool for_each_cert(const CertFn& fn);

  /// Streams every scan in order. If for_each_cert was not called, the
  /// certificate section is consumed (checksummed but unparsed for v2)
  /// first. Verifies the v2 end marker. Returns false on corrupt input or
  /// if the scan section was already consumed.
  bool for_each_scan(const ScanFn& fn);

  /// True once every section (and the v2 end marker) was consumed and
  /// verified.
  bool finished() const { return state_ == State::kDone; }

 private:
  enum class State { kError, kCerts, kScans, kDone };

  bool skip_certs();

  std::istream& in_;
  State state_ = State::kError;
  std::uint32_t version_ = 0;
  std::uint64_t cert_count_ = 0;
  std::uint64_t scan_count_ = 0;
  std::uint64_t obs_count_ = 0;   // v2 header's claimed total observations
  std::uint64_t cert_chunk_ = 0;  // v2 certificates per cert frame
};

/// Writes the archive as two TSV sections:
///   #certs <tab-separated cert rows>
///   #observations <scan_index, campaign, scan_start, cert_index, ip, device>
/// Strings are percent-escaped for tabs/newlines/percent signs; SAN list
/// entries additionally escape '|' and each entry is terminated by '|', so
/// arbitrary entry contents (and empty entries) round-trip losslessly.
void export_tsv(const ScanArchive& archive, std::ostream& out);

/// Parses the TSV format written by export_tsv (current or legacy SAN
/// encoding). Returns nullopt on malformed input.
std::optional<ScanArchive> import_tsv(std::istream& in);

}  // namespace sm::scan
