// ScanArchive persistence:
//
//  * a compact binary format ("SMAR") for saving/reloading archives, so an
//    expensive simulation or a parsed real-world scan corpus is paid for
//    once;
//  * a TSV interchange format so real scan data (e.g. parsed scans.io
//    snapshots) can be fed to the analysis/linking/tracking pipeline, and
//    simulated data can be exported to external tooling.
//
// Both formats round-trip every field the pipeline consumes.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "scan/archive.h"

namespace sm::scan {

/// Serializes an archive to the binary "SMAR" format.
void save_archive(const ScanArchive& archive, std::ostream& out);

/// Deserializes a binary archive. Returns nullopt on malformed input
/// (bad magic, unsupported version, truncation, out-of-range indices).
std::optional<ScanArchive> load_archive(std::istream& in);

/// Convenience: save to / load from a file path. Load returns nullopt when
/// the file is missing or malformed; save returns false on I/O failure.
bool save_archive_file(const ScanArchive& archive, const std::string& path);
std::optional<ScanArchive> load_archive_file(const std::string& path);

/// Writes the archive as two TSV sections:
///   #certs <tab-separated cert rows>
///   #observations <scan_index, campaign, scan_start, cert_index, ip, device>
/// Strings are percent-escaped for tabs/newlines/percent signs.
void export_tsv(const ScanArchive& archive, std::ostream& out);

/// Parses the TSV format written by export_tsv. Returns nullopt on
/// malformed input.
std::optional<ScanArchive> import_tsv(std::istream& in);

}  // namespace sm::scan
