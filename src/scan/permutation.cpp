#include "scan/permutation.h"

#include "util/prng.h"

namespace sm::scan {

namespace {

// Round function: a small integer mixer (xorshift-multiply) of the 16-bit
// half and the round key; only the low 16 bits of the result are used.
std::uint16_t feistel_f(std::uint16_t half, std::uint32_t round_key) {
  std::uint32_t x = half ^ round_key;
  x *= 0x85ebca6b;
  x ^= x >> 13;
  x *= 0xc2b2ae35;
  x ^= x >> 16;
  return static_cast<std::uint16_t>(x);
}

}  // namespace

AddressPermutation::AddressPermutation(std::uint64_t key) {
  util::SplitMix64 sm(key);
  for (auto& rk : round_keys_) rk = static_cast<std::uint32_t>(sm.next());
}

std::uint32_t AddressPermutation::forward(std::uint32_t index) const {
  std::uint16_t left = static_cast<std::uint16_t>(index >> 16);
  std::uint16_t right = static_cast<std::uint16_t>(index);
  for (int round = 0; round < kRounds; ++round) {
    const std::uint16_t next_left = right;
    right = static_cast<std::uint16_t>(left ^ feistel_f(right, round_keys_[round]));
    left = next_left;
  }
  return (std::uint32_t{left} << 16) | right;
}

std::uint32_t AddressPermutation::inverse(std::uint32_t address) const {
  std::uint16_t left = static_cast<std::uint16_t>(address >> 16);
  std::uint16_t right = static_cast<std::uint16_t>(address);
  for (int round = kRounds - 1; round >= 0; --round) {
    const std::uint16_t prev_right = left;
    left = static_cast<std::uint16_t>(right ^ feistel_f(left, round_keys_[round]));
    right = prev_right;
  }
  return (std::uint32_t{left} << 16) | right;
}

util::UnixTime probe_time(const AddressPermutation& perm, net::Ipv4Address ip,
                          util::UnixTime start,
                          std::int64_t duration_seconds) {
  const std::uint32_t index = perm.inverse(ip.value());
  // Probe instant = start + duration * index / 2^32, in integer arithmetic.
  const auto offset = static_cast<std::int64_t>(
      (static_cast<unsigned __int128>(index) *
       static_cast<unsigned __int128>(duration_seconds)) >>
      32);
  return start + offset;
}

}  // namespace sm::scan
