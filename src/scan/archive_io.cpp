#include "scan/archive_io.h"

#include <algorithm>
#include <charconv>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

#include "util/crc32.h"
#include "util/thread_pool.h"

namespace sm::scan {

namespace {

constexpr char kMagic[4] = {'S', 'M', 'A', 'R'};

// Format limits shared by the writer and both loaders. The writer fails
// loudly on anything outside them (instead of silently truncating counts);
// the loaders reject before allocating, so a hostile or corrupted header
// cannot force a large allocation.
constexpr std::uint64_t kMaxStringBytes = 1u << 24;  // 16 MiB per string
constexpr std::uint64_t kMaxSanEntries = 1u << 16;
constexpr std::uint64_t kMaxCerts = 0xffffffffull;  // CertId is uint32
constexpr std::uint64_t kMaxScans = 1u << 20;
constexpr std::uint64_t kMaxFrameBytes = 1u << 30;  // 1 GiB per frame
constexpr std::uint64_t kMaxCertsPerFrame = 1u << 20;
constexpr std::uint64_t kCertsPerFrame = 8192;  // shard size we write
constexpr std::size_t kReadChunk = 1u << 20;    // incremental stream reads

constexpr std::size_t kObsBytes = 12;       // u32 cert + u32 ip + u32 device
constexpr std::size_t kScanHeaderBytes = 25;  // campaign + start + dur + count
constexpr std::uint64_t kMaxObsPerScan =
    (kMaxFrameBytes - kScanHeaderBytes) / kObsBytes;

// v2 frame types, in required stream order.
constexpr std::uint8_t kFrameHeader = 'H';
constexpr std::uint8_t kFrameCerts = 'C';
constexpr std::uint8_t kFrameScan = 'S';
constexpr std::uint8_t kFrameEnd = 'E';

// --- stream primitives -------------------------------------------------------

template <typename T>
void put(std::ostream& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
bool read_pod(std::istream& in, T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  return static_cast<std::size_t>(in.gcount()) == sizeof(value);
}

// Reads exactly `size` bytes into `out`, growing it incrementally so a
// hostile length claim cannot force a large allocation before the stream
// runs dry.
bool read_exact(std::istream& in, std::string& out, std::uint64_t size) {
  out.clear();
  while (size > 0) {
    const std::size_t step =
        static_cast<std::size_t>(std::min<std::uint64_t>(size, kReadChunk));
    const std::size_t old = out.size();
    out.resize(old + step);
    in.read(out.data() + old, static_cast<std::streamsize>(step));
    if (static_cast<std::size_t>(in.gcount()) != step) return false;
    size -= step;
  }
  return true;
}

// --- buffer (v2 frame payload) primitives ------------------------------------

template <typename T>
void put_buf(std::string& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.append(reinterpret_cast<const char*>(&value), sizeof(value));
}

void put_buf_string(std::string& out, const std::string& s) {
  put_buf<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

// A bounds-checked view over one frame payload.
struct Cursor {
  const char* p;
  const char* end;

  explicit Cursor(const std::string& buf)
      : p(buf.data()), end(buf.data() + buf.size()) {}

  std::size_t remaining() const { return static_cast<std::size_t>(end - p); }
  bool done() const { return p == end; }

  template <typename T>
  bool get(T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (remaining() < sizeof(T)) return false;
    std::memcpy(&value, p, sizeof(T));
    p += sizeof(T);
    return true;
  }

  bool get_bytes(void* out, std::size_t size) {
    if (remaining() < size) return false;
    std::memcpy(out, p, size);
    p += size;
    return true;
  }

  bool get_string(std::string& s) {
    std::uint32_t len = 0;
    if (!get(len)) return false;
    if (len > kMaxStringBytes || len > remaining()) return false;
    s.assign(p, len);
    p += len;
    return true;
  }
};

// The same record-reading interface over a raw stream (the v1 path).
struct StreamSource {
  std::istream& in;

  template <typename T>
  bool get(T& value) {
    return read_pod(in, value);
  }

  bool get_bytes(void* out, std::size_t size) {
    in.read(static_cast<char*>(out), static_cast<std::streamsize>(size));
    return static_cast<std::size_t>(in.gcount()) == size;
  }

  bool get_string(std::string& s) {
    std::uint32_t len = 0;
    if (!get(len) || len > kMaxStringBytes) return false;
    return read_exact(in, s, len);
  }
};

// --- certificate record (shared by v1 stream and v2 frames) ------------------

bool cert_within_limits(const CertRecord& cert) {
  if (cert.san.size() > kMaxSanEntries) return false;
  const auto fits = [](const std::string& s) {
    return s.size() <= kMaxStringBytes;
  };
  for (const std::string& san : cert.san) {
    if (!fits(san)) return false;
  }
  return fits(cert.subject_cn) && fits(cert.issuer_cn) &&
         fits(cert.issuer_dn) && fits(cert.serial_hex) && fits(cert.aki_hex) &&
         fits(cert.crl_url) && fits(cert.aia_url) && fits(cert.ocsp_url) &&
         fits(cert.policy_oid);
}

std::uint64_t serialized_cert_bytes(const CertRecord& cert) {
  const auto str = [](const std::string& s) {
    return 4 + static_cast<std::uint64_t>(s.size());
  };
  std::uint64_t n = cert.fingerprint.size() + sizeof(cert.key_fingerprint) +
                    sizeof(cert.not_before) + sizeof(cert.not_after) +
                    sizeof(std::uint32_t) /* san count */ +
                    sizeof(cert.raw_version) + 2 /* flags + reason */;
  n += str(cert.subject_cn) + str(cert.issuer_cn) + str(cert.issuer_dn) +
       str(cert.serial_hex) + str(cert.aki_hex) + str(cert.crl_url) +
       str(cert.aia_url) + str(cert.ocsp_url) + str(cert.policy_oid);
  for (const std::string& san : cert.san) n += str(san);
  return n;
}

// Serializes one record. The byte layout is shared by v1 (records
// concatenated directly in the stream) and v2 (records inside checksummed
// cert frames), which is what keeps the two writers byte-compatible at the
// record level.
void append_cert(std::string& out, const CertRecord& cert) {
  out.append(reinterpret_cast<const char*>(cert.fingerprint.data()),
             cert.fingerprint.size());
  put_buf(out, cert.key_fingerprint);
  put_buf_string(out, cert.subject_cn);
  put_buf_string(out, cert.issuer_cn);
  put_buf_string(out, cert.issuer_dn);
  put_buf_string(out, cert.serial_hex);
  put_buf(out, cert.not_before);
  put_buf(out, cert.not_after);
  put_buf<std::uint32_t>(out, static_cast<std::uint32_t>(cert.san.size()));
  for (const std::string& san : cert.san) put_buf_string(out, san);
  put_buf_string(out, cert.aki_hex);
  put_buf_string(out, cert.crl_url);
  put_buf_string(out, cert.aia_url);
  put_buf_string(out, cert.ocsp_url);
  put_buf_string(out, cert.policy_oid);
  put_buf(out, cert.raw_version);
  put_buf<std::uint8_t>(out, static_cast<std::uint8_t>(
                                 (cert.is_ca ? 1 : 0) | (cert.valid ? 2 : 0) |
                                 (cert.transvalid ? 4 : 0)));
  put_buf<std::uint8_t>(out, static_cast<std::uint8_t>(cert.invalid_reason));
}

template <typename Source>
bool read_cert(Source& src, CertRecord& cert) {
  std::uint32_t san_count = 0;
  std::uint8_t flags = 0, reason = 0;
  if (!src.get_bytes(cert.fingerprint.data(), cert.fingerprint.size()) ||
      !src.get(cert.key_fingerprint) || !src.get_string(cert.subject_cn) ||
      !src.get_string(cert.issuer_cn) || !src.get_string(cert.issuer_dn) ||
      !src.get_string(cert.serial_hex) || !src.get(cert.not_before) ||
      !src.get(cert.not_after) || !src.get(san_count)) {
    return false;
  }
  if (san_count > kMaxSanEntries) return false;
  cert.san.resize(san_count);
  for (std::string& san : cert.san) {
    if (!src.get_string(san)) return false;
  }
  if (!src.get_string(cert.aki_hex) || !src.get_string(cert.crl_url) ||
      !src.get_string(cert.aia_url) || !src.get_string(cert.ocsp_url) ||
      !src.get_string(cert.policy_oid) || !src.get(cert.raw_version) ||
      !src.get(flags) || !src.get(reason)) {
    return false;
  }
  if (flags > 7) return false;
  cert.is_ca = flags & 1;
  cert.valid = flags & 2;
  cert.transvalid = flags & 4;
  if (reason > static_cast<std::uint8_t>(pki::InvalidReason::kRevoked)) {
    return false;
  }
  cert.invalid_reason = static_cast<pki::InvalidReason>(reason);
  return true;
}

// --- v2 frames ---------------------------------------------------------------

struct RawFrame {
  std::uint8_t type = 0;
  std::string payload;
  std::uint32_t crc = 0;
};

// Reads one frame without verifying its checksum — verification runs in
// the (possibly parallel) parse stage.
bool read_frame(std::istream& in, RawFrame& frame) {
  std::uint64_t size = 0;
  if (!read_pod(in, frame.type) || !read_pod(in, size) || size > kMaxFrameBytes) {
    return false;
  }
  return read_exact(in, frame.payload, size) && read_pod(in, frame.crc);
}

bool frame_checksum_ok(const RawFrame& frame) {
  return util::crc32(frame.payload) == frame.crc;
}

void write_frame(std::ostream& out, std::uint8_t type,
                 const std::string& payload, std::uint32_t crc) {
  put(out, type);
  put<std::uint64_t>(out, payload.size());
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  put(out, crc);
}

void append_scan(std::string& out, const ScanData& scan) {
  put_buf<std::uint8_t>(out, static_cast<std::uint8_t>(scan.event.campaign));
  put_buf(out, scan.event.start);
  put_buf(out, scan.event.duration_seconds);
  put_buf<std::uint64_t>(out, scan.observations.size());
  for (const Observation& obs : scan.observations) {
    put_buf(out, obs.cert);
    put_buf(out, obs.ip);
    put_buf(out, obs.device);
  }
}

// Parses a whole cert frame; `expected` is the chunk size implied by the
// header. Requires exact payload consumption.
bool parse_cert_frame(const RawFrame& frame, std::uint64_t expected,
                      std::vector<CertRecord>& out) {
  if (!frame_checksum_ok(frame)) return false;
  Cursor cursor(frame.payload);
  out.clear();
  for (std::uint64_t i = 0; i < expected; ++i) {
    CertRecord cert;
    if (!read_cert(cursor, cert)) return false;
    out.push_back(std::move(cert));
  }
  return cursor.done();
}

// Parses one scan frame, validating campaign, observation bounds, and cert
// indices against `cert_count`.
bool parse_scan_frame(const RawFrame& frame, std::uint64_t cert_count,
                      ScanData& out) {
  if (!frame_checksum_ok(frame)) return false;
  Cursor cursor(frame.payload);
  std::uint8_t campaign = 0;
  std::uint64_t obs_count = 0;
  if (!cursor.get(campaign) || campaign > 1 || !cursor.get(out.event.start) ||
      !cursor.get(out.event.duration_seconds) || !cursor.get(obs_count)) {
    return false;
  }
  out.event.campaign = static_cast<Campaign>(campaign);
  if (obs_count > cursor.remaining() / kObsBytes) return false;
  out.observations.resize(obs_count);
  for (Observation& obs : out.observations) {
    if (!cursor.get(obs.cert) || !cursor.get(obs.ip) ||
        !cursor.get(obs.device)) {
      return false;
    }
    if (obs.cert >= cert_count) return false;
  }
  return cursor.done();
}

// --- v1 writer/loader --------------------------------------------------------

bool save_v1(const ScanArchive& archive, std::ostream& out) {
  const auto& certs = archive.certs();
  const auto& scans = archive.scans();
  if (certs.size() > kMaxCerts ||
      scans.size() > std::numeric_limits<std::uint32_t>::max()) {
    return false;
  }
  for (const CertRecord& cert : certs) {
    if (!cert_within_limits(cert)) return false;
  }
  for (const ScanData& scan : scans) {
    if (scan.observations.size() > std::numeric_limits<std::uint32_t>::max()) {
      return false;
    }
  }

  out.write(kMagic, sizeof(kMagic));
  put<std::uint32_t>(out, 1);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(certs.size()));
  std::string buf;
  for (const CertRecord& cert : certs) {
    buf.clear();
    append_cert(buf, cert);
    out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  }

  put<std::uint32_t>(out, static_cast<std::uint32_t>(scans.size()));
  for (const ScanData& scan : scans) {
    put<std::uint8_t>(out, static_cast<std::uint8_t>(scan.event.campaign));
    put(out, scan.event.start);
    put(out, scan.event.duration_seconds);
    put<std::uint32_t>(out,
                       static_cast<std::uint32_t>(scan.observations.size()));
    for (const Observation& obs : scan.observations) {
      put(out, obs.cert);
      put(out, obs.ip);
      put(out, obs.device);
    }
  }
  return out.good();
}

std::optional<ScanArchive> load_v1(std::istream& in) {
  ScanArchive archive;
  StreamSource src{in};
  std::uint32_t cert_count = 0;
  if (!read_pod(in, cert_count)) return std::nullopt;
  for (std::uint32_t i = 0; i < cert_count; ++i) {
    CertRecord cert;
    if (!read_cert(src, cert)) return std::nullopt;
    if (archive.intern(std::move(cert)) != i) return std::nullopt;  // dup fp
  }

  std::uint32_t scan_count = 0;
  if (!read_pod(in, scan_count)) return std::nullopt;
  util::UnixTime prev_start = std::numeric_limits<util::UnixTime>::min();
  for (std::uint32_t s = 0; s < scan_count; ++s) {
    std::uint8_t campaign = 0;
    ScanEvent event;
    std::uint32_t obs_count = 0;
    if (!read_pod(in, campaign) || campaign > 1 || !read_pod(in, event.start) ||
        !read_pod(in, event.duration_seconds) || !read_pod(in, obs_count)) {
      return std::nullopt;
    }
    if (event.start < prev_start) return std::nullopt;  // non-chronological
    prev_start = event.start;
    event.campaign = static_cast<Campaign>(campaign);
    const std::size_t scan_index = archive.begin_scan(event);
    for (std::uint32_t i = 0; i < obs_count; ++i) {
      Observation obs;
      if (!read_pod(in, obs.cert) || !read_pod(in, obs.ip) || !read_pod(in, obs.device)) {
        return std::nullopt;
      }
      if (obs.cert >= cert_count) return std::nullopt;
      archive.add_observation(scan_index, obs.cert, obs.ip, obs.device);
    }
  }
  return archive;
}

// --- v2 writer/loader --------------------------------------------------------

bool save_v2(const ScanArchive& archive, std::ostream& out) {
  const auto& certs = archive.certs();
  const auto& scans = archive.scans();
  if (certs.size() > kMaxCerts || scans.size() > kMaxScans) return false;
  const std::uint64_t n_chunks =
      (certs.size() + kCertsPerFrame - 1) / kCertsPerFrame;

  // Validate every limit (and pre-compute frame sizes) before writing a
  // single byte, so an over-limit archive fails loudly instead of leaving
  // a part-written file behind.
  std::vector<std::uint64_t> chunk_bytes(n_chunks, 0);
  for (std::size_t i = 0; i < certs.size(); ++i) {
    if (!cert_within_limits(certs[i])) return false;
    chunk_bytes[i / kCertsPerFrame] += serialized_cert_bytes(certs[i]);
  }
  for (const std::uint64_t bytes : chunk_bytes) {
    if (bytes > kMaxFrameBytes) return false;
  }
  for (const ScanData& scan : scans) {
    if (scan.observations.size() > kMaxObsPerScan) return false;
  }

  util::ThreadPool& pool = util::ThreadPool::global();

  // Shard serialization: cert chunks and scans each become one frame,
  // rendered into index-addressed buffers — bit-identical output for any
  // thread count, since only the schedule varies.
  std::vector<std::string> cert_bufs(n_chunks);
  std::vector<std::uint32_t> cert_crcs(n_chunks);
  pool.parallel_for(n_chunks, 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t f = begin; f < end; ++f) {
      const std::size_t lo = f * kCertsPerFrame;
      const std::size_t hi =
          std::min<std::size_t>(lo + kCertsPerFrame, certs.size());
      cert_bufs[f].reserve(chunk_bytes[f]);
      for (std::size_t i = lo; i < hi; ++i) append_cert(cert_bufs[f], certs[i]);
      cert_crcs[f] = util::crc32(cert_bufs[f]);
    }
  });

  std::vector<std::string> scan_bufs(scans.size());
  std::vector<std::uint32_t> scan_crcs(scans.size());
  pool.parallel_for(scans.size(), 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t s = begin; s < end; ++s) {
      append_scan(scan_bufs[s], scans[s]);
      scan_crcs[s] = util::crc32(scan_bufs[s]);
    }
  });

  out.write(kMagic, sizeof(kMagic));
  put<std::uint32_t>(out, 2);

  std::string header;
  put_buf<std::uint64_t>(header, certs.size());
  put_buf<std::uint64_t>(header, scans.size());
  put_buf<std::uint64_t>(header, archive.observation_count());
  put_buf<std::uint32_t>(header, static_cast<std::uint32_t>(kCertsPerFrame));
  write_frame(out, kFrameHeader, header, util::crc32(header));

  for (std::size_t f = 0; f < n_chunks; ++f) {
    write_frame(out, kFrameCerts, cert_bufs[f], cert_crcs[f]);
  }
  for (std::size_t s = 0; s < scans.size(); ++s) {
    write_frame(out, kFrameScan, scan_bufs[s], scan_crcs[s]);
  }

  std::string end_marker;
  put_buf<std::uint64_t>(end_marker, certs.size());
  put_buf<std::uint64_t>(end_marker, scans.size());
  put_buf<std::uint64_t>(end_marker, archive.observation_count());
  write_frame(out, kFrameEnd, end_marker, util::crc32(end_marker));
  return out.good();
}

struct HeaderV2 {
  std::uint64_t cert_count = 0;
  std::uint64_t scan_count = 0;
  std::uint64_t obs_count = 0;
  std::uint32_t cert_chunk = 0;
};

bool parse_header_v2(std::istream& in, HeaderV2& header) {
  RawFrame frame;
  if (!read_frame(in, frame) || frame.type != kFrameHeader ||
      !frame_checksum_ok(frame)) {
    return false;
  }
  Cursor cursor(frame.payload);
  if (!cursor.get(header.cert_count) || !cursor.get(header.scan_count) ||
      !cursor.get(header.obs_count) || !cursor.get(header.cert_chunk) ||
      !cursor.done()) {
    return false;
  }
  return header.cert_count <= kMaxCerts && header.scan_count <= kMaxScans &&
         header.cert_chunk > 0 && header.cert_chunk <= kMaxCertsPerFrame;
}

bool parse_end_v2(const RawFrame& frame, const HeaderV2& header) {
  if (frame.type != kFrameEnd || !frame_checksum_ok(frame)) return false;
  Cursor cursor(frame.payload);
  std::uint64_t certs = 0, scans = 0, obs = 0;
  if (!cursor.get(certs) || !cursor.get(scans) || !cursor.get(obs) ||
      !cursor.done()) {
    return false;
  }
  return certs == header.cert_count && scans == header.scan_count &&
         obs == header.obs_count;
}

std::optional<ScanArchive> load_v2(std::istream& in) {
  HeaderV2 header;
  if (!parse_header_v2(in, header)) return std::nullopt;
  const std::uint64_t n_chunks =
      (header.cert_count + header.cert_chunk - 1) / header.cert_chunk;

  // Slurp the frames in stream order first (allocation grows only as real
  // bytes arrive), then verify + parse them in parallel.
  std::vector<RawFrame> cert_frames;
  for (std::uint64_t f = 0; f < n_chunks; ++f) {
    RawFrame frame;
    if (!read_frame(in, frame) || frame.type != kFrameCerts) {
      return std::nullopt;
    }
    cert_frames.push_back(std::move(frame));
  }
  std::vector<RawFrame> scan_frames;
  for (std::uint64_t s = 0; s < header.scan_count; ++s) {
    RawFrame frame;
    if (!read_frame(in, frame) || frame.type != kFrameScan) {
      return std::nullopt;
    }
    scan_frames.push_back(std::move(frame));
  }
  RawFrame end_frame;
  if (!read_frame(in, end_frame) || !parse_end_v2(end_frame, header)) {
    return std::nullopt;
  }

  util::ThreadPool& pool = util::ThreadPool::global();

  std::vector<std::vector<CertRecord>> parsed_certs(cert_frames.size());
  std::vector<std::uint8_t> cert_ok(cert_frames.size(), 0);
  pool.parallel_for(cert_frames.size(), 1,
                    [&](std::size_t begin, std::size_t end) {
                      for (std::size_t f = begin; f < end; ++f) {
                        const std::uint64_t lo = f * header.cert_chunk;
                        const std::uint64_t n = std::min<std::uint64_t>(
                            header.cert_chunk, header.cert_count - lo);
                        cert_ok[f] = parse_cert_frame(cert_frames[f], n,
                                                      parsed_certs[f]);
                      }
                    });
  for (const std::uint8_t ok : cert_ok) {
    if (!ok) return std::nullopt;
  }

  ScanArchive archive;
  archive.reserve_certs(static_cast<std::size_t>(header.cert_count));
  CertId next_id = 0;
  for (std::vector<CertRecord>& chunk : parsed_certs) {
    for (CertRecord& cert : chunk) {
      if (archive.intern(std::move(cert)) != next_id) {
        return std::nullopt;  // duplicate fingerprint
      }
      ++next_id;
    }
    chunk.clear();
    chunk.shrink_to_fit();
  }

  std::vector<ScanData> parsed_scans(scan_frames.size());
  std::vector<std::uint8_t> scan_ok(scan_frames.size(), 0);
  pool.parallel_for(scan_frames.size(), 1,
                    [&](std::size_t begin, std::size_t end) {
                      for (std::size_t s = begin; s < end; ++s) {
                        scan_ok[s] = parse_scan_frame(
                            scan_frames[s], header.cert_count, parsed_scans[s]);
                      }
                    });
  std::uint64_t total_obs = 0;
  for (std::size_t s = 0; s < parsed_scans.size(); ++s) {
    if (!scan_ok[s]) return std::nullopt;
    total_obs += parsed_scans[s].observations.size();
  }
  if (total_obs != header.obs_count) return std::nullopt;

  util::UnixTime prev_start = std::numeric_limits<util::UnixTime>::min();
  for (ScanData& scan : parsed_scans) {
    if (scan.event.start < prev_start) return std::nullopt;
    prev_start = scan.event.start;
    archive.add_scan(std::move(scan));
  }
  return archive;
}

// --- TSV escaping ------------------------------------------------------------

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\t':
        out += "%09";
        break;
      case '\n':
        out += "%0a";
        break;
      case '%':
        out += "%25";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

// SAN entries additionally escape the '|' join delimiter, so entry
// contents can never collide with the list encoding.
std::string escape_san_entry(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\t':
        out += "%09";
        break;
      case '\n':
        out += "%0a";
        break;
      case '%':
        out += "%25";
        break;
      case '|':
        out += "%7c";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::optional<std::string> unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') {
      out.push_back(s[i]);
      continue;
    }
    if (i + 2 >= s.size()) return std::nullopt;
    unsigned value = 0;
    const auto [ptr, ec] =
        std::from_chars(s.data() + i + 1, s.data() + i + 3, value, 16);
    if (ec != std::errc{} || ptr != s.data() + i + 3) return std::nullopt;
    out.push_back(static_cast<char>(value));
    i += 2;
  }
  return out;
}

std::vector<std::string> split_tabs(const std::string& line) {
  std::vector<std::string> fields;
  std::size_t pos = 0;
  for (;;) {
    const std::size_t tab = line.find('\t', pos);
    if (tab == std::string::npos) {
      fields.push_back(line.substr(pos));
      return fields;
    }
    fields.push_back(line.substr(pos, tab - pos));
    pos = tab + 1;
  }
}

// Splits the SAN column into still-escaped entries. Current exports
// terminate every entry with '|' (so empty entries and empty lists are
// distinguishable); legacy exports joined entries with '|' and no
// terminator, which the missing final '|' identifies.
std::vector<std::string> split_san_field(const std::string& field) {
  std::vector<std::string> entries;
  if (field.empty()) return entries;
  std::size_t pos = 0;
  for (;;) {
    const std::size_t bar = field.find('|', pos);
    if (bar == std::string::npos) {
      entries.push_back(field.substr(pos));  // legacy unterminated tail
      return entries;
    }
    entries.push_back(field.substr(pos, bar - pos));
    pos = bar + 1;
    if (pos == field.size()) return entries;  // terminated form
  }
}

template <typename T>
bool parse_int(const std::string& s, T& out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

}  // namespace

// --- public binary API -------------------------------------------------------

bool save_archive(const ScanArchive& archive, std::ostream& out,
                  ArchiveVersion version) {
  switch (version) {
    case ArchiveVersion::kV1:
      return save_v1(archive, out);
    case ArchiveVersion::kV2:
      return save_v2(archive, out);
  }
  return false;
}

std::optional<ScanArchive> load_archive(std::istream& in,
                                        ArchiveLoadReport* report) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (static_cast<std::size_t>(in.gcount()) != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return std::nullopt;
  }
  std::uint32_t version = 0;
  if (!read_pod(in, version)) return std::nullopt;
  if (report != nullptr) report->version = version;

  std::optional<ScanArchive> archive;
  if (version == 1) {
    archive = load_v1(in);
  } else if (version == 2) {
    archive = load_v2(in);
  } else {
    return std::nullopt;
  }
  if (archive && report != nullptr) {
    // Peeking consumes nothing but may set eofbit — only safe because a
    // caller asking for a report is not resuming reads on this stream.
    report->trailing_bytes = in.peek() != std::istream::traits_type::eof();
  }
  return archive;
}

bool save_archive_file(const ScanArchive& archive, const std::string& path,
                       ArchiveVersion version) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  return save_archive(archive, out, version) && out.good();
}

std::optional<ScanArchive> load_archive_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  ArchiveLoadReport report;
  auto archive = load_archive(in, &report);
  // A file holds exactly one archive; for v1 (no end marker) this is the
  // only place trailing garbage — e.g. a truncated concatenation — can be
  // detected at all.
  if (archive && report.trailing_bytes) return std::nullopt;
  return archive;
}

// --- streaming reader --------------------------------------------------------

ArchiveReader::ArchiveReader(std::istream& in) : in_(in) {
  char magic[4];
  in_.read(magic, sizeof(magic));
  if (static_cast<std::size_t>(in_.gcount()) != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return;
  }
  if (!read_pod(in_, version_)) return;
  if (version_ == 1) {
    std::uint32_t cert_count = 0;
    if (!read_pod(in_, cert_count)) return;
    cert_count_ = cert_count;
    state_ = State::kCerts;
  } else if (version_ == 2) {
    HeaderV2 header;
    if (!parse_header_v2(in_, header)) return;
    cert_count_ = header.cert_count;
    scan_count_ = header.scan_count;
    obs_count_ = header.obs_count;
    cert_chunk_ = header.cert_chunk;
    state_ = State::kCerts;
  }
}

bool ArchiveReader::for_each_cert(const CertFn& fn) {
  if (state_ != State::kCerts) return false;
  CertId id = 0;
  if (version_ == 1) {
    StreamSource src{in_};
    for (std::uint64_t i = 0; i < cert_count_; ++i) {
      CertRecord cert;
      if (!read_cert(src, cert)) {
        state_ = State::kError;
        return false;
      }
      if (fn) fn(id, cert);
      ++id;
    }
    std::uint32_t scan_count = 0;
    if (!read_pod(in_, scan_count)) {
      state_ = State::kError;
      return false;
    }
    scan_count_ = scan_count;
  } else {
    const std::uint64_t n_chunks =
        (cert_count_ + cert_chunk_ - 1) / cert_chunk_;
    std::vector<CertRecord> chunk;
    for (std::uint64_t f = 0; f < n_chunks; ++f) {
      RawFrame frame;
      const std::uint64_t lo = f * cert_chunk_;
      const std::uint64_t n =
          std::min<std::uint64_t>(cert_chunk_, cert_count_ - lo);
      if (!read_frame(in_, frame) || frame.type != kFrameCerts ||
          !parse_cert_frame(frame, n, chunk)) {
        state_ = State::kError;
        return false;
      }
      for (const CertRecord& cert : chunk) {
        if (fn) fn(id, cert);
        ++id;
      }
    }
  }
  state_ = State::kScans;
  return true;
}

bool ArchiveReader::skip_certs() {
  if (version_ == 1) {
    // v1 records are unframed, so skipping still means parsing.
    return for_each_cert(CertFn());
  }
  const std::uint64_t n_chunks = (cert_count_ + cert_chunk_ - 1) / cert_chunk_;
  for (std::uint64_t f = 0; f < n_chunks; ++f) {
    RawFrame frame;
    if (!read_frame(in_, frame) || frame.type != kFrameCerts ||
        !frame_checksum_ok(frame)) {
      state_ = State::kError;
      return false;
    }
  }
  state_ = State::kScans;
  return true;
}

bool ArchiveReader::for_each_scan(const ScanFn& fn) {
  if (state_ == State::kCerts && !skip_certs()) return false;
  if (state_ != State::kScans) return false;
  const auto fail = [&]() {
    state_ = State::kError;
    return false;
  };

  util::UnixTime prev_start = std::numeric_limits<util::UnixTime>::min();
  std::uint64_t total_obs = 0;
  if (version_ == 1) {
    for (std::uint64_t s = 0; s < scan_count_; ++s) {
      std::uint8_t campaign = 0;
      std::uint32_t obs_count = 0;
      ScanData scan;
      if (!read_pod(in_, campaign) || campaign > 1 || !read_pod(in_, scan.event.start) ||
          !read_pod(in_, scan.event.duration_seconds) || !read_pod(in_, obs_count)) {
        return fail();
      }
      if (scan.event.start < prev_start) return fail();
      prev_start = scan.event.start;
      scan.event.campaign = static_cast<Campaign>(campaign);
      scan.observations.resize(obs_count);
      for (Observation& obs : scan.observations) {
        if (!read_pod(in_, obs.cert) || !read_pod(in_, obs.ip) ||
            !read_pod(in_, obs.device) || obs.cert >= cert_count_) {
          return fail();
        }
      }
      total_obs += obs_count;
      if (fn) fn(scan);
    }
  } else {
    for (std::uint64_t s = 0; s < scan_count_; ++s) {
      RawFrame frame;
      ScanData scan;
      if (!read_frame(in_, frame) || frame.type != kFrameScan ||
          !parse_scan_frame(frame, cert_count_, scan)) {
        return fail();
      }
      if (scan.event.start < prev_start) return fail();
      prev_start = scan.event.start;
      total_obs += scan.observations.size();
      if (fn) fn(scan);
    }
    RawFrame end_frame;
    HeaderV2 header{cert_count_, scan_count_, obs_count_,
                    static_cast<std::uint32_t>(cert_chunk_)};
    if (!read_frame(in_, end_frame) || !parse_end_v2(end_frame, header) ||
        total_obs != obs_count_) {
      return fail();
    }
  }
  state_ = State::kDone;
  return true;
}

// --- TSV ---------------------------------------------------------------------

void export_tsv(const ScanArchive& archive, std::ostream& out) {
  out << "#certs\tfingerprint\tkey_fp\tsubject_cn\tissuer_cn\tissuer_dn\t"
         "serial\tnot_before\tnot_after\tsan\taki\tcrl\taia\tocsp\toid\t"
         "version\tis_ca\tvalid\ttransvalid\treason\n";
  for (const CertRecord& cert : archive.certs()) {
    std::string fp_hex;
    for (const std::uint8_t b : cert.fingerprint) {
      static constexpr char kDigits[] = "0123456789abcdef";
      fp_hex.push_back(kDigits[b >> 4]);
      fp_hex.push_back(kDigits[b & 0xf]);
    }
    // Each SAN entry is escaped individually (including '|') and
    // '|'-terminated, so hostile entry contents and empty entries both
    // round-trip; the column needs no further escaping.
    std::string san_joined;
    for (const std::string& san : cert.san) {
      san_joined += escape_san_entry(san);
      san_joined.push_back('|');
    }
    out << "C\t" << fp_hex << '\t' << cert.key_fingerprint << '\t'
        << escape(cert.subject_cn) << '\t' << escape(cert.issuer_cn) << '\t'
        << escape(cert.issuer_dn) << '\t' << escape(cert.serial_hex) << '\t'
        << cert.not_before << '\t' << cert.not_after << '\t'
        << san_joined << '\t' << escape(cert.aki_hex) << '\t'
        << escape(cert.crl_url) << '\t' << escape(cert.aia_url) << '\t'
        << escape(cert.ocsp_url) << '\t' << escape(cert.policy_oid) << '\t'
        << cert.raw_version << '\t' << (cert.is_ca ? 1 : 0) << '\t'
        << (cert.valid ? 1 : 0) << '\t' << (cert.transvalid ? 1 : 0) << '\t'
        << static_cast<int>(cert.invalid_reason) << '\n';
  }
  out << "#observations\tscan\tcampaign\tstart\tduration\tcert\tip\tdevice\n";
  for (std::size_t s = 0; s < archive.scans().size(); ++s) {
    const ScanData& scan = archive.scans()[s];
    for (const Observation& obs : scan.observations) {
      out << "O\t" << s << '\t' << static_cast<int>(scan.event.campaign)
          << '\t' << scan.event.start << '\t' << scan.event.duration_seconds
          << '\t' << obs.cert << '\t' << obs.ip << '\t' << obs.device << '\n';
    }
  }
}

std::optional<ScanArchive> import_tsv(std::istream& in) {
  ScanArchive archive;
  std::string line;
  std::uint32_t cert_count = 0;
  std::int64_t current_scan = -1;
  util::UnixTime prev_start = std::numeric_limits<util::UnixTime>::min();
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::vector<std::string> fields = split_tabs(line);
    if (fields[0] == "C") {
      if (fields.size() != 20) return std::nullopt;
      CertRecord cert;
      const std::string& fp_hex = fields[1];
      if (fp_hex.size() != cert.fingerprint.size() * 2) return std::nullopt;
      for (std::size_t i = 0; i < cert.fingerprint.size(); ++i) {
        unsigned byte = 0;
        const auto* begin = fp_hex.data() + 2 * i;
        const auto [ptr, ec] = std::from_chars(begin, begin + 2, byte, 16);
        if (ec != std::errc{} || ptr != begin + 2) return std::nullopt;
        cert.fingerprint[i] = static_cast<std::uint8_t>(byte);
      }
      const auto subject = unescape(fields[3]);
      const auto issuer = unescape(fields[4]);
      const auto issuer_dn = unescape(fields[5]);
      const auto serial = unescape(fields[6]);
      const auto aki = unescape(fields[10]);
      const auto crl = unescape(fields[11]);
      const auto aia = unescape(fields[12]);
      const auto ocsp = unescape(fields[13]);
      const auto oid = unescape(fields[14]);
      int is_ca = 0, valid = 0, transvalid = 0, reason = 0;
      if (!subject || !issuer || !issuer_dn || !serial || !aki || !crl ||
          !aia || !ocsp || !oid || !parse_int(fields[2], cert.key_fingerprint) ||
          !parse_int(fields[7], cert.not_before) ||
          !parse_int(fields[8], cert.not_after) ||
          !parse_int(fields[15], cert.raw_version) ||
          !parse_int(fields[16], is_ca) || !parse_int(fields[17], valid) ||
          !parse_int(fields[18], transvalid) ||
          !parse_int(fields[19], reason)) {
        return std::nullopt;
      }
      cert.subject_cn = *subject;
      cert.issuer_cn = *issuer;
      cert.issuer_dn = *issuer_dn;
      cert.serial_hex = *serial;
      cert.aki_hex = *aki;
      cert.crl_url = *crl;
      cert.aia_url = *aia;
      cert.ocsp_url = *ocsp;
      cert.policy_oid = *oid;
      for (const std::string& entry : split_san_field(fields[9])) {
        auto san = unescape(entry);
        if (!san) return std::nullopt;
        cert.san.push_back(std::move(*san));
      }
      cert.is_ca = is_ca != 0;
      cert.valid = valid != 0;
      cert.transvalid = transvalid != 0;
      if (reason < 0 ||
          reason > static_cast<int>(pki::InvalidReason::kRevoked)) {
        return std::nullopt;
      }
      cert.invalid_reason = static_cast<pki::InvalidReason>(reason);
      if (archive.intern(std::move(cert)) != cert_count) return std::nullopt;
      ++cert_count;
    } else if (fields[0] == "O") {
      if (fields.size() != 8) return std::nullopt;
      std::int64_t scan_index = 0;
      int campaign = 0;
      ScanEvent event;
      Observation obs;
      if (!parse_int(fields[1], scan_index) ||
          !parse_int(fields[2], campaign) || campaign < 0 || campaign > 1 ||
          !parse_int(fields[3], event.start) ||
          !parse_int(fields[4], event.duration_seconds) ||
          !parse_int(fields[5], obs.cert) || !parse_int(fields[6], obs.ip) ||
          !parse_int(fields[7], obs.device)) {
        return std::nullopt;
      }
      event.campaign = static_cast<Campaign>(campaign);
      if (scan_index == current_scan + 1) {
        if (event.start < prev_start) return std::nullopt;
        prev_start = event.start;
        archive.begin_scan(event);
        current_scan = scan_index;
      } else if (scan_index != current_scan) {
        return std::nullopt;  // scans must arrive in order
      }
      if (obs.cert >= cert_count) return std::nullopt;
      archive.add_observation(static_cast<std::size_t>(current_scan),
                              obs.cert, obs.ip, obs.device);
    } else {
      return std::nullopt;
    }
  }
  return archive;
}

}  // namespace sm::scan
