#include "scan/archive_io.h"

#include <charconv>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

namespace sm::scan {

namespace {

constexpr char kMagic[4] = {'S', 'M', 'A', 'R'};
constexpr std::uint32_t kVersion = 1;

// --- binary primitives -------------------------------------------------------

template <typename T>
void put(std::ostream& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
bool get(std::istream& in, T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  return in.good() || (in.eof() && in.gcount() == sizeof(value));
}

void put_string(std::ostream& out, const std::string& s) {
  put<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool get_string(std::istream& in, std::string& s) {
  std::uint32_t len = 0;
  if (!get(in, len)) return false;
  if (len > (1u << 24)) return false;  // sanity bound
  s.resize(len);
  in.read(s.data(), len);
  return static_cast<std::uint32_t>(in.gcount()) == len;
}

// --- TSV escaping ------------------------------------------------------------

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\t':
        out += "%09";
        break;
      case '\n':
        out += "%0a";
        break;
      case '%':
        out += "%25";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::optional<std::string> unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') {
      out.push_back(s[i]);
      continue;
    }
    if (i + 2 >= s.size()) return std::nullopt;
    unsigned value = 0;
    const auto [ptr, ec] =
        std::from_chars(s.data() + i + 1, s.data() + i + 3, value, 16);
    if (ec != std::errc{} || ptr != s.data() + i + 3) return std::nullopt;
    out.push_back(static_cast<char>(value));
    i += 2;
  }
  return out;
}

std::vector<std::string> split_tabs(const std::string& line) {
  std::vector<std::string> fields;
  std::size_t pos = 0;
  for (;;) {
    const std::size_t tab = line.find('\t', pos);
    if (tab == std::string::npos) {
      fields.push_back(line.substr(pos));
      return fields;
    }
    fields.push_back(line.substr(pos, tab - pos));
    pos = tab + 1;
  }
}

template <typename T>
bool parse_int(const std::string& s, T& out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

}  // namespace

void save_archive(const ScanArchive& archive, std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  put(out, kVersion);

  put<std::uint32_t>(out, static_cast<std::uint32_t>(archive.certs().size()));
  for (const CertRecord& cert : archive.certs()) {
    out.write(reinterpret_cast<const char*>(cert.fingerprint.data()),
              static_cast<std::streamsize>(cert.fingerprint.size()));
    put(out, cert.key_fingerprint);
    put_string(out, cert.subject_cn);
    put_string(out, cert.issuer_cn);
    put_string(out, cert.issuer_dn);
    put_string(out, cert.serial_hex);
    put(out, cert.not_before);
    put(out, cert.not_after);
    put<std::uint32_t>(out, static_cast<std::uint32_t>(cert.san.size()));
    for (const std::string& san : cert.san) put_string(out, san);
    put_string(out, cert.aki_hex);
    put_string(out, cert.crl_url);
    put_string(out, cert.aia_url);
    put_string(out, cert.ocsp_url);
    put_string(out, cert.policy_oid);
    put(out, cert.raw_version);
    put<std::uint8_t>(out, static_cast<std::uint8_t>(
                               (cert.is_ca ? 1 : 0) | (cert.valid ? 2 : 0) |
                               (cert.transvalid ? 4 : 0)));
    put<std::uint8_t>(out, static_cast<std::uint8_t>(cert.invalid_reason));
  }

  put<std::uint32_t>(out, static_cast<std::uint32_t>(archive.scans().size()));
  for (const ScanData& scan : archive.scans()) {
    put<std::uint8_t>(out, static_cast<std::uint8_t>(scan.event.campaign));
    put(out, scan.event.start);
    put(out, scan.event.duration_seconds);
    put<std::uint32_t>(out,
                       static_cast<std::uint32_t>(scan.observations.size()));
    for (const Observation& obs : scan.observations) {
      put(out, obs.cert);
      put(out, obs.ip);
      put(out, obs.device);
    }
  }
}

std::optional<ScanArchive> load_archive(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return std::nullopt;
  }
  std::uint32_t version = 0;
  if (!get(in, version) || version != kVersion) return std::nullopt;

  ScanArchive archive;
  std::uint32_t cert_count = 0;
  if (!get(in, cert_count)) return std::nullopt;
  for (std::uint32_t i = 0; i < cert_count; ++i) {
    CertRecord cert;
    in.read(reinterpret_cast<char*>(cert.fingerprint.data()),
            static_cast<std::streamsize>(cert.fingerprint.size()));
    if (static_cast<std::size_t>(in.gcount()) != cert.fingerprint.size()) {
      return std::nullopt;
    }
    std::uint32_t san_count = 0;
    std::uint8_t flags = 0, reason = 0;
    if (!get(in, cert.key_fingerprint) || !get_string(in, cert.subject_cn) ||
        !get_string(in, cert.issuer_cn) || !get_string(in, cert.issuer_dn) ||
        !get_string(in, cert.serial_hex) || !get(in, cert.not_before) ||
        !get(in, cert.not_after) || !get(in, san_count)) {
      return std::nullopt;
    }
    if (san_count > (1u << 16)) return std::nullopt;
    cert.san.resize(san_count);
    for (std::string& san : cert.san) {
      if (!get_string(in, san)) return std::nullopt;
    }
    if (!get_string(in, cert.aki_hex) || !get_string(in, cert.crl_url) ||
        !get_string(in, cert.aia_url) || !get_string(in, cert.ocsp_url) ||
        !get_string(in, cert.policy_oid) || !get(in, cert.raw_version) ||
        !get(in, flags) || !get(in, reason)) {
      return std::nullopt;
    }
    cert.is_ca = flags & 1;
    cert.valid = flags & 2;
    cert.transvalid = flags & 4;
    if (reason > static_cast<std::uint8_t>(pki::InvalidReason::kRevoked)) {
      return std::nullopt;
    }
    cert.invalid_reason = static_cast<pki::InvalidReason>(reason);
    if (archive.intern(cert) != i) return std::nullopt;  // duplicate fp
  }

  std::uint32_t scan_count = 0;
  if (!get(in, scan_count)) return std::nullopt;
  for (std::uint32_t s = 0; s < scan_count; ++s) {
    std::uint8_t campaign = 0;
    ScanEvent event;
    std::uint32_t obs_count = 0;
    if (!get(in, campaign) || campaign > 1 || !get(in, event.start) ||
        !get(in, event.duration_seconds) || !get(in, obs_count)) {
      return std::nullopt;
    }
    event.campaign = static_cast<Campaign>(campaign);
    const std::size_t scan_index = archive.begin_scan(event);
    for (std::uint32_t i = 0; i < obs_count; ++i) {
      Observation obs;
      if (!get(in, obs.cert) || !get(in, obs.ip) || !get(in, obs.device)) {
        return std::nullopt;
      }
      if (obs.cert >= cert_count) return std::nullopt;
      archive.add_observation(scan_index, obs.cert, obs.ip, obs.device);
    }
  }
  return archive;
}

bool save_archive_file(const ScanArchive& archive, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  save_archive(archive, out);
  return out.good();
}

std::optional<ScanArchive> load_archive_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  return load_archive(in);
}

void export_tsv(const ScanArchive& archive, std::ostream& out) {
  out << "#certs\tfingerprint\tkey_fp\tsubject_cn\tissuer_cn\tissuer_dn\t"
         "serial\tnot_before\tnot_after\tsan\taki\tcrl\taia\tocsp\toid\t"
         "version\tis_ca\tvalid\ttransvalid\treason\n";
  for (const CertRecord& cert : archive.certs()) {
    std::string fp_hex;
    for (const std::uint8_t b : cert.fingerprint) {
      static constexpr char kDigits[] = "0123456789abcdef";
      fp_hex.push_back(kDigits[b >> 4]);
      fp_hex.push_back(kDigits[b & 0xf]);
    }
    std::string san_joined;
    for (std::size_t i = 0; i < cert.san.size(); ++i) {
      if (i) san_joined.push_back('|');
      san_joined += cert.san[i];
    }
    out << "C\t" << fp_hex << '\t' << cert.key_fingerprint << '\t'
        << escape(cert.subject_cn) << '\t' << escape(cert.issuer_cn) << '\t'
        << escape(cert.issuer_dn) << '\t' << escape(cert.serial_hex) << '\t'
        << cert.not_before << '\t' << cert.not_after << '\t'
        << escape(san_joined) << '\t' << cert.aki_hex << '\t'
        << escape(cert.crl_url) << '\t' << escape(cert.aia_url) << '\t'
        << escape(cert.ocsp_url) << '\t' << escape(cert.policy_oid) << '\t'
        << cert.raw_version << '\t' << (cert.is_ca ? 1 : 0) << '\t'
        << (cert.valid ? 1 : 0) << '\t' << (cert.transvalid ? 1 : 0) << '\t'
        << static_cast<int>(cert.invalid_reason) << '\n';
  }
  out << "#observations\tscan\tcampaign\tstart\tduration\tcert\tip\tdevice\n";
  for (std::size_t s = 0; s < archive.scans().size(); ++s) {
    const ScanData& scan = archive.scans()[s];
    for (const Observation& obs : scan.observations) {
      out << "O\t" << s << '\t' << static_cast<int>(scan.event.campaign)
          << '\t' << scan.event.start << '\t' << scan.event.duration_seconds
          << '\t' << obs.cert << '\t' << obs.ip << '\t' << obs.device << '\n';
    }
  }
}

std::optional<ScanArchive> import_tsv(std::istream& in) {
  ScanArchive archive;
  std::string line;
  std::uint32_t cert_count = 0;
  std::int64_t current_scan = -1;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::vector<std::string> fields = split_tabs(line);
    if (fields[0] == "C") {
      if (fields.size() != 20) return std::nullopt;
      CertRecord cert;
      const std::string& fp_hex = fields[1];
      if (fp_hex.size() != cert.fingerprint.size() * 2) return std::nullopt;
      for (std::size_t i = 0; i < cert.fingerprint.size(); ++i) {
        unsigned byte = 0;
        const auto* begin = fp_hex.data() + 2 * i;
        const auto [ptr, ec] = std::from_chars(begin, begin + 2, byte, 16);
        if (ec != std::errc{} || ptr != begin + 2) return std::nullopt;
        cert.fingerprint[i] = static_cast<std::uint8_t>(byte);
      }
      const auto subject = unescape(fields[3]);
      const auto issuer = unescape(fields[4]);
      const auto issuer_dn = unescape(fields[5]);
      const auto serial = unescape(fields[6]);
      const auto san = unescape(fields[9]);
      const auto crl = unescape(fields[11]);
      const auto aia = unescape(fields[12]);
      const auto ocsp = unescape(fields[13]);
      const auto oid = unescape(fields[14]);
      int is_ca = 0, valid = 0, transvalid = 0, reason = 0;
      if (!subject || !issuer || !issuer_dn || !serial || !san || !crl ||
          !aia || !ocsp || !oid || !parse_int(fields[2], cert.key_fingerprint) ||
          !parse_int(fields[7], cert.not_before) ||
          !parse_int(fields[8], cert.not_after) ||
          !parse_int(fields[15], cert.raw_version) ||
          !parse_int(fields[16], is_ca) || !parse_int(fields[17], valid) ||
          !parse_int(fields[18], transvalid) ||
          !parse_int(fields[19], reason)) {
        return std::nullopt;
      }
      cert.subject_cn = *subject;
      cert.issuer_cn = *issuer;
      cert.issuer_dn = *issuer_dn;
      cert.serial_hex = *serial;
      cert.aki_hex = fields[10];
      cert.crl_url = *crl;
      cert.aia_url = *aia;
      cert.ocsp_url = *ocsp;
      cert.policy_oid = *oid;
      if (!san->empty()) {
        std::size_t pos = 0;
        for (;;) {
          const std::size_t bar = san->find('|', pos);
          cert.san.push_back(san->substr(pos, bar - pos));
          if (bar == std::string::npos) break;
          pos = bar + 1;
        }
      }
      cert.is_ca = is_ca != 0;
      cert.valid = valid != 0;
      cert.transvalid = transvalid != 0;
      if (reason < 0 ||
          reason > static_cast<int>(pki::InvalidReason::kRevoked)) {
        return std::nullopt;
      }
      cert.invalid_reason = static_cast<pki::InvalidReason>(reason);
      if (archive.intern(cert) != cert_count) return std::nullopt;
      ++cert_count;
    } else if (fields[0] == "O") {
      if (fields.size() != 8) return std::nullopt;
      std::int64_t scan_index = 0;
      int campaign = 0;
      ScanEvent event;
      Observation obs;
      if (!parse_int(fields[1], scan_index) ||
          !parse_int(fields[2], campaign) || campaign < 0 || campaign > 1 ||
          !parse_int(fields[3], event.start) ||
          !parse_int(fields[4], event.duration_seconds) ||
          !parse_int(fields[5], obs.cert) || !parse_int(fields[6], obs.ip) ||
          !parse_int(fields[7], obs.device)) {
        return std::nullopt;
      }
      event.campaign = static_cast<Campaign>(campaign);
      if (scan_index == current_scan + 1) {
        archive.begin_scan(event);
        current_scan = scan_index;
      } else if (scan_index != current_scan) {
        return std::nullopt;  // scans must arrive in order
      }
      if (obs.cert >= cert_count) return std::nullopt;
      archive.add_observation(static_cast<std::size_t>(current_scan),
                              obs.cert, obs.ip, obs.device);
    } else {
      return std::nullopt;
    }
  }
  return archive;
}

}  // namespace sm::scan
