// CertRecord — the compact per-certificate row the analysis pipeline works
// on. A full x509::Certificate (with its DER) is built and validated once,
// at issuance; everything downstream (longevity, diversity, linking,
// tracking) reads these slim records, which is what makes archives of
// hundreds of thousands of certificates cheap to hold in memory.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "pki/verifier.h"
#include "x509/certificate.h"

namespace sm::scan {

/// 128-bit truncation of the SHA-256 certificate fingerprint — the
/// certificate identity used for interning/deduplication.
using CertFingerprint = std::array<std::uint8_t, 16>;

/// Hash functor for fingerprint-keyed maps (the archive's intern table,
/// the simworld revocation-status map, notary option injections). The
/// fingerprint is already uniformly-random hash output — its first 8
/// bytes ARE a perfectly good hash value; no mixing needed.
struct FingerprintHash {
  std::size_t operator()(const CertFingerprint& fp) const {
    std::uint64_t h = 0;
    std::memcpy(&h, fp.data(), sizeof h);
    return static_cast<std::size_t>(h);
  }
};

/// 64-bit truncation of the SPKI fingerprint — the public-key identity used
/// by the key-sharing analysis and the Public Key linking feature.
using KeyFingerprint = std::uint64_t;

/// The extracted features of one unique certificate.
struct CertRecord {
  CertFingerprint fingerprint{};
  KeyFingerprint key_fingerprint = 0;

  std::string subject_cn;
  std::string issuer_cn;
  std::string issuer_dn;     ///< full issuer rendering (for IN+SN feature)
  std::string serial_hex;
  util::UnixTime not_before = 0;
  util::UnixTime not_after = 0;
  std::vector<std::string> san;  ///< GeneralName::to_string forms, in order
  std::string aki_hex;        ///< AuthorityKeyIdentifier hex, "" if none
  std::string crl_url;        ///< first CRL distribution point, "" if none
  std::string aia_url;        ///< first caIssuers URL, "" if none
  std::string ocsp_url;       ///< first OCSP responder URL, "" if none
  std::string policy_oid;     ///< first certificate-policy OID, "" if none
  std::int32_t raw_version = 2;
  bool is_ca = false;

  bool valid = false;
  /// Valid only because the intermediate pool completed a chain the server
  /// did not present ("transvalid", §4.2).
  bool transvalid = false;
  pki::InvalidReason invalid_reason = pki::InvalidReason::kNone;

  /// Signed validity period in days.
  double validity_period_days() const {
    return static_cast<double>(not_after - not_before) /
           static_cast<double>(util::kSecondsPerDay);
  }

  /// The SAN list as one sorted, '|'-joined feature string ("" when empty).
  std::string san_joined() const;
};

/// Extracts a CertRecord from a parsed certificate plus its validation
/// outcome.
CertRecord make_cert_record(const x509::Certificate& cert,
                            const pki::ValidationResult& validation);

/// Truncates a full SHA-256 certificate fingerprint to the 128-bit intern
/// key.
CertFingerprint truncate_fingerprint(const util::Bytes& sha256);

/// Truncates a full SPKI fingerprint to the 64-bit key identity.
KeyFingerprint truncate_key_fingerprint(const util::Bytes& sha256);

}  // namespace sm::scan
