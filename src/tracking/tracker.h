// §7: tracking end-user devices through the IP space using linked invalid
// certificates — trackable-device extraction, AS movement and bulk prefix
// transfers, country moves, and per-AS IP reassignment inference.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/dataset.h"
#include "linking/linker.h"
#include "net/as_database.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace sm::tracking {

/// Tunables; thresholds scale with world size (the paper used >= 50 devices
/// for bulk transfers at internet scale).
struct TrackerConfig {
  /// Minimum observed span for a device to count as trackable (§7.2).
  double trackable_days = 365.0;
  /// Minimum devices moving AS-to-AS between two scans to call it a bulk
  /// (prefix-transfer style) movement.
  std::uint32_t bulk_transfer_min_devices = 15;
  /// §7.4: ASes with fewer tracked devices than this are skipped.
  std::uint32_t min_devices_per_as = 10;
};

/// One believed physical device: a linked group or a lone certificate.
struct TrackedEntity {
  std::vector<scan::CertId> certs;
  bool linked = false;  ///< came from a multi-cert linked group
  /// Per-scan residency, ordered by scan index.
  struct Residency {
    std::uint32_t scan = 0;
    std::uint32_t ip = 0;
    net::Asn asn = 0;
  };
  std::vector<Residency> timeline;
  util::UnixTime first_seen = 0;
  util::UnixTime last_seen = 0;

  double span_days() const {
    return static_cast<double>(last_seen - first_seen) /
           static_cast<double>(util::kSecondsPerDay);
  }
};

/// §7.2's headline comparison.
struct TrackableSummary {
  std::uint64_t trackable_without_linking = 0;  ///< single-cert entities only
  std::uint64_t trackable_with_linking = 0;
  double improvement() const {
    return trackable_without_linking == 0
               ? 0.0
               : static_cast<double>(trackable_with_linking) /
                         static_cast<double>(trackable_without_linking) -
                     1.0;
  }
};

/// One detected bulk AS-to-AS movement between consecutive observations.
struct BulkTransfer {
  std::uint32_t scan = 0;  ///< scan index where devices appear at `to`
  net::Asn from = 0;
  net::Asn to = 0;
  std::uint32_t devices = 0;
};

/// §7.3's movement statistics.
struct MovementStats {
  std::uint64_t tracked_devices = 0;
  std::uint64_t devices_with_as_change = 0;
  std::uint64_t total_as_transitions = 0;
  double single_move_fraction = 0;  ///< of movers: exactly one move
  std::uint64_t max_moves = 0;
  std::vector<BulkTransfer> bulk_transfers;
  std::uint64_t devices_crossing_countries = 0;
};

/// Per-AS reassignment behaviour (§7.4 / Figure 11).
struct AsReassignment {
  net::Asn asn = 0;
  std::uint32_t tracked_devices = 0;
  std::uint32_t static_devices = 0;
  std::uint32_t always_changing_devices = 0;
  double static_fraction() const {
    return tracked_devices == 0 ? 0.0
                                : static_cast<double>(static_devices) /
                                      static_cast<double>(tracked_devices);
  }
  double always_changing_fraction() const {
    return tracked_devices == 0
               ? 0.0
               : static_cast<double>(always_changing_devices) /
                     static_cast<double>(tracked_devices);
  }
};

/// §7.4's output.
struct ReassignmentStats {
  std::vector<AsReassignment> per_as;  ///< ASes with enough devices
  util::EmpiricalCdf static_fraction_cdf;  ///< Figure 11's distribution
  std::uint64_t ases_90pct_static = 0;
  std::vector<AsReassignment> most_dynamic;  ///< >= 75% change every scan
};

/// The §7 tracker: builds entities from a linking result and answers the
/// section's questions.
class DeviceTracker {
 public:
  /// Entity construction (timeline assembly per linked group / lone cert)
  /// runs on `pool` (the process-global pool when null); the entity list
  /// is identical for every thread count.
  DeviceTracker(const analysis::DatasetIndex& index,
                const linking::Linker& linker,
                const linking::IterativeResult& linking_result,
                const net::AsDatabase& as_db, TrackerConfig config = {},
                util::ThreadPool* pool = nullptr);

  /// All entities (linked groups + lone eligible certificates).
  const std::vector<TrackedEntity>& entities() const { return entities_; }

  /// Entities observed for at least `trackable_days`.
  std::vector<const TrackedEntity*> trackable() const;

  TrackableSummary summary() const;
  MovementStats movement() const;
  ReassignmentStats reassignment() const;

 private:
  TrackedEntity build_entity(const std::vector<scan::CertId>& certs,
                             bool linked) const;

  const analysis::DatasetIndex* index_;
  const corpus::CorpusIndex* spine_;  // == &index_->corpus()
  const net::AsDatabase* as_db_;
  TrackerConfig config_;
  std::vector<TrackedEntity> entities_;
  std::uint64_t trackable_without_linking_ = 0;
};

}  // namespace sm::tracking
