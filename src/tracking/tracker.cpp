#include "tracking/tracker.h"

#include <algorithm>
#include <map>
#include <set>
#include <span>

namespace sm::tracking {

DeviceTracker::DeviceTracker(const analysis::DatasetIndex& index,
                             const linking::Linker& linker,
                             const linking::IterativeResult& linking_result,
                             const net::AsDatabase& as_db,
                             TrackerConfig config, util::ThreadPool* pool)
    : index_(&index), spine_(&index.corpus()), as_db_(&as_db),
      config_(config) {
  if (pool == nullptr) pool = &util::ThreadPool::global();
  // The per-cert (scan, ip) lists come straight from the shared corpus
  // spine — the tracker no longer builds its own CSR over the archive.

  // Entity specs first (groups in linking order, then lone eligible certs
  // in id order), then parallel timeline assembly into indexed slots.
  std::vector<bool> in_group(index.archive().certs().size(), false);
  for (const linking::LinkedGroup& group : linking_result.groups) {
    for (const scan::CertId id : group.certs) in_group[id] = true;
  }
  const std::vector<bool>& eligible = linker.eligible();
  std::vector<scan::CertId> singles;
  for (scan::CertId id = 0; id < eligible.size(); ++id) {
    if (!eligible[id] || in_group[id]) continue;
    singles.push_back(id);
  }
  const std::size_t group_count = linking_result.groups.size();
  entities_.resize(group_count + singles.size());
  pool->parallel_for(
      entities_.size(), 64, [&](std::size_t begin, std::size_t end) {
        for (std::size_t e = begin; e < end; ++e) {
          if (e < group_count) {
            entities_[e] =
                build_entity(linking_result.groups[e].certs, true);
          } else {
            entities_[e] = build_entity({singles[e - group_count]}, false);
          }
        }
      });
  // §7.2's baseline: devices trackable *without* linking are single
  // certificates observed for over a year.
  for (scan::CertId id = 0; id < eligible.size(); ++id) {
    if (!eligible[id]) continue;
    const analysis::CertStats& stats = index.stats(id);
    const auto& scans = index.archive().scans();
    const double days =
        static_cast<double>(scans[stats.last_scan].event.start -
                            scans[stats.first_scan].event.start) /
        static_cast<double>(util::kSecondsPerDay);
    if (days >= config_.trackable_days) ++trackable_without_linking_;
  }
}

TrackedEntity DeviceTracker::build_entity(
    const std::vector<scan::CertId>& certs, bool linked) const {
  TrackedEntity entity;
  entity.certs = certs;
  entity.linked = linked;
  // Collect (scan, ip) over member certificates; keep one residency per
  // scan (the numerically smallest IP when a mid-scan move yields two).
  // The residency's AS is the chosen observation's entry in the spine's
  // precomputed ASN column — no per-residency route lookups.
  std::map<std::uint32_t, std::pair<std::uint32_t, net::Asn>> per_scan;
  const auto& scans = index_->archive().scans();
  for (const scan::CertId id : certs) {
    const std::span<const corpus::Obs> obs = spine_->observations(id);
    const std::span<const net::Asn> asns = spine_->asns(id);
    for (std::size_t i = 0; i < obs.size(); ++i) {
      const auto it = per_scan.find(obs[i].scan);
      if (it == per_scan.end() || obs[i].ip < it->second.first) {
        per_scan[obs[i].scan] = {obs[i].ip, asns[i]};
      }
    }
  }
  for (const auto& [scan_index, residency] : per_scan) {
    entity.timeline.push_back(TrackedEntity::Residency{
        scan_index, residency.first, residency.second});
  }
  if (!entity.timeline.empty()) {
    entity.first_seen = scans[entity.timeline.front().scan].event.start;
    entity.last_seen = scans[entity.timeline.back().scan].event.start;
  }
  return entity;
}

std::vector<const TrackedEntity*> DeviceTracker::trackable() const {
  std::vector<const TrackedEntity*> out;
  for (const TrackedEntity& entity : entities_) {
    if (entity.span_days() >= config_.trackable_days) out.push_back(&entity);
  }
  return out;
}

TrackableSummary DeviceTracker::summary() const {
  TrackableSummary out;
  out.trackable_without_linking = trackable_without_linking_;
  out.trackable_with_linking = trackable().size();
  return out;
}

MovementStats DeviceTracker::movement() const {
  MovementStats out;
  const auto& scans = index_->archive().scans();
  std::map<std::tuple<std::uint32_t, net::Asn, net::Asn>, std::uint32_t>
      transitions_by_edge;
  for (const TrackedEntity* entity : trackable()) {
    ++out.tracked_devices;
    std::uint64_t moves = 0;
    bool crossed_country = false;
    for (std::size_t i = 1; i < entity->timeline.size(); ++i) {
      const auto& prev = entity->timeline[i - 1];
      const auto& cur = entity->timeline[i];
      if (prev.asn == cur.asn) continue;
      ++moves;
      ++transitions_by_edge[{cur.scan, prev.asn, cur.asn}];
      const std::string from_country =
          as_db_->country_at(prev.asn, scans[prev.scan].event.start);
      const std::string to_country =
          as_db_->country_at(cur.asn, scans[cur.scan].event.start);
      if (!from_country.empty() && !to_country.empty() &&
          from_country != to_country) {
        crossed_country = true;
      }
    }
    if (moves > 0) {
      ++out.devices_with_as_change;
      out.total_as_transitions += moves;
      out.max_moves = std::max(out.max_moves, moves);
      if (moves == 1) {
        // counted below for the single-move fraction
      }
      if (crossed_country) ++out.devices_crossing_countries;
    }
  }
  std::uint64_t single_movers = 0;
  // Second pass for single-move counting (kept simple and allocation-free).
  for (const TrackedEntity* entity : trackable()) {
    std::uint64_t moves = 0;
    for (std::size_t i = 1; i < entity->timeline.size(); ++i) {
      if (entity->timeline[i - 1].asn != entity->timeline[i].asn) ++moves;
    }
    if (moves == 1) ++single_movers;
  }
  if (out.devices_with_as_change > 0) {
    out.single_move_fraction =
        static_cast<double>(single_movers) /
        static_cast<double>(out.devices_with_as_change);
  }
  for (const auto& [edge, devices] : transitions_by_edge) {
    if (devices < config_.bulk_transfer_min_devices) continue;
    const auto& [scan, from, to] = edge;
    out.bulk_transfers.push_back(BulkTransfer{scan, from, to, devices});
  }
  std::sort(out.bulk_transfers.begin(), out.bulk_transfers.end(),
            [](const BulkTransfer& a, const BulkTransfer& b) {
              return a.devices > b.devices;
            });
  return out;
}

ReassignmentStats DeviceTracker::reassignment() const {
  std::map<net::Asn, AsReassignment> per_as;
  for (const TrackedEntity* entity : trackable()) {
    // Reassignment is a property of an AS's stationary subscribers; devices
    // that migrated between ASes are the subject of the movement analysis
    // and would only blur per-AS policy inference.
    bool multi_as = false;
    for (std::size_t i = 1; i < entity->timeline.size(); ++i) {
      if (entity->timeline[i].asn != entity->timeline[0].asn) {
        multi_as = true;
        break;
      }
    }
    if (multi_as || entity->timeline.empty()) continue;
    const net::Asn home = entity->timeline[0].asn;
    AsReassignment& slot = per_as[home];
    slot.asn = home;
    ++slot.tracked_devices;
    // Static: one IP across the entire dataset (and the entity already
    // spans >= trackable_days). For "changes between every scan", two scans
    // on the same calendar day (the dual-scan days) count as one
    // observation epoch — a lease cannot turn over between them.
    const auto& scans = index_->archive().scans();
    const auto day_of = [&](std::uint32_t scan) {
      return scans[scan].event.start / util::kSecondsPerDay;
    };
    bool static_ip = true;
    bool always_changing = entity->timeline.size() >= 2;
    for (std::size_t i = 1; i < entity->timeline.size(); ++i) {
      if (entity->timeline[i].ip != entity->timeline[i - 1].ip) {
        static_ip = false;
      } else if (day_of(entity->timeline[i].scan) !=
                 day_of(entity->timeline[i - 1].scan)) {
        always_changing = false;
      }
    }
    if (static_ip) ++slot.static_devices;
    if (always_changing) ++slot.always_changing_devices;
  }
  ReassignmentStats out;
  std::vector<double> fractions;
  for (const auto& [asn, slot] : per_as) {
    if (slot.tracked_devices < config_.min_devices_per_as) continue;
    out.per_as.push_back(slot);
    fractions.push_back(slot.static_fraction());
    if (slot.static_fraction() >= 0.9) ++out.ases_90pct_static;
    if (slot.always_changing_fraction() >= 0.75) {
      out.most_dynamic.push_back(slot);
    }
  }
  out.static_fraction_cdf = util::EmpiricalCdf(std::move(fractions));
  std::sort(out.most_dynamic.begin(), out.most_dynamic.end(),
            [](const AsReassignment& a, const AsReassignment& b) {
              return a.always_changing_fraction() >
                     b.always_changing_fraction();
            });
  return out;
}

}  // namespace sm::tracking
