// X.501 distinguished names (the issuer/subject of a certificate).
//
// Modeled as an ordered list of (attribute OID, string value) pairs; each
// attribute occupies its own RDN, which matches how virtually all real
// certificates are built. Empty names (zero attributes) are legal and occur
// in the wild — the paper's Table 1 lists the empty string as the third most
// common issuer of invalid certificates.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "asn1/der.h"
#include "asn1/oid.h"

namespace sm::x509 {

/// One attribute inside a distinguished name.
struct NameAttribute {
  asn1::Oid type;
  std::string value;

  friend bool operator==(const NameAttribute&, const NameAttribute&) = default;
  friend auto operator<=>(const NameAttribute&, const NameAttribute&) = default;
};

/// A distinguished name: ordered attribute list.
struct Name {
  std::vector<NameAttribute> attributes;

  friend bool operator==(const Name&, const Name&) = default;
  friend auto operator<=>(const Name&, const Name&) = default;

  /// True when the name carries no attributes at all.
  bool empty() const { return attributes.empty(); }

  /// Value of the first attribute with the given OID, or nullopt.
  std::optional<std::string> get(const asn1::Oid& type) const;

  /// The first CommonName value, or "" when absent (the paper treats missing
  /// and empty CNs identically).
  std::string common_name() const;

  /// Appends an attribute and returns *this for chaining.
  Name& add(const asn1::Oid& type, std::string value);

  /// Convenience constructor for the ubiquitous CN-only name.
  static Name with_common_name(std::string cn);

  /// OpenSSL-style one-line rendering, e.g. "CN=fritz.box, O=AVM".
  /// Empty name renders as "".
  std::string to_string() const;

  /// DER RDNSequence encoding (one attribute per RDN, UTF8String values).
  util::Bytes encode() const;

  /// Parses a DER RDNSequence. Returns nullopt on malformed input.
  static std::optional<Name> decode(util::BytesView der);
};

}  // namespace sm::x509
