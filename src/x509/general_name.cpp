#include "x509/general_name.h"

#include <charconv>

#include "asn1/der.h"

namespace sm::x509 {

namespace {

std::optional<util::Bytes> ipv4_to_bytes(const std::string& dotted) {
  util::Bytes out;
  std::size_t pos = 0;
  for (int i = 0; i < 4; ++i) {
    std::size_t dot = dotted.find('.', pos);
    if (dot == std::string::npos) dot = dotted.size();
    unsigned octet = 0;
    const auto [ptr, ec] =
        std::from_chars(dotted.data() + pos, dotted.data() + dot, octet);
    if (ec != std::errc{} || ptr != dotted.data() + dot || octet > 255) {
      return std::nullopt;
    }
    out.push_back(static_cast<std::uint8_t>(octet));
    pos = dot + 1;
  }
  if (pos <= dotted.size() && dotted.find('.', pos) != std::string::npos) {
    return std::nullopt;
  }
  return out;
}

std::string bytes_to_ipv4(util::BytesView b) {
  std::string out;
  for (std::size_t i = 0; i < b.size(); ++i) {
    if (i) out.push_back('.');
    out += std::to_string(b[i]);
  }
  return out;
}

}  // namespace

std::string GeneralName::to_string() const {
  switch (kind) {
    case Kind::kEmail:
      return "email:" + value;
    case Kind::kDns:
      return "dns:" + value;
    case Kind::kUri:
      return "uri:" + value;
    case Kind::kIp:
      return "ip:" + value;
  }
  return "?:" + value;
}

util::Bytes encode_general_names(const std::vector<GeneralName>& names) {
  util::Bytes children;
  for (const GeneralName& name : names) {
    const auto tag =
        asn1::context_primitive(static_cast<unsigned>(name.kind));
    if (name.kind == GeneralName::Kind::kIp) {
      const auto ip = ipv4_to_bytes(name.value);
      // Unparseable IPs encode as raw text so nothing is silently dropped;
      // real invalid certificates contain similar garbage.
      const util::Bytes payload =
          ip ? *ip : util::to_bytes(name.value);
      util::append(children, asn1::encode_tlv(tag, payload));
    } else {
      util::append(children, asn1::encode_tlv(tag, util::to_bytes(name.value)));
    }
  }
  return asn1::encode_sequence(children);
}

std::optional<std::vector<GeneralName>> decode_general_names(
    util::BytesView der) {
  const auto outer = asn1::parse_single(der);
  if (!outer || outer->tag != static_cast<std::uint8_t>(asn1::Tag::kSequence)) {
    return std::nullopt;
  }
  std::vector<GeneralName> out;
  asn1::Reader r(outer->content);
  while (!r.at_end()) {
    const auto tlv = r.read_any();
    if (!tlv) return std::nullopt;
    if ((tlv->tag & 0xc0) != 0x80) return std::nullopt;  // not context class
    const unsigned choice = tlv->tag & 0x1f;
    GeneralName name;
    switch (choice) {
      case 1:
        name.kind = GeneralName::Kind::kEmail;
        name.value = util::to_string(tlv->content);
        break;
      case 2:
        name.kind = GeneralName::Kind::kDns;
        name.value = util::to_string(tlv->content);
        break;
      case 6:
        name.kind = GeneralName::Kind::kUri;
        name.value = util::to_string(tlv->content);
        break;
      case 7:
        name.kind = GeneralName::Kind::kIp;
        name.value = tlv->content.size() == 4
                         ? bytes_to_ipv4(tlv->content)
                         : util::to_string(tlv->content);
        break;
      default:
        continue;  // skip name kinds we do not model
    }
    out.push_back(std::move(name));
  }
  return out;
}

}  // namespace sm::x509
