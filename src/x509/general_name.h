// GeneralName (RFC 5280 §4.2.1.6) — the entries of a SubjectAltName
// extension. Only the four kinds that matter for this study are modeled.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.h"

namespace sm::x509 {

/// One SubjectAltName entry.
struct GeneralName {
  enum class Kind : std::uint8_t {
    kEmail = 1,  ///< rfc822Name
    kDns = 2,    ///< dNSName
    kUri = 6,    ///< uniformResourceIdentifier
    kIp = 7,     ///< iPAddress (IPv4 only; rendered dotted-quad)
  };

  Kind kind = Kind::kDns;
  std::string value;

  friend bool operator==(const GeneralName&, const GeneralName&) = default;
  friend auto operator<=>(const GeneralName&, const GeneralName&) = default;

  /// Rendering with a kind prefix for unambiguous feature keys,
  /// e.g. "dns:fritz.fonwlan.box" or "ip:192.168.1.1".
  std::string to_string() const;
};

/// Encodes a GeneralNames SEQUENCE (the SAN extension payload).
util::Bytes encode_general_names(const std::vector<GeneralName>& names);

/// Decodes a GeneralNames SEQUENCE. Unknown name kinds are skipped (as a
/// lenient real-world parser must); returns nullopt only on structural
/// corruption.
std::optional<std::vector<GeneralName>> decode_general_names(
    util::BytesView der);

}  // namespace sm::x509
