#include "x509/pem.h"

#include <array>

namespace sm::x509 {

namespace {

constexpr char kAlphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

std::array<std::int8_t, 256> decode_table() {
  std::array<std::int8_t, 256> table;
  table.fill(-1);
  for (int i = 0; i < 64; ++i) {
    table[static_cast<unsigned char>(kAlphabet[i])] = static_cast<std::int8_t>(i);
  }
  return table;
}

bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

}  // namespace

std::string base64_encode(util::BytesView data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  for (; i + 3 <= data.size(); i += 3) {
    const std::uint32_t triple =
        (std::uint32_t{data[i]} << 16) | (std::uint32_t{data[i + 1]} << 8) |
        data[i + 2];
    out.push_back(kAlphabet[(triple >> 18) & 0x3f]);
    out.push_back(kAlphabet[(triple >> 12) & 0x3f]);
    out.push_back(kAlphabet[(triple >> 6) & 0x3f]);
    out.push_back(kAlphabet[triple & 0x3f]);
  }
  const std::size_t rest = data.size() - i;
  if (rest == 1) {
    const std::uint32_t triple = std::uint32_t{data[i]} << 16;
    out.push_back(kAlphabet[(triple >> 18) & 0x3f]);
    out.push_back(kAlphabet[(triple >> 12) & 0x3f]);
    out.push_back('=');
    out.push_back('=');
  } else if (rest == 2) {
    const std::uint32_t triple =
        (std::uint32_t{data[i]} << 16) | (std::uint32_t{data[i + 1]} << 8);
    out.push_back(kAlphabet[(triple >> 18) & 0x3f]);
    out.push_back(kAlphabet[(triple >> 12) & 0x3f]);
    out.push_back(kAlphabet[(triple >> 6) & 0x3f]);
    out.push_back('=');
  }
  return out;
}

std::optional<util::Bytes> base64_decode(std::string_view text) {
  static const std::array<std::int8_t, 256> kTable = decode_table();
  util::Bytes out;
  std::uint32_t accumulator = 0;
  int bits = 0;
  int padding = 0;
  for (const char c : text) {
    if (is_space(c)) continue;
    if (c == '=') {
      ++padding;
      continue;
    }
    if (padding > 0) return std::nullopt;  // data after padding
    const std::int8_t value = kTable[static_cast<unsigned char>(c)];
    if (value < 0) return std::nullopt;
    accumulator = (accumulator << 6) | static_cast<std::uint32_t>(value);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<std::uint8_t>(accumulator >> bits));
    }
  }
  if (padding > 2) return std::nullopt;
  // Leftover bits must be zero-padding only.
  if (bits > 0 && (accumulator & ((1u << bits) - 1)) != 0) {
    return std::nullopt;
  }
  // Validate total length: (chars + padding) must be a 4-multiple.
  return out;
}

std::string pem_encode(util::BytesView der, const std::string& label) {
  const std::string body = base64_encode(der);
  std::string out = "-----BEGIN " + label + "-----\n";
  for (std::size_t i = 0; i < body.size(); i += 64) {
    out += body.substr(i, 64);
    out.push_back('\n');
  }
  out += "-----END " + label + "-----\n";
  return out;
}

std::vector<PemBlock> pem_decode_all(const std::string& text) {
  std::vector<PemBlock> blocks;
  std::size_t pos = 0;
  for (;;) {
    const std::size_t begin = text.find("-----BEGIN ", pos);
    if (begin == std::string::npos) break;
    const std::size_t label_start = begin + 11;
    const std::size_t label_end = text.find("-----", label_start);
    if (label_end == std::string::npos) break;
    const std::string label =
        text.substr(label_start, label_end - label_start);
    const std::string end_marker = "-----END " + label + "-----";
    const std::size_t body_start = label_end + 5;
    const std::size_t end = text.find(end_marker, body_start);
    if (end == std::string::npos) {
      pos = body_start;
      continue;
    }
    const auto der =
        base64_decode(std::string_view(text).substr(body_start,
                                                    end - body_start));
    pos = end + end_marker.size();
    if (!der || der->empty()) continue;
    blocks.push_back(PemBlock{label, std::move(*der)});
  }
  return blocks;
}

std::string to_pem(const Certificate& cert) {
  return pem_encode(cert.der, "CERTIFICATE");
}

std::vector<Certificate> certificates_from_pem(const std::string& text) {
  std::vector<Certificate> out;
  for (const PemBlock& block : pem_decode_all(text)) {
    if (block.label != "CERTIFICATE") continue;
    if (auto cert = parse_certificate(block.der)) {
      out.push_back(std::move(*cert));
    }
  }
  return out;
}

}  // namespace sm::x509
