#include "x509/crl.h"

#include <algorithm>
#include <stdexcept>

#include "asn1/der.h"
#include "x509/builder.h"

namespace sm::x509 {

namespace {

bool serial_less(const RevokedEntry& a, const RevokedEntry& b) {
  return a.serial < b.serial;
}

}  // namespace

bool Crl::is_revoked(const bignum::BigUint& serial) const {
  return revocation_date(serial).has_value();
}

std::optional<util::UnixTime> Crl::revocation_date(
    const bignum::BigUint& serial) const {
  const RevokedEntry probe{serial, 0};
  const auto it =
      std::lower_bound(revoked.begin(), revoked.end(), probe, serial_less);
  if (it == revoked.end() || !(it->serial == serial)) return std::nullopt;
  return it->revocation_date;
}

std::optional<Crl> parse_crl(util::BytesView der) {
  const auto outer = asn1::parse_single(der);
  if (!outer || outer->tag != static_cast<std::uint8_t>(asn1::Tag::kSequence)) {
    return std::nullopt;
  }
  asn1::Reader list_reader(outer->content);
  const auto tbs = list_reader.read(asn1::Tag::kSequence);
  if (!tbs) return std::nullopt;

  Crl crl;
  crl.der.assign(der.begin(), der.end());
  crl.tbs_der.assign(tbs->full.begin(), tbs->full.end());

  const auto sig_alg = list_reader.read(asn1::Tag::kSequence);
  if (!sig_alg) return std::nullopt;
  {
    asn1::Reader alg_reader(sig_alg->content);
    const auto oid = alg_reader.read_oid();
    if (!oid) return std::nullopt;
    crl.signature_algorithm = *oid;
  }
  const auto sig_bits = list_reader.read(asn1::Tag::kBitString);
  if (!sig_bits || sig_bits->content.empty() || sig_bits->content[0] != 0 ||
      !list_reader.at_end()) {
    return std::nullopt;
  }
  crl.signature.assign(sig_bits->content.begin() + 1, sig_bits->content.end());

  // --- TBSCertList ---
  asn1::Reader tbs_reader(tbs->content);
  // Optional version (v2 = INTEGER 1).
  if (const auto peek = tbs_reader.peek_tag();
      peek && *peek == static_cast<std::uint8_t>(asn1::Tag::kInteger)) {
    const auto version = tbs_reader.read_small_integer();
    if (!version || *version != 1) return std::nullopt;
  }
  const auto inner_alg = tbs_reader.read(asn1::Tag::kSequence);
  if (!inner_alg) return std::nullopt;
  const auto issuer_tlv = tbs_reader.read(asn1::Tag::kSequence);
  if (!issuer_tlv) return std::nullopt;
  const auto issuer = Name::decode(issuer_tlv->full);
  if (!issuer) return std::nullopt;
  crl.issuer = *issuer;
  const auto this_update = tbs_reader.read_time();
  if (!this_update) return std::nullopt;
  crl.this_update = *this_update;
  // Optional nextUpdate: a time tag.
  if (const auto peek = tbs_reader.peek_tag();
      peek && (*peek == static_cast<std::uint8_t>(asn1::Tag::kUtcTime) ||
               *peek == static_cast<std::uint8_t>(asn1::Tag::kGeneralizedTime))) {
    const auto next_update = tbs_reader.read_time();
    if (!next_update) return std::nullopt;
    crl.next_update = *next_update;
  }
  // Optional revokedCertificates.
  if (const auto peek = tbs_reader.peek_tag();
      peek && *peek == static_cast<std::uint8_t>(asn1::Tag::kSequence)) {
    const auto revoked_list = tbs_reader.read(asn1::Tag::kSequence);
    if (!revoked_list) return std::nullopt;
    asn1::Reader entries(revoked_list->content);
    while (!entries.at_end()) {
      const auto entry = entries.read(asn1::Tag::kSequence);
      if (!entry) return std::nullopt;
      asn1::Reader entry_reader(entry->content);
      RevokedEntry revoked;
      const auto serial = entry_reader.read_integer();
      if (!serial) return std::nullopt;
      revoked.serial = *serial;
      const auto when = entry_reader.read_time();
      if (!when) return std::nullopt;
      revoked.revocation_date = *when;
      crl.revoked.push_back(std::move(revoked));
    }
  }
  if (!tbs_reader.at_end()) return std::nullopt;
  std::sort(crl.revoked.begin(), crl.revoked.end(), serial_less);
  return crl;
}

CrlBuilder& CrlBuilder::set_issuer(Name issuer) {
  issuer_ = std::move(issuer);
  return *this;
}

CrlBuilder& CrlBuilder::set_this_update(util::UnixTime t) {
  this_update_ = t;
  return *this;
}

CrlBuilder& CrlBuilder::set_next_update(util::UnixTime t) {
  next_update_ = t;
  return *this;
}

CrlBuilder& CrlBuilder::add_revoked(bignum::BigUint serial,
                                    util::UnixTime when) {
  revoked_.push_back(RevokedEntry{std::move(serial), when});
  return *this;
}

Crl CrlBuilder::sign(const crypto::SigningKey& issuer_key) const {
  util::Bytes tbs;
  util::append(tbs, asn1::encode_integer(std::int64_t{1}));  // v2
  util::append(tbs, encode_signature_algorithm(issuer_key.pub.scheme));
  util::append(tbs, issuer_.encode());
  util::append(tbs, asn1::encode_time(this_update_));
  if (next_update_) util::append(tbs, asn1::encode_time(*next_update_));
  if (!revoked_.empty()) {
    std::vector<RevokedEntry> sorted = revoked_;
    std::sort(sorted.begin(), sorted.end(), serial_less);
    sorted.erase(std::unique(sorted.begin(), sorted.end(),
                             [](const RevokedEntry& a, const RevokedEntry& b) {
                               return a.serial == b.serial;
                             }),
                 sorted.end());
    util::Bytes entries;
    for (const RevokedEntry& entry : sorted) {
      util::Bytes one;
      util::append(one, asn1::encode_integer(entry.serial));
      util::append(one, asn1::encode_time(entry.revocation_date));
      util::append(entries, asn1::encode_sequence(one));
    }
    util::append(tbs, asn1::encode_sequence(entries));
  }
  const util::Bytes tbs_der = asn1::encode_sequence(tbs);
  const util::Bytes signature = crypto::sign(issuer_key, tbs_der);

  util::Bytes list;
  util::append(list, tbs_der);
  util::append(list, encode_signature_algorithm(issuer_key.pub.scheme));
  util::append(list, asn1::encode_bit_string(signature));
  const util::Bytes der = asn1::encode_sequence(list);

  auto parsed = parse_crl(der);
  if (!parsed) {
    throw std::logic_error("CrlBuilder: self-produced DER not parseable");
  }
  return std::move(*parsed);
}

}  // namespace sm::x509
