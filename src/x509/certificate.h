// The X.509 certificate model: an in-memory representation plus DER
// parsing, fingerprints, and typed accessors for the extensions the paper's
// linking methodology uses (SAN, AKI/SKI, CRL distribution points, AIA/OCSP,
// certificate-policy OIDs).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "asn1/oid.h"
#include "bignum/biguint.h"
#include "crypto/signature.h"
#include "util/bytes.h"
#include "util/datetime.h"
#include "x509/general_name.h"
#include "x509/name.h"

namespace sm::x509 {

/// The NotBefore/NotAfter pair. NotAfter < NotBefore is representable on
/// purpose: 5.38% of the paper's invalid certificates have a negative
/// validity period.
struct Validity {
  util::UnixTime not_before = 0;
  util::UnixTime not_after = 0;

  friend bool operator==(const Validity&, const Validity&) = default;

  /// Signed validity period in days (may be negative).
  double period_days() const {
    return static_cast<double>(not_after - not_before) /
           static_cast<double>(util::kSecondsPerDay);
  }
};

/// A raw (not yet interpreted) certificate extension.
struct Extension {
  asn1::Oid oid;
  bool critical = false;
  util::Bytes value;  ///< the DER inside the extnValue OCTET STRING

  friend bool operator==(const Extension&, const Extension&) = default;
};

/// Decoded BasicConstraints.
struct BasicConstraints {
  bool is_ca = false;
  std::optional<std::int64_t> path_len;
};

/// KeyUsage named bits (RFC 5280 §4.2.1.3).
enum class KeyUsageBit : std::uint32_t {
  kDigitalSignature = 1u << 0,
  kNonRepudiation = 1u << 1,
  kKeyEncipherment = 1u << 2,
  kDataEncipherment = 1u << 3,
  kKeyAgreement = 1u << 4,
  kKeyCertSign = 1u << 5,
  kCrlSign = 1u << 6,
  kEncipherOnly = 1u << 7,
  kDecipherOnly = 1u << 8,
};

/// A KeyUsage bit mask (OR of KeyUsageBit values).
struct KeyUsage {
  std::uint32_t bits = 0;

  bool has(KeyUsageBit bit) const {
    return bits & static_cast<std::uint32_t>(bit);
  }
  KeyUsage& set(KeyUsageBit bit) {
    bits |= static_cast<std::uint32_t>(bit);
    return *this;
  }
  friend bool operator==(const KeyUsage&, const KeyUsage&) = default;

  /// Comma-separated names, e.g. "digitalSignature, keyCertSign".
  std::string to_string() const;
};

/// Decoded AuthorityInfoAccess: OCSP responder URLs and caIssuers URLs.
struct AuthorityInfoAccess {
  std::vector<std::string> ocsp;
  std::vector<std::string> ca_issuers;
};

/// X.509 certificate versions as they appear on the wire (0-based): 0 = v1,
/// 2 = v3. Invalid values (the paper saw 2, 4 and 13 as *displayed*
/// versions, i.e. raw 1, 3 and 12) are representable and parseable.
struct Certificate {
  std::int64_t raw_version = 2;  ///< wire value; display version is raw+1
  bignum::BigUint serial;
  asn1::Oid signature_algorithm;
  Name issuer;
  Name subject;
  Validity validity;
  crypto::PublicKeyInfo spki;
  std::vector<Extension> extensions;

  util::Bytes tbs_der;    ///< the signed TBSCertificate bytes
  util::Bytes signature;  ///< signature over tbs_der
  util::Bytes der;        ///< the complete certificate encoding

  /// Display version (raw_version + 1), e.g. 3 for a v3 certificate.
  std::int64_t display_version() const { return raw_version + 1; }

  /// True when the display version is one of the legal values {1, 2, 3}.
  bool version_is_legal() const {
    return raw_version >= 0 && raw_version <= 2;
  }

  /// SHA-256 over the full DER — the certificate's identity everywhere in
  /// this library.
  util::Bytes fingerprint_sha256() const;

  /// SHA-1 over the full DER (legacy display fingerprint).
  util::Bytes fingerprint_sha1() const;

  /// First extension with the given OID, if any.
  const Extension* find_extension(const asn1::Oid& oid) const;

  /// Decoded SubjectAltName entries ({} when absent or malformed).
  std::vector<GeneralName> subject_alt_names() const;

  /// AuthorityKeyIdentifier keyIdentifier bytes, if present.
  std::optional<util::Bytes> authority_key_id() const;

  /// SubjectKeyIdentifier bytes, if present.
  std::optional<util::Bytes> subject_key_id() const;

  /// CRL distribution point URLs ({} when absent).
  std::vector<std::string> crl_distribution_points() const;

  /// AuthorityInfoAccess content (empty lists when absent).
  AuthorityInfoAccess authority_info_access() const;

  /// Decoded BasicConstraints, if present.
  std::optional<BasicConstraints> basic_constraints() const;

  /// Decoded KeyUsage, if present and well-formed.
  std::optional<KeyUsage> key_usage() const;

  /// ExtendedKeyUsage purpose OIDs ({} when absent).
  std::vector<asn1::Oid> extended_key_usage() const;

  /// Certificate-policy OIDs ({} when absent) — the "OID" linking feature
  /// of the paper's Table 6.
  std::vector<asn1::Oid> policy_oids() const;

  /// True when issuer and subject encode identically (the cheap half of
  /// self-signed detection; see pki::Verifier for the signature half).
  bool subject_matches_issuer() const { return issuer == subject; }
};

/// Parses a DER certificate. Returns nullopt when the input is not a
/// structurally well-formed Certificate. Semantic nonsense (absurd dates,
/// illegal versions, unknown algorithms) parses fine — rejecting it is the
/// verifier's job, not the parser's.
std::optional<Certificate> parse_certificate(util::BytesView der);

}  // namespace sm::x509
