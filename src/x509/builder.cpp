#include "x509/builder.h"

#include <stdexcept>

#include "asn1/der.h"

namespace sm::x509 {

namespace {

// AlgorithmIdentifier for a subject public key.
util::Bytes encode_spki_algorithm(crypto::SigScheme scheme) {
  util::Bytes children;
  switch (scheme) {
    case crypto::SigScheme::kRsaSha256:
      util::append(children, asn1::encode_oid(asn1::oids::rsa_encryption()));
      util::append(children, asn1::encode_null());
      break;
    case crypto::SigScheme::kSimSha256:
      util::append(children, asn1::encode_oid(asn1::oids::sim_signature()));
      break;
  }
  return asn1::encode_sequence(children);
}

util::Bytes encode_extension(const Extension& ext) {
  util::Bytes children;
  util::append(children, asn1::encode_oid(ext.oid));
  if (ext.critical) util::append(children, asn1::encode_boolean(true));
  util::append(children, asn1::encode_octet_string(ext.value));
  return asn1::encode_sequence(children);
}

}  // namespace

util::Bytes encode_signature_algorithm(crypto::SigScheme scheme) {
  util::Bytes children;
  switch (scheme) {
    case crypto::SigScheme::kRsaSha256:
      util::append(children, asn1::encode_oid(asn1::oids::sha256_with_rsa()));
      util::append(children, asn1::encode_null());
      break;
    case crypto::SigScheme::kSimSha256:
      util::append(children, asn1::encode_oid(asn1::oids::sim_signature()));
      break;
  }
  return asn1::encode_sequence(children);
}

CertificateBuilder& CertificateBuilder::set_raw_version(std::int64_t version) {
  raw_version_ = version;
  return *this;
}

CertificateBuilder& CertificateBuilder::set_serial(bignum::BigUint serial) {
  serial_ = std::move(serial);
  return *this;
}

CertificateBuilder& CertificateBuilder::set_issuer(Name issuer) {
  issuer_ = std::move(issuer);
  return *this;
}

CertificateBuilder& CertificateBuilder::set_subject(Name subject) {
  subject_ = std::move(subject);
  return *this;
}

CertificateBuilder& CertificateBuilder::set_validity(util::UnixTime not_before,
                                                     util::UnixTime not_after) {
  validity_ = Validity{not_before, not_after};
  return *this;
}

CertificateBuilder& CertificateBuilder::set_public_key(
    crypto::PublicKeyInfo key) {
  spki_ = std::move(key);
  return *this;
}

CertificateBuilder& CertificateBuilder::set_subject_alt_names(
    std::vector<GeneralName> names) {
  Extension ext;
  ext.oid = asn1::oids::subject_alt_name();
  ext.value = encode_general_names(names);
  extensions_.push_back(std::move(ext));
  return *this;
}

CertificateBuilder& CertificateBuilder::set_subject_key_id(
    util::Bytes key_id) {
  Extension ext;
  ext.oid = asn1::oids::subject_key_identifier();
  ext.value = asn1::encode_octet_string(key_id);
  extensions_.push_back(std::move(ext));
  return *this;
}

CertificateBuilder& CertificateBuilder::set_authority_key_id(
    util::Bytes key_id) {
  Extension ext;
  ext.oid = asn1::oids::authority_key_identifier();
  const util::Bytes inner =
      asn1::encode_tlv(asn1::context_primitive(0), key_id);
  ext.value = asn1::encode_sequence(inner);
  extensions_.push_back(std::move(ext));
  return *this;
}

CertificateBuilder& CertificateBuilder::set_basic_constraints(
    bool is_ca, std::optional<std::int64_t> path_len) {
  Extension ext;
  ext.oid = asn1::oids::basic_constraints();
  ext.critical = true;
  util::Bytes children;
  if (is_ca) util::append(children, asn1::encode_boolean(true));
  if (path_len) util::append(children, asn1::encode_integer(*path_len));
  ext.value = asn1::encode_sequence(children);
  extensions_.push_back(std::move(ext));
  return *this;
}

CertificateBuilder& CertificateBuilder::set_key_usage(KeyUsage usage) {
  Extension ext;
  ext.oid = asn1::oids::key_usage();
  ext.critical = true;
  ext.value = asn1::encode_named_bit_string(usage.bits, 9);
  extensions_.push_back(std::move(ext));
  return *this;
}

CertificateBuilder& CertificateBuilder::set_extended_key_usage(
    std::vector<asn1::Oid> purposes) {
  Extension ext;
  ext.oid = asn1::oids::extended_key_usage();
  util::Bytes children;
  for (const asn1::Oid& purpose : purposes) {
    util::append(children, asn1::encode_oid(purpose));
  }
  ext.value = asn1::encode_sequence(children);
  extensions_.push_back(std::move(ext));
  return *this;
}

CertificateBuilder& CertificateBuilder::set_crl_distribution_points(
    std::vector<std::string> urls) {
  Extension ext;
  ext.oid = asn1::oids::crl_distribution_points();
  util::Bytes points;
  for (const std::string& url : urls) {
    const util::Bytes uri =
        asn1::encode_tlv(asn1::context_primitive(6), util::to_bytes(url));
    const util::Bytes full_name = asn1::encode_tlv(
        asn1::context_constructed(0), uri);  // fullName GeneralNames
    const util::Bytes dp_name =
        asn1::encode_tlv(asn1::context_constructed(0), full_name);
    util::append(points, asn1::encode_sequence(dp_name));
  }
  ext.value = asn1::encode_sequence(points);
  extensions_.push_back(std::move(ext));
  return *this;
}

CertificateBuilder& CertificateBuilder::set_authority_info_access(
    std::vector<std::string> ocsp_urls,
    std::vector<std::string> ca_issuer_urls) {
  Extension ext;
  ext.oid = asn1::oids::authority_info_access();
  util::Bytes descs;
  const auto add_desc = [&](const asn1::Oid& method, const std::string& url) {
    util::Bytes children;
    util::append(children, asn1::encode_oid(method));
    util::append(children, asn1::encode_tlv(asn1::context_primitive(6),
                                            util::to_bytes(url)));
    util::append(descs, asn1::encode_sequence(children));
  };
  for (const std::string& url : ocsp_urls) {
    add_desc(asn1::oids::ad_ocsp(), url);
  }
  for (const std::string& url : ca_issuer_urls) {
    add_desc(asn1::oids::ad_ca_issuers(), url);
  }
  ext.value = asn1::encode_sequence(descs);
  extensions_.push_back(std::move(ext));
  return *this;
}

CertificateBuilder& CertificateBuilder::set_policy_oids(
    std::vector<asn1::Oid> oids) {
  Extension ext;
  ext.oid = asn1::oids::certificate_policies();
  util::Bytes policies;
  for (const asn1::Oid& oid : oids) {
    const util::Bytes info = asn1::encode_oid(oid);
    util::append(policies, asn1::encode_sequence(info));
  }
  ext.value = asn1::encode_sequence(policies);
  extensions_.push_back(std::move(ext));
  return *this;
}

CertificateBuilder& CertificateBuilder::add_raw_extension(Extension ext) {
  extensions_.push_back(std::move(ext));
  return *this;
}

util::Bytes CertificateBuilder::build_tbs(crypto::SigScheme sig_scheme) const {
  util::Bytes tbs;
  if (raw_version_ != 0) {
    const util::Bytes version = asn1::encode_integer(raw_version_);
    util::append(tbs, asn1::encode_context(0, version));
  }
  util::append(tbs, asn1::encode_integer(serial_));
  util::append(tbs, encode_signature_algorithm(sig_scheme));
  util::append(tbs, issuer_.encode());
  {
    util::Bytes validity;
    util::append(validity, asn1::encode_time(validity_.not_before));
    util::append(validity, asn1::encode_time(validity_.not_after));
    util::append(tbs, asn1::encode_sequence(validity));
  }
  util::append(tbs, subject_.encode());
  {
    util::Bytes spki;
    util::append(spki, encode_spki_algorithm(spki_->scheme));
    util::append(spki, asn1::encode_bit_string(spki_->key));
    util::append(tbs, asn1::encode_sequence(spki));
  }
  if (!extensions_.empty() && raw_version_ != 0) {
    util::Bytes list;
    for (const Extension& ext : extensions_) {
      util::append(list, encode_extension(ext));
    }
    const util::Bytes wrapped = asn1::encode_sequence(list);
    util::append(tbs, asn1::encode_context(3, wrapped));
  }
  return asn1::encode_sequence(tbs);
}

Certificate CertificateBuilder::sign(
    const crypto::SigningKey& issuer_key) const {
  if (!spki_) throw std::logic_error("CertificateBuilder: missing public key");
  const crypto::SigScheme scheme = issuer_key.pub.scheme;
  const util::Bytes tbs = build_tbs(scheme);
  const util::Bytes signature = crypto::sign(issuer_key, tbs);

  util::Bytes cert;
  util::append(cert, tbs);
  util::append(cert, encode_signature_algorithm(scheme));
  util::append(cert, asn1::encode_bit_string(signature));
  const util::Bytes der = asn1::encode_sequence(cert);

  auto parsed = parse_certificate(der);
  if (!parsed) {
    throw std::logic_error("CertificateBuilder: self-produced DER not parseable");
  }
  return std::move(*parsed);
}

}  // namespace sm::x509
