// X.509 CRLs (RFC 5280 §5): the CertificateList structure, its DER
// encode/parse round-trip, and a builder. Revocation is one of the
// invalidity causes the paper's §2 taxonomy lists; together with
// pki::CrlStore this lets the verifier classify revoked certificates.
#pragma once

#include <optional>
#include <vector>

#include "bignum/biguint.h"
#include "crypto/signature.h"
#include "util/bytes.h"
#include "util/datetime.h"
#include "x509/name.h"

namespace sm::x509 {

/// One revokedCertificates entry.
struct RevokedEntry {
  bignum::BigUint serial;
  util::UnixTime revocation_date = 0;

  friend bool operator==(const RevokedEntry&, const RevokedEntry&) = default;
};

/// A parsed CertificateList.
struct Crl {
  Name issuer;
  util::UnixTime this_update = 0;
  std::optional<util::UnixTime> next_update;
  std::vector<RevokedEntry> revoked;  ///< sorted by serial

  asn1::Oid signature_algorithm;
  util::Bytes tbs_der;    ///< the signed TBSCertList bytes
  util::Bytes signature;
  util::Bytes der;        ///< the complete CertificateList encoding

  /// True when `serial` appears in the revoked list (binary search).
  bool is_revoked(const bignum::BigUint& serial) const;

  /// The revocation date for `serial`, if revoked.
  std::optional<util::UnixTime> revocation_date(
      const bignum::BigUint& serial) const;
};

/// Parses a DER CertificateList. Returns nullopt on structural errors.
std::optional<Crl> parse_crl(util::BytesView der);

/// Builds and signs CRLs.
class CrlBuilder {
 public:
  CrlBuilder& set_issuer(Name issuer);
  CrlBuilder& set_this_update(util::UnixTime t);
  CrlBuilder& set_next_update(util::UnixTime t);
  /// Adds one revoked serial. Duplicates are tolerated and deduplicated at
  /// sign() time.
  CrlBuilder& add_revoked(bignum::BigUint serial, util::UnixTime when);

  /// Encodes the TBSCertList, signs it with `issuer_key`, and re-parses the
  /// result. Throws std::logic_error if the encoding fails to re-parse.
  Crl sign(const crypto::SigningKey& issuer_key) const;

 private:
  Name issuer_;
  util::UnixTime this_update_ = 0;
  std::optional<util::UnixTime> next_update_;
  std::vector<RevokedEntry> revoked_;
};

}  // namespace sm::x509
