#include "x509/certificate.h"

#include "asn1/der.h"
#include "util/sha1.h"
#include "util/sha256.h"

namespace sm::x509 {

namespace {

// Parses an AlgorithmIdentifier SEQUENCE, returning its OID (parameters are
// accepted and ignored).
std::optional<asn1::Oid> parse_algorithm(util::BytesView der) {
  const auto outer = asn1::parse_single(der);
  if (!outer || outer->tag != static_cast<std::uint8_t>(asn1::Tag::kSequence)) {
    return std::nullopt;
  }
  asn1::Reader r(outer->content);
  return r.read_oid();
}

// Maps a SPKI algorithm OID to a crypto scheme.
std::optional<crypto::SigScheme> scheme_from_oid(const asn1::Oid& oid) {
  if (oid == asn1::oids::rsa_encryption() ||
      oid == asn1::oids::sha256_with_rsa()) {
    return crypto::SigScheme::kRsaSha256;
  }
  if (oid == asn1::oids::sim_signature()) {
    return crypto::SigScheme::kSimSha256;
  }
  return std::nullopt;
}

}  // namespace

util::Bytes Certificate::fingerprint_sha256() const {
  return util::Sha256::digest(der);
}

util::Bytes Certificate::fingerprint_sha1() const {
  return util::Sha1::digest(der);
}

const Extension* Certificate::find_extension(const asn1::Oid& oid) const {
  for (const Extension& ext : extensions) {
    if (ext.oid == oid) return &ext;
  }
  return nullptr;
}

std::vector<GeneralName> Certificate::subject_alt_names() const {
  const Extension* ext = find_extension(asn1::oids::subject_alt_name());
  if (!ext) return {};
  return decode_general_names(ext->value).value_or(std::vector<GeneralName>{});
}

std::optional<util::Bytes> Certificate::authority_key_id() const {
  const Extension* ext = find_extension(asn1::oids::authority_key_identifier());
  if (!ext) return std::nullopt;
  // AuthorityKeyIdentifier ::= SEQUENCE { keyIdentifier [0] IMPLICIT ... }
  const auto outer = asn1::parse_single(ext->value);
  if (!outer || outer->tag != static_cast<std::uint8_t>(asn1::Tag::kSequence)) {
    return std::nullopt;
  }
  asn1::Reader r(outer->content);
  const auto key_id = r.read_tag(asn1::context_primitive(0));
  if (!key_id) return std::nullopt;
  return util::Bytes(key_id->content.begin(), key_id->content.end());
}

std::optional<util::Bytes> Certificate::subject_key_id() const {
  const Extension* ext = find_extension(asn1::oids::subject_key_identifier());
  if (!ext) return std::nullopt;
  const auto tlv = asn1::parse_single(ext->value);
  if (!tlv || tlv->tag != static_cast<std::uint8_t>(asn1::Tag::kOctetString)) {
    return std::nullopt;
  }
  return util::Bytes(tlv->content.begin(), tlv->content.end());
}

std::vector<std::string> Certificate::crl_distribution_points() const {
  const Extension* ext = find_extension(asn1::oids::crl_distribution_points());
  if (!ext) return {};
  // CRLDistributionPoints ::= SEQUENCE OF DistributionPoint
  // DistributionPoint ::= SEQUENCE { distributionPoint [0] EXPLICIT
  //   DistributionPointName OPTIONAL, ... }
  // DistributionPointName ::= CHOICE { fullName [0] IMPLICIT GeneralNames }
  std::vector<std::string> out;
  const auto outer = asn1::parse_single(ext->value);
  if (!outer || outer->tag != static_cast<std::uint8_t>(asn1::Tag::kSequence)) {
    return out;
  }
  asn1::Reader points(outer->content);
  while (!points.at_end()) {
    const auto dp = points.read(asn1::Tag::kSequence);
    if (!dp) break;
    asn1::Reader dp_reader(dp->content);
    const auto dp_name = dp_reader.read_tag(asn1::context_constructed(0));
    if (!dp_name) continue;
    asn1::Reader name_reader(dp_name->content);
    const auto full_name = name_reader.read_tag(asn1::context_constructed(0));
    if (!full_name) continue;
    asn1::Reader gn_reader(full_name->content);
    while (!gn_reader.at_end()) {
      const auto gn = gn_reader.read_any();
      if (!gn) break;
      if (gn->tag == asn1::context_primitive(6)) {  // URI
        out.push_back(util::to_string(gn->content));
      }
    }
  }
  return out;
}

AuthorityInfoAccess Certificate::authority_info_access() const {
  AuthorityInfoAccess out;
  const Extension* ext = find_extension(asn1::oids::authority_info_access());
  if (!ext) return out;
  // AuthorityInfoAccessSyntax ::= SEQUENCE OF AccessDescription
  // AccessDescription ::= SEQUENCE { accessMethod OID,
  //                                  accessLocation GeneralName }
  const auto outer = asn1::parse_single(ext->value);
  if (!outer || outer->tag != static_cast<std::uint8_t>(asn1::Tag::kSequence)) {
    return out;
  }
  asn1::Reader descs(outer->content);
  while (!descs.at_end()) {
    const auto desc = descs.read(asn1::Tag::kSequence);
    if (!desc) break;
    asn1::Reader desc_reader(desc->content);
    const auto method = desc_reader.read_oid();
    if (!method) continue;
    const auto loc = desc_reader.read_any();
    if (!loc || loc->tag != asn1::context_primitive(6)) continue;
    const std::string url = util::to_string(loc->content);
    if (*method == asn1::oids::ad_ocsp()) {
      out.ocsp.push_back(url);
    } else if (*method == asn1::oids::ad_ca_issuers()) {
      out.ca_issuers.push_back(url);
    }
  }
  return out;
}

std::optional<BasicConstraints> Certificate::basic_constraints() const {
  const Extension* ext = find_extension(asn1::oids::basic_constraints());
  if (!ext) return std::nullopt;
  const auto outer = asn1::parse_single(ext->value);
  if (!outer || outer->tag != static_cast<std::uint8_t>(asn1::Tag::kSequence)) {
    return std::nullopt;
  }
  BasicConstraints out;
  asn1::Reader r(outer->content);
  if (const auto peek = r.peek_tag();
      peek && *peek == static_cast<std::uint8_t>(asn1::Tag::kBoolean)) {
    const auto is_ca = r.read_boolean();
    if (!is_ca) return std::nullopt;
    out.is_ca = *is_ca;
  }
  if (!r.at_end()) {
    const auto path_len = r.read_small_integer();
    if (path_len) out.path_len = *path_len;
  }
  return out;
}

std::string KeyUsage::to_string() const {
  static constexpr const char* kNames[] = {
      "digitalSignature", "nonRepudiation", "keyEncipherment",
      "dataEncipherment", "keyAgreement",   "keyCertSign",
      "cRLSign",          "encipherOnly",   "decipherOnly"};
  std::string out;
  for (unsigned i = 0; i < 9; ++i) {
    if (!(bits & (1u << i))) continue;
    if (!out.empty()) out += ", ";
    out += kNames[i];
  }
  return out;
}

std::optional<KeyUsage> Certificate::key_usage() const {
  const Extension* ext = find_extension(asn1::oids::key_usage());
  if (!ext) return std::nullopt;
  const auto tlv = asn1::parse_single(ext->value);
  if (!tlv || tlv->tag != static_cast<std::uint8_t>(asn1::Tag::kBitString)) {
    return std::nullopt;
  }
  const auto bits = asn1::decode_named_bit_string(tlv->content);
  if (!bits) return std::nullopt;
  return KeyUsage{*bits};
}

std::vector<asn1::Oid> Certificate::extended_key_usage() const {
  const Extension* ext = find_extension(asn1::oids::extended_key_usage());
  if (!ext) return {};
  // ExtKeyUsageSyntax ::= SEQUENCE OF KeyPurposeId
  std::vector<asn1::Oid> out;
  const auto outer = asn1::parse_single(ext->value);
  if (!outer || outer->tag != static_cast<std::uint8_t>(asn1::Tag::kSequence)) {
    return out;
  }
  asn1::Reader purposes(outer->content);
  while (!purposes.at_end()) {
    const auto oid = purposes.read_oid();
    if (!oid) break;
    out.push_back(*oid);
  }
  return out;
}

std::vector<asn1::Oid> Certificate::policy_oids() const {
  const Extension* ext = find_extension(asn1::oids::certificate_policies());
  if (!ext) return {};
  // CertificatePolicies ::= SEQUENCE OF PolicyInformation
  // PolicyInformation ::= SEQUENCE { policyIdentifier OID, ... }
  std::vector<asn1::Oid> out;
  const auto outer = asn1::parse_single(ext->value);
  if (!outer || outer->tag != static_cast<std::uint8_t>(asn1::Tag::kSequence)) {
    return out;
  }
  asn1::Reader policies(outer->content);
  while (!policies.at_end()) {
    const auto info = policies.read(asn1::Tag::kSequence);
    if (!info) break;
    asn1::Reader info_reader(info->content);
    const auto oid = info_reader.read_oid();
    if (oid) out.push_back(*oid);
  }
  return out;
}

std::optional<Certificate> parse_certificate(util::BytesView der) {
  const auto outer = asn1::parse_single(der);
  if (!outer || outer->tag != static_cast<std::uint8_t>(asn1::Tag::kSequence)) {
    return std::nullopt;
  }
  asn1::Reader cert_reader(outer->content);
  const auto tbs = cert_reader.read(asn1::Tag::kSequence);
  if (!tbs) return std::nullopt;

  Certificate cert;
  cert.der.assign(der.begin(), der.end());
  cert.tbs_der.assign(tbs->full.begin(), tbs->full.end());

  // signatureAlgorithm + signatureValue
  const auto sig_alg = cert_reader.read(asn1::Tag::kSequence);
  if (!sig_alg) return std::nullopt;
  {
    asn1::Reader alg_reader(sig_alg->content);
    const auto oid = alg_reader.read_oid();
    if (!oid) return std::nullopt;
    cert.signature_algorithm = *oid;
  }
  const auto sig_bits = cert_reader.read(asn1::Tag::kBitString);
  if (!sig_bits || sig_bits->content.empty() || sig_bits->content[0] != 0 ||
      !cert_reader.at_end()) {
    return std::nullopt;
  }
  cert.signature.assign(sig_bits->content.begin() + 1, sig_bits->content.end());

  // --- TBSCertificate ---
  asn1::Reader tbs_reader(tbs->content);
  if (const auto peek = tbs_reader.peek_tag();
      peek && *peek == asn1::context_constructed(0)) {
    const auto version_wrapper = tbs_reader.read_tag(asn1::context_constructed(0));
    if (!version_wrapper) return std::nullopt;
    asn1::Reader version_reader(version_wrapper->content);
    const auto version = version_reader.read_small_integer();
    if (!version || !version_reader.at_end()) return std::nullopt;
    cert.raw_version = *version;
  } else {
    cert.raw_version = 0;  // DEFAULT v1
  }
  const auto serial = tbs_reader.read_integer();
  if (!serial) return std::nullopt;
  cert.serial = *serial;
  const auto inner_alg = tbs_reader.read(asn1::Tag::kSequence);
  if (!inner_alg) return std::nullopt;
  const auto issuer_tlv = tbs_reader.read(asn1::Tag::kSequence);
  if (!issuer_tlv) return std::nullopt;
  const auto issuer = Name::decode(issuer_tlv->full);
  if (!issuer) return std::nullopt;
  cert.issuer = *issuer;

  const auto validity_tlv = tbs_reader.read(asn1::Tag::kSequence);
  if (!validity_tlv) return std::nullopt;
  {
    asn1::Reader validity_reader(validity_tlv->content);
    const auto not_before = validity_reader.read_time();
    const auto not_after = validity_reader.read_time();
    if (!not_before || !not_after || !validity_reader.at_end()) {
      return std::nullopt;
    }
    cert.validity = Validity{*not_before, *not_after};
  }

  const auto subject_tlv = tbs_reader.read(asn1::Tag::kSequence);
  if (!subject_tlv) return std::nullopt;
  const auto subject = Name::decode(subject_tlv->full);
  if (!subject) return std::nullopt;
  cert.subject = *subject;

  // SubjectPublicKeyInfo ::= SEQUENCE { algorithm, subjectPublicKey BIT STR }
  const auto spki = tbs_reader.read(asn1::Tag::kSequence);
  if (!spki) return std::nullopt;
  {
    asn1::Reader spki_reader(spki->content);
    const auto alg = spki_reader.read(asn1::Tag::kSequence);
    if (!alg) return std::nullopt;
    const auto alg_oid = parse_algorithm(alg->full);
    if (!alg_oid) return std::nullopt;
    const auto scheme = scheme_from_oid(*alg_oid);
    if (!scheme) return std::nullopt;
    cert.spki.scheme = *scheme;
    const auto key_bits = spki_reader.read(asn1::Tag::kBitString);
    if (!key_bits || key_bits->content.empty() || key_bits->content[0] != 0 ||
        !spki_reader.at_end()) {
      return std::nullopt;
    }
    cert.spki.key.assign(key_bits->content.begin() + 1,
                         key_bits->content.end());
  }

  // extensions [3] EXPLICIT SEQUENCE OF Extension OPTIONAL
  if (const auto peek = tbs_reader.peek_tag();
      peek && *peek == asn1::context_constructed(3)) {
    const auto wrapper = tbs_reader.read_tag(asn1::context_constructed(3));
    if (!wrapper) return std::nullopt;
    asn1::Reader wrapper_reader(wrapper->content);
    const auto list = wrapper_reader.read(asn1::Tag::kSequence);
    if (!list || !wrapper_reader.at_end()) return std::nullopt;
    asn1::Reader ext_reader(list->content);
    while (!ext_reader.at_end()) {
      const auto ext_tlv = ext_reader.read(asn1::Tag::kSequence);
      if (!ext_tlv) return std::nullopt;
      asn1::Reader one(ext_tlv->content);
      Extension ext;
      const auto oid = one.read_oid();
      if (!oid) return std::nullopt;
      ext.oid = *oid;
      if (const auto p = one.peek_tag();
          p && *p == static_cast<std::uint8_t>(asn1::Tag::kBoolean)) {
        const auto critical = one.read_boolean();
        if (!critical) return std::nullopt;
        ext.critical = *critical;
      }
      const auto value = one.read(asn1::Tag::kOctetString);
      if (!value || !one.at_end()) return std::nullopt;
      ext.value.assign(value->content.begin(), value->content.end());
      cert.extensions.push_back(std::move(ext));
    }
  }
  if (!tbs_reader.at_end()) return std::nullopt;
  return cert;
}

}  // namespace sm::x509
