// PEM (RFC 7468) armor for certificates, plus the base64 codec beneath it.
// Real scan corpora and CA bundles arrive PEM-encoded; this is the bridge
// between them and the DER-level API.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "x509/certificate.h"

namespace sm::x509 {

/// Encodes bytes as standard base64 (RFC 4648, with padding).
std::string base64_encode(util::BytesView data);

/// Decodes base64; whitespace is ignored. Returns nullopt on any other
/// non-alphabet character, bad padding, or truncated input.
std::optional<util::Bytes> base64_decode(std::string_view text);

/// Wraps DER bytes in a PEM block with the given label, 64-column body:
///   -----BEGIN <label>-----
///   ...
///   -----END <label>-----
std::string pem_encode(util::BytesView der, const std::string& label);

/// One block parsed from PEM text.
struct PemBlock {
  std::string label;  ///< e.g. "CERTIFICATE"
  util::Bytes der;
};

/// Extracts all well-formed PEM blocks from `text` (ignores surrounding
/// prose, as real bundles contain comments between blocks). Blocks with
/// mismatched BEGIN/END labels or undecodable bodies are skipped.
std::vector<PemBlock> pem_decode_all(const std::string& text);

/// Convenience: the certificate's PEM rendering ("CERTIFICATE" label).
std::string to_pem(const Certificate& cert);

/// Convenience: parses every CERTIFICATE block in `text`. Structurally
/// invalid certificates are skipped (count them via the difference with
/// pem_decode_all if needed).
std::vector<Certificate> certificates_from_pem(const std::string& text);

}  // namespace sm::x509
