#include "x509/name.h"

namespace sm::x509 {

namespace {

// Short labels for the attribute types we emit; unknown OIDs render dotted.
std::string label_for(const asn1::Oid& oid) {
  if (oid == asn1::oids::common_name()) return "CN";
  if (oid == asn1::oids::organization()) return "O";
  if (oid == asn1::oids::organizational_unit()) return "OU";
  if (oid == asn1::oids::country()) return "C";
  if (oid == asn1::oids::locality()) return "L";
  if (oid == asn1::oids::state()) return "ST";
  return oid.to_string();
}

}  // namespace

std::optional<std::string> Name::get(const asn1::Oid& type) const {
  for (const NameAttribute& attr : attributes) {
    if (attr.type == type) return attr.value;
  }
  return std::nullopt;
}

std::string Name::common_name() const {
  return get(asn1::oids::common_name()).value_or("");
}

Name& Name::add(const asn1::Oid& type, std::string value) {
  attributes.push_back(NameAttribute{type, std::move(value)});
  return *this;
}

Name Name::with_common_name(std::string cn) {
  Name n;
  n.add(asn1::oids::common_name(), std::move(cn));
  return n;
}

std::string Name::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < attributes.size(); ++i) {
    if (i) out += ", ";
    out += label_for(attributes[i].type);
    out += '=';
    out += attributes[i].value;
  }
  return out;
}

util::Bytes Name::encode() const {
  util::Bytes rdns;
  for (const NameAttribute& attr : attributes) {
    util::Bytes atv;
    util::append(atv, asn1::encode_oid(attr.type));
    util::append(atv, asn1::encode_utf8_string(attr.value));
    const util::Bytes atv_seq = asn1::encode_sequence(atv);
    util::append(rdns, asn1::encode_set(atv_seq));
  }
  return asn1::encode_sequence(rdns);
}

std::optional<Name> Name::decode(util::BytesView der) {
  const auto outer = asn1::parse_single(der);
  if (!outer || outer->tag != static_cast<std::uint8_t>(asn1::Tag::kSequence)) {
    return std::nullopt;
  }
  Name out;
  asn1::Reader rdn_reader(outer->content);
  while (!rdn_reader.at_end()) {
    const auto set = rdn_reader.read(asn1::Tag::kSet);
    if (!set) return std::nullopt;
    asn1::Reader set_reader(set->content);
    while (!set_reader.at_end()) {
      const auto atv = set_reader.read(asn1::Tag::kSequence);
      if (!atv) return std::nullopt;
      asn1::Reader atv_reader(atv->content);
      const auto oid = atv_reader.read_oid();
      if (!oid) return std::nullopt;
      const auto value = atv_reader.read_string();
      if (!value || !atv_reader.at_end()) return std::nullopt;
      out.attributes.push_back(NameAttribute{*oid, *value});
    }
  }
  return out;
}

}  // namespace sm::x509
