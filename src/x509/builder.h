// CertificateBuilder — constructs and signs certificates.
//
// The builder produces the DER TBSCertificate, signs it with the supplied
// issuer key (self-signing when the subject's own key is passed), and
// returns a fully-populated Certificate whose `der` round-trips through
// parse_certificate().
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "crypto/signature.h"
#include "x509/certificate.h"

namespace sm::x509 {

/// Fluent builder for x509::Certificate. All setters return *this.
class CertificateBuilder {
 public:
  /// Wire version (0 = v1, 2 = v3). Values outside {0,1,2} are encoded
  /// verbatim so the simulator can produce the illegal-version certificates
  /// the paper disregards. v1 certificates never emit extensions.
  CertificateBuilder& set_raw_version(std::int64_t version);

  CertificateBuilder& set_serial(bignum::BigUint serial);
  CertificateBuilder& set_issuer(Name issuer);
  CertificateBuilder& set_subject(Name subject);
  CertificateBuilder& set_validity(util::UnixTime not_before,
                                   util::UnixTime not_after);

  /// The subject's public key (goes into the SPKI).
  CertificateBuilder& set_public_key(crypto::PublicKeyInfo key);

  /// Adds a SubjectAltName extension (one call; pass all names).
  CertificateBuilder& set_subject_alt_names(std::vector<GeneralName> names);

  /// Adds SubjectKeyIdentifier with the given bytes.
  CertificateBuilder& set_subject_key_id(util::Bytes key_id);

  /// Adds AuthorityKeyIdentifier with the given keyIdentifier bytes.
  CertificateBuilder& set_authority_key_id(util::Bytes key_id);

  /// Adds BasicConstraints (critical, per CA convention).
  CertificateBuilder& set_basic_constraints(
      bool is_ca, std::optional<std::int64_t> path_len = std::nullopt);

  /// Adds a (critical) KeyUsage extension.
  CertificateBuilder& set_key_usage(KeyUsage usage);

  /// Adds an ExtendedKeyUsage extension with the given purpose OIDs.
  CertificateBuilder& set_extended_key_usage(std::vector<asn1::Oid> purposes);

  /// Adds a CRLDistributionPoints extension with the given URLs.
  CertificateBuilder& set_crl_distribution_points(
      std::vector<std::string> urls);

  /// Adds an AuthorityInfoAccess extension.
  CertificateBuilder& set_authority_info_access(
      std::vector<std::string> ocsp_urls,
      std::vector<std::string> ca_issuer_urls);

  /// Adds a CertificatePolicies extension with the given policy OIDs.
  CertificateBuilder& set_policy_oids(std::vector<asn1::Oid> oids);

  /// Adds an arbitrary raw extension (already-encoded inner value).
  CertificateBuilder& add_raw_extension(Extension ext);

  /// Builds the TBS, signs with `issuer_key`, and parses the result back so
  /// every field of the returned Certificate reflects the actual encoding.
  /// Throws std::logic_error if mandatory fields are missing or the result
  /// fails to re-parse (which would indicate an encoder bug).
  Certificate sign(const crypto::SigningKey& issuer_key) const;

 private:
  util::Bytes build_tbs(crypto::SigScheme sig_scheme) const;

  std::int64_t raw_version_ = 2;
  bignum::BigUint serial_ = bignum::BigUint(1);
  Name issuer_;
  Name subject_;
  Validity validity_{};
  std::optional<crypto::PublicKeyInfo> spki_;
  std::vector<Extension> extensions_;
};

/// The AlgorithmIdentifier DER for a signature scheme (exposed for tests).
util::Bytes encode_signature_algorithm(crypto::SigScheme scheme);

}  // namespace sm::x509
