// The certificate features the paper's linking methodology considers
// (Tables 5 and 6): the value extractor that turns a CertRecord into a
// per-feature key string.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "scan/cert_record.h"

namespace sm::linking {

/// A linkable certificate field, in the paper's Table 6 column order.
enum class Feature : std::uint8_t {
  kPublicKey = 0,
  kNotBefore,
  kCommonName,
  kNotAfter,
  kIssuerSerial,  ///< Issuer Name + Serial Number ("IN + SN")
  kSan,
  kCrl,
  kAia,
  kOcsp,
  kOid,
};

/// All features, Table 6 order.
inline constexpr std::array<Feature, 10> kAllFeatures = {
    Feature::kPublicKey, Feature::kNotBefore,   Feature::kCommonName,
    Feature::kNotAfter,  Feature::kIssuerSerial, Feature::kSan,
    Feature::kCrl,       Feature::kAia,          Feature::kOcsp,
    Feature::kOid,
};

/// Display name, e.g. "Public Key", "IN + SN".
std::string to_string(Feature feature);

/// The feature's key string for a certificate, or "" when the feature is
/// absent / not applicable. When `exclude_ip_common_names` is set, Common
/// Names that parse as IPv4 addresses yield "" (the paper's §6.4.1 rule —
/// 46.9% of invalid CNs are IP-formatted and must not drive linking).
std::string feature_value(const scan::CertRecord& cert, Feature feature,
                          bool exclude_ip_common_names = true);

}  // namespace sm::linking
