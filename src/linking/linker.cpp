#include "linking/linker.h"

#include <algorithm>
#include <map>
#include <span>
#include <unordered_map>

namespace sm::linking {

namespace {

bool version_legal(const scan::CertRecord& cert) {
  return cert.raw_version >= 0 && cert.raw_version <= 2;
}

/// Chunk size for parallel loops over groups: groups are cheap
/// individually, so batch enough of them to amortize scheduling.
constexpr std::size_t kGroupChunk = 32;

}  // namespace

Linker::Linker(const analysis::DatasetIndex& index, LinkerConfig config,
               util::ThreadPool* pool)
    : index_(&index),
      spine_(&index.corpus()),
      config_(config),
      pool_(pool != nullptr ? pool : &util::ThreadPool::global()) {
  const auto& archive = index.archive();
  const auto& certs = archive.certs();
  const std::size_t n = certs.size();

  // §6.2 duplicate filter + invalid/observed/version gating.
  eligible_.assign(n, false);
  for (scan::CertId id = 0; id < n; ++id) {
    const analysis::CertStats& stats = index.stats(id);
    const scan::CertRecord& cert = certs[id];
    if (cert.valid || stats.scans_seen == 0 || !version_legal(cert)) continue;
    if (stats.max_ips_in_scan > config_.dup_ip_threshold) continue;
    if (config_.exclude_always_at_threshold &&
        stats.min_ips_in_scan == config_.dup_ip_threshold &&
        stats.max_ips_in_scan == config_.dup_ip_threshold) {
      continue;  // exactly two IPs in every scan: two devices, one cert
    }
    eligible_[id] = true;
    ++eligible_count_;
  }

  // Observation lists, resolved ASes, and ground-truth device attribution
  // all come from the shared corpus spine now — no per-layer CSR rebuild,
  // no per-observation as_of calls.
  features_.emplace(certs, eligible_, config_.exclude_ip_common_names, pool_);
}

std::vector<FeatureUniqueness> Linker::feature_uniqueness() const {
  // Single pass over the interned CSR lists: `applicable` is the number of
  // interned (eligible, non-empty) certs, `non_unique` the members of
  // values carried by >= 2 certs.
  std::vector<FeatureUniqueness> out(kAllFeatures.size());
  for (std::size_t fi = 0; fi < kAllFeatures.size(); ++fi) {
    const Feature feature = kAllFeatures[fi];
    std::uint64_t applicable = 0;
    std::uint64_t non_unique = 0;
    const std::uint32_t values = features_->value_count(feature);
    for (std::uint32_t v = 0; v < values; ++v) {
      const std::uint32_t members = features_->multiplicity(feature, v);
      applicable += members;
      if (members >= 2) non_unique += members;
    }
    out[fi] = FeatureUniqueness{feature, applicable, non_unique};
  }
  return out;
}

bool Linker::group_passes_overlap_rule(
    const std::vector<scan::CertId>& certs) const {
  // Sorted by first_scan; a pair (i earlier, j later) overlaps by more than
  // `max_overlap_scans` iff min(last_i, last_j) >= first_j + max_overlap,
  // which given running maxL reduces to one comparison per element.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> spans;
  spans.reserve(certs.size());
  for (const scan::CertId id : certs) {
    const analysis::CertStats& stats = index_->stats(id);
    spans.emplace_back(stats.first_scan, stats.last_scan);
  }
  std::sort(spans.begin(), spans.end());
  std::uint32_t max_last = 0;
  bool first = true;
  for (const auto& [first_scan, last_scan] : spans) {
    if (!first) {
      const std::uint32_t limit = first_scan + config_.max_overlap_scans;
      if (max_last >= limit && last_scan >= limit) return false;
    }
    max_last = first ? last_scan : std::max(max_last, last_scan);
    first = false;
  }
  return true;
}

FieldResult Linker::link_field(Feature feature,
                               const std::vector<bool>& mask) const {
  // Phase 1 (serial, integer-only): candidate groups from the interned CSR
  // lists, in value-id order — deterministic by construction.
  std::vector<std::vector<scan::CertId>> candidates;
  const std::uint32_t values = features_->value_count(feature);
  for (std::uint32_t v = 0; v < values; ++v) {
    const FeatureIndex::CertSpan span = features_->certs_with_value(feature, v);
    if (span.size() < 2) continue;
    std::vector<scan::CertId> group_certs;
    group_certs.reserve(span.size());
    for (const scan::CertId id : span) {
      if (mask[id]) group_certs.push_back(id);
    }
    if (group_certs.size() < 2) continue;
    candidates.push_back(std::move(group_certs));
  }

  // Phase 2 (parallel): the per-group work — overlap rule + modal-location
  // counting — into index-addressed slots.
  struct Evaluated {
    bool accepted = false;
    GroupCounts counts;
  };
  std::vector<Evaluated> evaluated(candidates.size());
  pool_->parallel_for(
      candidates.size(), kGroupChunk, [&](std::size_t begin, std::size_t end) {
        for (std::size_t g = begin; g < end; ++g) {
          if (!group_passes_overlap_rule(candidates[g])) continue;
          evaluated[g].accepted = true;
          evaluated[g].counts = group_counts(candidates[g]);
        }
      });

  // Phase 3 (serial): reduce in candidate order.
  FieldResult out;
  out.feature = feature;
  std::uint64_t ip_max = 0, slash24_max = 0, as_max = 0, total_scans = 0;
  for (std::size_t g = 0; g < candidates.size(); ++g) {
    if (!evaluated[g].accepted) continue;
    out.total_linked += candidates[g].size();
    ip_max += evaluated[g].counts.ip_modal;
    slash24_max += evaluated[g].counts.slash24_modal;
    as_max += evaluated[g].counts.as_modal;
    total_scans += evaluated[g].counts.scans;
    out.groups.push_back(LinkedGroup{feature, std::move(candidates[g])});
  }
  if (total_scans > 0) {
    const double denom = static_cast<double>(total_scans);
    out.consistency.ip = static_cast<double>(ip_max) / denom;
    out.consistency.slash24 = static_cast<double>(slash24_max) / denom;
    out.consistency.as_level = static_cast<double>(as_max) / denom;
  }
  return out;
}

Linker::GroupCounts Linker::group_counts(
    const std::vector<scan::CertId>& certs) const {
  // Per scan, the set of locations where the group was seen; consistency
  // counts the scans containing the modal location.
  std::unordered_map<std::uint32_t, std::uint32_t> ip_scans, s24_scans,
      as_scans;
  // Gather (scan, location) tuples from the spine's observation and ASN
  // columns, segment per scan via sort.
  std::vector<ObsRef> all;
  for (const scan::CertId id : certs) {
    const std::span<const corpus::Obs> obs = spine_->observations(id);
    const std::span<const net::Asn> asns = spine_->asns(id);
    for (std::size_t i = 0; i < obs.size(); ++i) {
      all.push_back(ObsRef{obs[i].scan, obs[i].ip, asns[i]});
    }
  }
  std::sort(all.begin(), all.end(), [](const ObsRef& a, const ObsRef& b) {
    return a.scan < b.scan;
  });
  // For each scan, count each distinct location once.
  GroupCounts out;
  std::vector<std::uint32_t> ips, s24s, ases;
  const auto count_unique = [](std::vector<std::uint32_t>& keys,
                               std::unordered_map<std::uint32_t, std::uint32_t>&
                                   counter) {
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    for (const std::uint32_t key : keys) ++counter[key];
    keys.clear();
  };
  std::size_t i = 0;
  while (i < all.size()) {
    const std::uint32_t scan = all[i].scan;
    std::size_t j = i;
    while (j < all.size() && all[j].scan == scan) {
      ips.push_back(all[j].ip);
      s24s.push_back(all[j].ip & 0xffffff00);
      ases.push_back(all[j].asn);
      ++j;
    }
    count_unique(ips, ip_scans);
    count_unique(s24s, s24_scans);
    count_unique(ases, as_scans);
    ++out.scans;
    i = j;
  }
  const auto modal = [](const auto& counter) {
    std::uint32_t best = 0;
    for (const auto& [key, count] : counter) best = std::max(best, count);
    return best;
  };
  out.ip_modal = modal(ip_scans);
  out.slash24_modal = modal(s24_scans);
  out.as_modal = modal(as_scans);
  return out;
}

Consistency Linker::group_consistency(const LinkedGroup& group) const {
  const GroupCounts counts = group_counts(group.certs);
  Consistency out;
  if (counts.scans > 0) {
    const double denom = static_cast<double>(counts.scans);
    out.ip = static_cast<double>(counts.ip_modal) / denom;
    out.slash24 = static_cast<double>(counts.slash24_modal) / denom;
    out.as_level = static_cast<double>(counts.as_modal) / denom;
  }
  return out;
}

std::vector<FieldResult> Linker::evaluate_all_fields() const {
  // One field per chunk; each field's own group loop parallelizes too when
  // called standalone (nested regions run inline on the worker).
  std::vector<FieldResult> results(kAllFeatures.size());
  pool_->parallel_for(kAllFeatures.size(), 1,
                      [&](std::size_t begin, std::size_t end) {
                        for (std::size_t fi = begin; fi < end; ++fi) {
                          results[fi] = link_field(kAllFeatures[fi], eligible_);
                        }
                      });
  // Uniquely-linked: certificates appearing in exactly one field's groups.
  const std::size_t n = index_->archive().certs().size();
  std::vector<std::uint8_t> link_count(n, 0);
  for (const FieldResult& result : results) {
    for (const LinkedGroup& group : result.groups) {
      for (const scan::CertId id : group.certs) {
        if (link_count[id] < 255) ++link_count[id];
      }
    }
  }
  for (FieldResult& result : results) {
    for (const LinkedGroup& group : result.groups) {
      for (const scan::CertId id : group.certs) {
        if (link_count[id] == 1) ++result.uniquely_linked;
      }
    }
  }
  return results;
}

IterativeResult Linker::link_iteratively() const {
  const std::vector<FieldResult> all = evaluate_all_fields();
  // §6.4.3: exclude Not Before, Not After, and IN+SN (insufficient
  // consistency); order the rest by AS-level consistency, descending.
  std::vector<const FieldResult*> usable;
  for (const FieldResult& result : all) {
    if (result.feature == Feature::kNotBefore ||
        result.feature == Feature::kNotAfter ||
        result.feature == Feature::kIssuerSerial) {
      continue;
    }
    usable.push_back(&result);
  }
  std::sort(usable.begin(), usable.end(),
            [](const FieldResult* a, const FieldResult* b) {
              return a->consistency.as_level > b->consistency.as_level;
            });
  std::vector<Feature> order;
  order.reserve(usable.size());
  for (const FieldResult* result : usable) order.push_back(result->feature);
  return link_iteratively(order);
}

IterativeResult Linker::link_iteratively(
    const std::vector<Feature>& order) const {
  IterativeResult out;
  out.order = order;
  std::vector<bool> mask = eligible_;
  for (const Feature feature : order) {
    FieldResult result = link_field(feature, mask);
    for (LinkedGroup& group : result.groups) {
      for (const scan::CertId id : group.certs) mask[id] = false;
      out.linked_certs += group.certs.size();
      out.groups.push_back(std::move(group));
    }
  }
  return out;
}

LinkingGain Linker::compare_with_original(
    const IterativeResult& result) const {
  LinkingGain out;
  out.eligible_certs = eligible_count_;
  const auto& scans = index_->archive().scans();

  // Before: every eligible certificate is its own entity.
  std::uint64_t before_single = 0;
  double before_days = 0;
  for (scan::CertId id = 0; id < eligible_.size(); ++id) {
    if (!eligible_[id]) continue;
    const analysis::CertStats& stats = index_->stats(id);
    if (stats.scans_seen == 1) ++before_single;
    before_days += index_->lifetime_days(id);
  }

  // After: linked groups become one entity each.
  std::vector<bool> linked(eligible_.size(), false);
  std::uint64_t after_entities = 0, after_single = 0;
  double after_days = 0;
  for (const LinkedGroup& group : result.groups) {
    std::uint32_t first = 0xffffffff, last = 0;
    for (const scan::CertId id : group.certs) {
      linked[id] = true;
      const analysis::CertStats& stats = index_->stats(id);
      first = std::min(first, stats.first_scan);
      last = std::max(last, stats.last_scan);
    }
    ++after_entities;
    if (first == last) ++after_single;
    const double days =
        first == last
            ? 1.0
            : static_cast<double>(scans[last].event.start -
                                  scans[first].event.start) /
                      static_cast<double>(util::kSecondsPerDay) +
                  1.0;
    after_days += days;
  }
  for (scan::CertId id = 0; id < eligible_.size(); ++id) {
    if (!eligible_[id] || linked[id]) continue;
    ++after_entities;
    const analysis::CertStats& stats = index_->stats(id);
    if (stats.scans_seen == 1) ++after_single;
    after_days += index_->lifetime_days(id);
  }

  out.entities_after = after_entities;
  if (out.eligible_certs > 0) {
    out.single_scan_fraction_before =
        static_cast<double>(before_single) /
        static_cast<double>(out.eligible_certs);
    out.mean_lifetime_before_days =
        before_days / static_cast<double>(out.eligible_certs);
  }
  if (after_entities > 0) {
    out.single_scan_fraction_after =
        static_cast<double>(after_single) / static_cast<double>(after_entities);
    out.mean_lifetime_after_days =
        after_days / static_cast<double>(after_entities);
  }
  return out;
}

TruthScore Linker::score_against_truth(const IterativeResult& result) const {
  TruthScore out;
  for (const LinkedGroup& group : result.groups) {
    const std::uint64_t k = group.certs.size();
    out.linked_pairs += k * (k - 1) / 2;
    std::map<scan::DeviceId, std::uint64_t> by_device;
    for (const scan::CertId id : group.certs) {
      ++by_device[spine_->first_device(id)];
    }
    for (const auto& [device, count] : by_device) {
      if (device == scan::kNoDevice) continue;
      out.correct_pairs += count * (count - 1) / 2;
    }
  }
  std::map<scan::DeviceId, std::uint64_t> eligible_per_device;
  for (scan::CertId id = 0; id < eligible_.size(); ++id) {
    if (!eligible_[id]) continue;
    const scan::DeviceId device = spine_->first_device(id);
    if (device == scan::kNoDevice) continue;
    ++eligible_per_device[device];
  }
  for (const auto& [device, count] : eligible_per_device) {
    out.possible_pairs += count * (count - 1) / 2;
  }
  return out;
}

}  // namespace sm::linking
