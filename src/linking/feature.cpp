#include "linking/feature.h"

#include <cstdio>

#include "net/ipv4.h"

namespace sm::linking {

std::string to_string(Feature feature) {
  switch (feature) {
    case Feature::kPublicKey:
      return "Public Key";
    case Feature::kNotBefore:
      return "Not Before";
    case Feature::kCommonName:
      return "Common Name";
    case Feature::kNotAfter:
      return "Not After";
    case Feature::kIssuerSerial:
      return "IN + SN";
    case Feature::kSan:
      return "SAN";
    case Feature::kCrl:
      return "CRL";
    case Feature::kAia:
      return "AIA";
    case Feature::kOcsp:
      return "OCSP";
    case Feature::kOid:
      return "OID";
  }
  return "?";
}

std::string feature_value(const scan::CertRecord& cert, Feature feature,
                          bool exclude_ip_common_names) {
  switch (feature) {
    case Feature::kPublicKey: {
      char buf[20];
      std::snprintf(buf, sizeof(buf), "%016llx",
                    static_cast<unsigned long long>(cert.key_fingerprint));
      return buf;
    }
    case Feature::kNotBefore:
      return std::to_string(cert.not_before);
    case Feature::kCommonName:
      if (cert.subject_cn.empty()) return {};
      if (exclude_ip_common_names && net::looks_like_ipv4(cert.subject_cn)) {
        return {};
      }
      return cert.subject_cn;
    case Feature::kNotAfter:
      return std::to_string(cert.not_after);
    case Feature::kIssuerSerial:
      if (cert.issuer_dn.empty() && cert.serial_hex.empty()) return {};
      return cert.issuer_dn + "#" + cert.serial_hex;
    case Feature::kSan:
      return cert.san_joined();
    case Feature::kCrl:
      return cert.crl_url;
    case Feature::kAia:
      return cert.aia_url;
    case Feature::kOcsp:
      return cert.ocsp_url;
    case Feature::kOid:
      return cert.policy_oid;
  }
  return {};
}

}  // namespace sm::linking
