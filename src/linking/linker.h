// The paper's §6 linking methodology — the core contribution of this
// library.
//
// Pipeline:
//   1. Scan-duplicate filter (§6.2): a certificate is "unique to a device"
//      only if it is never advertised from more than two IPs in one scan,
//      and not from exactly two IPs in *every* scan.
//   2. Per-field grouping (§6.3.2): certificates sharing a field value form
//      a candidate group; the group is accepted iff no two member lifetimes
//      overlap by more than one scan (devices may change IP — and reissue —
//      mid-scan, hence the one-scan allowance).
//   3. Consistency evaluation (§6.4.1): for each accepted group, the
//      fraction of scans in which the group appears at its modal IP, /24,
//      and AS; aggregated over groups weighted by scans observed.
//   4. Iterative multi-field linking (§6.4.3): fields ranked by AS-level
//      consistency (Not Before / Not After / IN+SN excluded as too weak),
//      each field links what it can, linked certificates leave the pool.
//
// Because the simulator knows the true device behind every observation,
// this module also scores linking precision/recall against ground truth —
// the validation the paper lists as future work.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/dataset.h"
#include "linking/feature.h"
#include "linking/feature_index.h"
#include "util/thread_pool.h"

namespace sm::linking {

/// Tunables; the defaults are the paper's choices.
struct LinkerConfig {
  /// Maximum lifetime overlap (in scans) tolerated inside a linked group.
  std::uint32_t max_overlap_scans = 1;
  /// Drop IPv4-formatted Common Names from CN linking (§6.4.1).
  bool exclude_ip_common_names = true;
  /// §6.2 uniqueness threshold: certs on more than this many IPs in any
  /// single scan are excluded.
  std::uint32_t dup_ip_threshold = 2;
  /// Also exclude certs advertised from exactly `dup_ip_threshold` IPs in
  /// *every* scan (the two-devices-with-one-cert signature).
  bool exclude_always_at_threshold = true;
};

/// Per-group location-consistency values (§6.4.1).
struct Consistency {
  double ip = 0;
  double slash24 = 0;
  double as_level = 0;
};

/// One accepted linked group: >= 2 certificates believed to be one device.
struct LinkedGroup {
  Feature feature = Feature::kPublicKey;  ///< the field that linked it
  std::vector<scan::CertId> certs;
};

/// Table 5 row: how unique a feature's values are across invalid certs.
struct FeatureUniqueness {
  Feature feature = Feature::kPublicKey;
  std::uint64_t applicable = 0;  ///< certs where the feature has a value
  std::uint64_t non_unique = 0;  ///< certs sharing their value with another
  double non_unique_fraction() const {
    return applicable == 0 ? 0.0
                           : static_cast<double>(non_unique) /
                                 static_cast<double>(applicable);
  }
};

/// Table 6 column: one field's linking performance.
struct FieldResult {
  Feature feature = Feature::kPublicKey;
  std::uint64_t total_linked = 0;     ///< certs in accepted groups
  std::uint64_t uniquely_linked = 0;  ///< linked by this field only
  Consistency consistency;
  std::vector<LinkedGroup> groups;
};

/// §6.4.3's output: the final multi-field linking.
struct IterativeResult {
  std::vector<Feature> order;      ///< fields in the order applied
  std::vector<LinkedGroup> groups;
  std::uint64_t linked_certs = 0;
};

/// §6.4.4's before/after comparison.
struct LinkingGain {
  std::uint64_t eligible_certs = 0;
  std::uint64_t entities_after = 0;  ///< groups + remaining singletons
  double single_scan_fraction_before = 0;
  double single_scan_fraction_after = 0;
  double mean_lifetime_before_days = 0;
  double mean_lifetime_after_days = 0;
};

/// Ground-truth scoring (simulator-only superpower).
struct TruthScore {
  std::uint64_t linked_pairs = 0;   ///< Σ C(|group|, 2)
  std::uint64_t correct_pairs = 0;  ///< pairs truly from one device
  std::uint64_t possible_pairs = 0; ///< Σ_device C(#eligible certs, 2)
  double precision() const {
    return linked_pairs == 0 ? 1.0
                             : static_cast<double>(correct_pairs) /
                                   static_cast<double>(linked_pairs);
  }
  double recall() const {
    return possible_pairs == 0 ? 1.0
                               : static_cast<double>(correct_pairs) /
                                     static_cast<double>(possible_pairs);
  }
};

/// The linking engine. Construct once per dataset; all methods are const.
///
/// Construction interns every feature value into a FeatureIndex, and the
/// hot paths (per-field grouping, consistency evaluation) run on a
/// ThreadPool. Results are bit-identical for every thread count: parallel
/// regions write index-addressed slots and are reduced in deterministic
/// order.
class Linker {
 public:
  /// `pool` is borrowed for the linker's lifetime; null means the
  /// process-global pool.
  explicit Linker(const analysis::DatasetIndex& index,
                  LinkerConfig config = {}, util::ThreadPool* pool = nullptr);

  /// Which certificates are linking-eligible: invalid, observed, legal
  /// version, and passing the §6.2 duplicate filter.
  const std::vector<bool>& eligible() const { return eligible_; }
  std::uint64_t eligible_count() const { return eligible_count_; }

  /// Table 5.
  std::vector<FeatureUniqueness> feature_uniqueness() const;

  /// Links one field over the certificates where `mask` is true.
  FieldResult link_field(Feature feature, const std::vector<bool>& mask) const;

  /// Table 6: every field independently over the full eligible set, with
  /// uniquely-linked counts filled in.
  std::vector<FieldResult> evaluate_all_fields() const;

  /// §6.4.3: iterative linking with the field order derived from
  /// `evaluate_all_fields` (AS-consistency descending; Not Before /
  /// Not After / IN+SN excluded).
  IterativeResult link_iteratively() const;

  /// Iterative linking with an explicit field order (for ablations).
  IterativeResult link_iteratively(const std::vector<Feature>& order) const;

  /// §6.4.4: lifetime improvement from linking.
  LinkingGain compare_with_original(const IterativeResult& result) const;

  /// Precision/recall against simulator ground truth.
  TruthScore score_against_truth(const IterativeResult& result) const;

  /// Consistency of a single group (exposed for tests and Figure 9).
  Consistency group_consistency(const LinkedGroup& group) const;

  /// The ground-truth device of a certificate (kNoDevice when unknown).
  scan::DeviceId true_device(scan::CertId cert) const {
    return spine_->first_device(cert);
  }

 private:
  struct ObsRef {
    std::uint32_t scan = 0;
    std::uint32_t ip = 0;
    net::Asn asn = 0;
  };

  /// One group's modal-location counts: scans where the group sat at its
  /// modal IP / /24 / AS, and the scans it was observed in at all.
  struct GroupCounts {
    std::uint64_t ip_modal = 0;
    std::uint64_t slash24_modal = 0;
    std::uint64_t as_modal = 0;
    std::uint64_t scans = 0;
  };

  bool group_passes_overlap_rule(const std::vector<scan::CertId>& certs) const;

  GroupCounts group_counts(const std::vector<scan::CertId>& certs) const;

  const analysis::DatasetIndex* index_;
  const corpus::CorpusIndex* spine_;  // == &index_->corpus()
  LinkerConfig config_;
  util::ThreadPool* pool_;
  std::vector<bool> eligible_;
  std::uint64_t eligible_count_ = 0;
  // Interned feature values over the eligible set (set last in the ctor).
  std::optional<FeatureIndex> features_;
};

}  // namespace sm::linking
