// FeatureIndex — interned feature values for the linking pipeline.
//
// The §6 linker touches every (certificate, feature) value many times:
// Table 5 uniqueness, per-field grouping, and iterative linking each used
// to call `feature_value()` (a string materialization + hash) per visit.
// This index materializes each feature ONCE into
//   * a column: CertId -> uint32 value id (kNoValue when absent), and
//   * a CSR map: value id -> the certificates carrying it, ascending id,
// so every downstream pass is integer-only and allocation-free.
//
// Value ids are assigned in first-appearance order over ascending CertId,
// which makes group enumeration deterministic and independent of hash
// seeds and thread counts.
#pragma once

#include <cstdint>
#include <vector>

#include "linking/feature.h"
#include "scan/archive.h"
#include "util/thread_pool.h"

namespace sm::linking {

class FeatureIndex {
 public:
  /// Column entry for certificates where the feature is absent, not
  /// applicable, or the certificate is outside `include`.
  static constexpr std::uint32_t kNoValue = 0xffffffffu;

  /// Interns every feature of every certificate where `include` is true
  /// (pass the linker's eligibility mask so excluded certificates cost
  /// nothing). Features are interned in parallel on `pool` (global pool
  /// when null); the result is identical for every thread count.
  FeatureIndex(const std::vector<scan::CertRecord>& certs,
               const std::vector<bool>& include, bool exclude_ip_common_names,
               util::ThreadPool* pool = nullptr);

  std::size_t cert_count() const { return cert_count_; }

  /// The value id of `cert` for `feature` (kNoValue when absent).
  std::uint32_t value_id(Feature feature, scan::CertId cert) const {
    return per_feature_[index(feature)].column[cert];
  }

  /// CertId -> value id column for `feature`.
  const std::vector<std::uint32_t>& column(Feature feature) const {
    return per_feature_[index(feature)].column;
  }

  /// Number of distinct (non-empty) values of `feature`.
  std::uint32_t value_count(Feature feature) const {
    const auto& f = per_feature_[index(feature)];
    return static_cast<std::uint32_t>(f.offsets.size() - 1);
  }

  /// The certificates carrying value `value` of `feature`, ascending id.
  struct CertSpan {
    const scan::CertId* begin_ptr;
    const scan::CertId* end_ptr;
    const scan::CertId* begin() const { return begin_ptr; }
    const scan::CertId* end() const { return end_ptr; }
    std::size_t size() const {
      return static_cast<std::size_t>(end_ptr - begin_ptr);
    }
  };
  CertSpan certs_with_value(Feature feature, std::uint32_t value) const {
    const auto& f = per_feature_[index(feature)];
    return CertSpan{f.members.data() + f.offsets[value],
                    f.members.data() + f.offsets[value + 1]};
  }

  /// Number of certificates carrying value `value` of `feature`.
  std::uint32_t multiplicity(Feature feature, std::uint32_t value) const {
    const auto& f = per_feature_[index(feature)];
    return f.offsets[value + 1] - f.offsets[value];
  }

 private:
  struct PerFeature {
    std::vector<std::uint32_t> column;   // CertId -> value id
    std::vector<std::uint32_t> offsets;  // value id -> members begin (CSR)
    std::vector<scan::CertId> members;   // concatenated cert lists
  };

  static std::size_t index(Feature feature) {
    return static_cast<std::size_t>(feature);
  }

  std::size_t cert_count_ = 0;
  std::vector<PerFeature> per_feature_;
};

}  // namespace sm::linking
