#include "linking/feature_index.h"

#include <string>
#include <unordered_map>

namespace sm::linking {

FeatureIndex::FeatureIndex(const std::vector<scan::CertRecord>& certs,
                           const std::vector<bool>& include,
                           bool exclude_ip_common_names,
                           util::ThreadPool* pool)
    : cert_count_(certs.size()), per_feature_(kAllFeatures.size()) {
  if (pool == nullptr) pool = &util::ThreadPool::global();
  // One feature per chunk: features are independent, and interning is the
  // only string-touching pass left in the pipeline.
  pool->parallel_for(
      kAllFeatures.size(), 1, [&](std::size_t begin, std::size_t end) {
        for (std::size_t fi = begin; fi < end; ++fi) {
          const Feature feature = kAllFeatures[fi];
          PerFeature& out = per_feature_[index(feature)];
          out.column.assign(cert_count_, kNoValue);
          std::unordered_map<std::string, std::uint32_t> ids;
          std::vector<std::uint32_t> counts;
          for (scan::CertId id = 0; id < cert_count_; ++id) {
            if (!include[id]) continue;
            std::string value =
                feature_value(certs[id], feature, exclude_ip_common_names);
            if (value.empty()) continue;
            const auto [it, inserted] = ids.emplace(
                std::move(value), static_cast<std::uint32_t>(counts.size()));
            if (inserted) counts.push_back(0);
            out.column[id] = it->second;
            ++counts[it->second];
          }
          // CSR: offsets from counts, then fill members in cert order.
          out.offsets.assign(counts.size() + 1, 0);
          for (std::size_t v = 0; v < counts.size(); ++v) {
            out.offsets[v + 1] = out.offsets[v] + counts[v];
          }
          out.members.resize(out.offsets.back());
          std::vector<std::uint32_t> cursor(out.offsets.begin(),
                                            out.offsets.end() - 1);
          for (scan::CertId id = 0; id < cert_count_; ++id) {
            const std::uint32_t v = out.column[id];
            if (v != kNoValue) out.members[cursor[v]++] = id;
          }
        }
      });
}

}  // namespace sm::linking
