// A trusted-root collection, standing in for the OS X 10.9.2 root store
// (222 roots) the paper validates against.
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "x509/certificate.h"

namespace sm::pki {

/// The lookup key both certificate stores index subjects by (hex of the
/// subject's DER encoding). Building it allocates, so the verifier's chain
/// walk computes it once per level and probes both stores with the same
/// key instead of re-encoding the name per lookup.
using SubjectKey = std::string;

/// Encodes a subject name into the shared store-lookup key.
SubjectKey subject_lookup_key(const x509::Name& subject);

/// A set of trusted (root) certificates, indexed by subject name and by
/// certificate fingerprint.
class RootStore {
 public:
  /// Adds a root. Duplicate fingerprints are ignored.
  void add(x509::Certificate root);

  /// All roots whose subject encodes to the same name (several roots may
  /// share a subject across key rolls, as in real stores).
  std::vector<const x509::Certificate*> find_by_subject(
      const x509::Name& subject) const;

  /// Indices of the roots matching a precomputed subject key — the
  /// non-allocating lookup the chain walk uses. Resolve with at().
  std::span<const std::size_t> matches(const SubjectKey& key) const;

  /// The root at a matches() index.
  const x509::Certificate& at(std::size_t index) const {
    return roots_[index];
  }

  /// True when a certificate with this exact fingerprint is trusted.
  bool contains(const util::Bytes& fingerprint_sha256) const;

  std::size_t size() const { return roots_.size(); }

  /// Iterates all roots (stable order of insertion).
  const std::vector<x509::Certificate>& all() const { return roots_; }

 private:
  std::vector<x509::Certificate> roots_;
  std::map<std::string, std::vector<std::size_t>> by_subject_;
  std::map<std::string, std::size_t> by_fingerprint_;
};

/// A pool of intermediate CA certificates collected across scans. The paper
/// validates every intermediate before leaves so that chains can be
/// completed even when a server presents an incomplete chain ("transvalid"
/// certificates). Same lookup interface as RootStore.
class IntermediatePool {
 public:
  /// Adds an intermediate. Duplicate fingerprints are ignored.
  void add(x509::Certificate intermediate);

  /// Candidates whose subject matches.
  std::vector<const x509::Certificate*> find_by_subject(
      const x509::Name& subject) const;

  /// Indices of the intermediates matching a precomputed subject key.
  std::span<const std::size_t> matches(const SubjectKey& key) const;

  /// The intermediate at a matches() index.
  const x509::Certificate& at(std::size_t index) const {
    return pool_[index];
  }

  std::size_t size() const { return pool_.size(); }

 private:
  std::vector<x509::Certificate> pool_;
  std::map<std::string, std::vector<std::size_t>> by_subject_;
  std::map<std::string, std::size_t> by_fingerprint_;
};

}  // namespace sm::pki
