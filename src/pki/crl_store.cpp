#include "pki/crl_store.h"

#include "crypto/signature.h"
#include "util/hex.h"

namespace sm::pki {

namespace {

std::string issuer_key(const x509::Name& issuer) {
  return util::hex_encode(issuer.encode());
}

}  // namespace

bool CrlStore::add(x509::Crl crl, const x509::Certificate& issuer) {
  if (!(crl.issuer == issuer.subject)) return false;
  if (!crypto::verify(issuer.spki, crl.tbs_der, crl.signature)) return false;
  return add_unverified(std::move(crl));
}

bool CrlStore::add_unverified(x509::Crl crl) {
  if (crl.next_update.has_value() && *crl.next_update < crl.this_update) {
    return false;  // malformed: the validity window ends before it starts
  }
  const std::string key = issuer_key(crl.issuer);
  const auto it = by_issuer_.find(key);
  if (it != by_issuer_.end() && it->second.this_update >= crl.this_update) {
    return false;  // keep the fresher CRL
  }
  by_issuer_.insert_or_assign(key, std::move(crl));
  return true;
}

const x509::Crl* CrlStore::find(const x509::Name& issuer) const {
  const auto it = by_issuer_.find(issuer_key(issuer));
  return it == by_issuer_.end() ? nullptr : &it->second;
}

bool CrlStore::is_revoked(const x509::Name& issuer,
                          const bignum::BigUint& serial) const {
  const x509::Crl* crl = find(issuer);
  return crl != nullptr && crl->is_revoked(serial);
}

bool CrlStore::is_stale(const x509::Name& issuer, util::UnixTime now) const {
  const x509::Crl* crl = find(issuer);
  return crl != nullptr && crl->next_update.has_value() &&
         *crl->next_update < now;
}

}  // namespace sm::pki
