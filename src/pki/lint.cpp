#include "pki/lint.h"

#include <algorithm>

#include "crypto/rsa.h"
#include "net/ipv4.h"

namespace sm::pki {

namespace {

constexpr std::size_t kCheckCount =
    static_cast<std::size_t>(LintCheck::kWeakRsaKey) + 1;

void add(std::vector<LintFinding>& findings, LintCheck check,
         LintSeverity severity, std::string message) {
  findings.push_back(LintFinding{check, severity, std::move(message)});
}

}  // namespace

std::string to_string(LintCheck check) {
  switch (check) {
    case LintCheck::kNegativeValidity:
      return "negative-validity";
    case LintCheck::kLongValidity:
      return "long-validity";
    case LintCheck::kAbsurdValidity:
      return "absurd-validity";
    case LintCheck::kEpochNotBefore:
      return "epoch-not-before";
    case LintCheck::kFarFutureNotAfter:
      return "far-future-not-after";
    case LintCheck::kEmptySubject:
      return "empty-subject";
    case LintCheck::kEmptyIssuer:
      return "empty-issuer";
    case LintCheck::kIpAddressCommonName:
      return "ip-address-common-name";
    case LintCheck::kPrivateIpCommonName:
      return "private-ip-common-name";
    case LintCheck::kFixedSerialNumber:
      return "fixed-serial-number";
    case LintCheck::kSelfIssued:
      return "self-issued";
    case LintCheck::kMissingSan:
      return "missing-san";
    case LintCheck::kIllegalVersion:
      return "illegal-version";
    case LintCheck::kV1WithExtensions:
      return "v1-with-extensions";
    case LintCheck::kCaWithoutKeyIdentifier:
      return "ca-without-key-identifier";
    case LintCheck::kMissingAki:
      return "missing-aki";
    case LintCheck::kWeakRsaKey:
      return "weak-rsa-key";
  }
  return "unknown";
}

std::string to_string(LintSeverity severity) {
  switch (severity) {
    case LintSeverity::kInfo:
      return "info";
    case LintSeverity::kWarning:
      return "warning";
    case LintSeverity::kError:
      return "error";
  }
  return "unknown";
}

std::vector<LintFinding> lint_certificate(const x509::Certificate& cert,
                                          const LintOptions& options) {
  std::vector<LintFinding> findings;

  // --- version ---------------------------------------------------------
  if (!cert.version_is_legal()) {
    add(findings, LintCheck::kIllegalVersion, LintSeverity::kError,
        "version " + std::to_string(cert.display_version()) +
            " is not one of v1..v3");
  }
  if (cert.raw_version == 0 && !cert.extensions.empty()) {
    add(findings, LintCheck::kV1WithExtensions, LintSeverity::kError,
        "v1 certificate carries extensions");
  }

  // --- validity ---------------------------------------------------------
  const double period_days = cert.validity.period_days();
  if (period_days < 0) {
    add(findings, LintCheck::kNegativeValidity, LintSeverity::kError,
        "NotAfter precedes NotBefore by " +
            std::to_string(static_cast<long long>(-period_days)) + " days");
  } else {
    const auto bc = cert.basic_constraints();
    const bool is_ca = bc.has_value() && bc->is_ca;
    if (!is_ca && period_days > options.max_leaf_validity_days) {
      add(findings, LintCheck::kLongValidity, LintSeverity::kWarning,
          "leaf validity of " +
              std::to_string(static_cast<long long>(period_days)) +
              " days exceeds the 39-month ceiling");
    }
    if (period_days > 50 * 365.0) {
      add(findings, LintCheck::kAbsurdValidity, LintSeverity::kWarning,
          "validity period exceeds 50 years");
    }
  }
  if (cert.validity.not_before <= options.epoch_threshold) {
    add(findings, LintCheck::kEpochNotBefore, LintSeverity::kWarning,
        "NotBefore of " + util::format_date(cert.validity.not_before) +
            " suggests an unset device clock");
  }
  if (util::from_unix(cert.validity.not_after).year >= 2100 &&
      period_days >= 0) {
    add(findings, LintCheck::kFarFutureNotAfter, LintSeverity::kWarning,
        "NotAfter in year " +
            std::to_string(util::from_unix(cert.validity.not_after).year));
  }

  // --- names -------------------------------------------------------------
  if (cert.subject.empty()) {
    add(findings, LintCheck::kEmptySubject, LintSeverity::kWarning,
        "subject has no attributes");
  }
  if (cert.issuer.empty()) {
    add(findings, LintCheck::kEmptyIssuer, LintSeverity::kWarning,
        "issuer has no attributes");
  }
  const std::string cn = cert.subject.common_name();
  if (const auto ip = net::Ipv4Address::parse(cn)) {
    if (net::is_private(*ip)) {
      add(findings, LintCheck::kPrivateIpCommonName, LintSeverity::kWarning,
          "CN " + cn + " is an RFC 1918 address");
    } else {
      add(findings, LintCheck::kIpAddressCommonName, LintSeverity::kInfo,
          "CN " + cn + " is an IP address");
    }
  }
  if (cert.subject_matches_issuer() && !cert.subject.empty()) {
    add(findings, LintCheck::kSelfIssued, LintSeverity::kInfo,
        "subject equals issuer");
  }

  // --- serial -------------------------------------------------------------
  if (cert.serial == bignum::BigUint(1)) {
    add(findings, LintCheck::kFixedSerialNumber, LintSeverity::kWarning,
        "serial number is 1 (firmware constant)");
  }

  // --- extensions ----------------------------------------------------------
  const auto bc = cert.basic_constraints();
  const bool is_ca = bc.has_value() && bc->is_ca;
  if (!is_ca && !cn.empty() && !net::looks_like_ipv4(cn) &&
      cert.subject_alt_names().empty() && cert.raw_version >= 2) {
    add(findings, LintCheck::kMissingSan, LintSeverity::kWarning,
        "leaf with DNS-style CN but no SubjectAltName");
  }
  if (is_ca && !cert.subject_key_id().has_value()) {
    add(findings, LintCheck::kCaWithoutKeyIdentifier, LintSeverity::kWarning,
        "CA certificate without SubjectKeyIdentifier");
  }
  if (!cert.subject_matches_issuer() && !cert.authority_key_id().has_value() &&
      cert.raw_version >= 2) {
    add(findings, LintCheck::kMissingAki, LintSeverity::kInfo,
        "non-self-issued certificate without AuthorityKeyIdentifier");
  }

  // --- key strength -----------------------------------------------------------
  if (cert.spki.scheme == crypto::SigScheme::kRsaSha256) {
    crypto::RsaPublicKey key;
    if (crypto::decode_rsa_public_key(cert.spki.key, key) &&
        key.n.bit_length() < options.min_rsa_bits) {
      add(findings, LintCheck::kWeakRsaKey, LintSeverity::kWarning,
          "RSA modulus of " + std::to_string(key.n.bit_length()) +
              " bits is below " + std::to_string(options.min_rsa_bits));
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const LintFinding& a, const LintFinding& b) {
              if (a.severity != b.severity) return a.severity > b.severity;
              return a.check < b.check;
            });
  return findings;
}

LintSummary lint_all(const std::vector<x509::Certificate>& certs,
                     const LintOptions& options) {
  LintSummary summary;
  summary.by_check.assign(kCheckCount, 0);
  for (const x509::Certificate& cert : certs) {
    ++summary.certificates;
    const auto findings = lint_certificate(cert, options);
    bool has_error = false, has_warning = false;
    std::vector<bool> seen(kCheckCount, false);
    for (const LintFinding& finding : findings) {
      has_error |= finding.severity == LintSeverity::kError;
      has_warning |= finding.severity == LintSeverity::kWarning;
      const auto index = static_cast<std::size_t>(finding.check);
      if (!seen[index]) {
        seen[index] = true;
        ++summary.by_check[index];
      }
    }
    if (has_error) ++summary.with_errors;
    if (has_warning) ++summary.with_warnings;
  }
  return summary;
}

}  // namespace sm::pki
