// Chain building and certificate validation — the `openssl verify` analog
// of the paper's §4.2, including the two behaviours that shape its dataset:
//
//  * expiry is ignored by default (a certificate counts as valid if it was
//    valid at *some* point in time), because scans and validation happen at
//    different times;
//
//  * self-signed detection uses both the error-19 analog (subject == issuer
//    and the signature verifies with the certificate's own key) and the
//    manual fallback of footnote 7 (the signature verifies with the
//    certificate's own key even when subject != issuer).
//
// Chains are completed from an IntermediatePool so that "transvalid"
// certificates — leaves whose servers present broken chains but for which a
// valid chain exists — validate, as in the paper.
//
// For corpus-scale validation (the paper verifies 80M certificates) use
// BatchVerifier: it fans leaves out on a util::ThreadPool and memoizes the
// sub-results distinct leaves share — the self-signature and root-membership
// checks of each store-resident CA, and the CA-under-CA signature checks of
// the upper chain links — which the plain Verifier recomputes per leaf.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "pki/crl_store.h"
#include "pki/root_store.h"
#include "util/bytes.h"
#include "x509/certificate.h"

namespace sm::util {
class ThreadPool;
}  // namespace sm::util

namespace sm::pki {

/// Why a certificate failed validation. Mirrors the paper's breakdown:
/// 88.0% self-signed, 11.99% untrusted issuer, 0.01% other.
enum class InvalidReason : std::uint8_t {
  kNone = 0,          ///< certificate is valid
  kSelfSigned,        ///< roots at itself and is not a trusted root
  kUntrustedIssuer,   ///< chain roots at an untrusted certificate or dangles
  kBadSignature,      ///< an issuer was found but its signature check failed
  kMalformedVersion,  ///< illegal version number (paper disregards these)
  kNeverValid,        ///< NotAfter precedes NotBefore
  kExpired,           ///< outside validity period (strict mode only)
  kRevoked,           ///< listed on its issuer's CRL (when a store is given)
};

/// Human-readable reason label.
std::string to_string(InvalidReason reason);

/// Same label as a static string — for render paths that append into a
/// caller-supplied buffer without allocating.
const char* reason_cstr(InvalidReason reason);

/// Revocation status of one certificate, orthogonal to InvalidReason: a
/// chain-valid certificate may be revoked, and an invalid one may still
/// have a perfectly fresh CRL. Mirrors the taxonomy of "Revocation
/// Statuses on the Internet" (Korzhitskii & Carlsson): many certificates
/// are unclassifiable because their distribution points are stale or
/// unreachable, not because they were checked and found good.
enum class RevocationStatus : std::uint8_t {
  kGood = 0,      ///< authoritative fresh answer: not revoked
  kRevoked,       ///< listed by its issuer (CRL entry or OCSP revoked)
  kStaleCrl,      ///< only evidence is a CRL whose nextUpdate has passed
  kUnreachable,   ///< every advertised distribution point failed
  kUnknown,       ///< no distribution points, or responder answered unknown
};

/// Human-readable status label.
std::string to_string(RevocationStatus status);

/// Same label as a static string — for render paths that append into a
/// caller-supplied buffer without allocating.
const char* revocation_status_cstr(RevocationStatus status);

/// Where CRLs and OCSP answers come from during a revocation pass. In
/// production this would wrap HTTP fetches; in the simulated world
/// revocation::Ecosystem implements it in-process. Implementations must be
/// safe to call concurrently and pure (same inputs, same answer) — the
/// batch pass memoizes per-issuer results and fans out on a thread pool.
class RevocationSource {
 public:
  /// OCSP-style answer for one (issuer, serial) pair.
  enum class OcspAnswer : std::uint8_t {
    kGood = 0,
    kRevoked,
    kUnknown,      ///< responder is up but has no status for the serial
    kUnreachable,  ///< responder did not answer
  };

  virtual ~RevocationSource() = default;

  /// Fetches the current CRL published by `issuer_key` (an issuer DN
  /// rendering, scan::CertRecord::issuer_dn). Returns false when the
  /// distribution point is unreachable; on success appends the DER
  /// CertificateList to `der`.
  virtual bool fetch_crl(std::string_view issuer_key,
                         util::Bytes& der) const = 0;

  /// Asks `issuer_key`'s responder about `serial_hex`
  /// (scan::CertRecord::serial_hex, i.e. bignum::BigUint::to_hex).
  virtual OcspAnswer ocsp(std::string_view issuer_key,
                          std::string_view serial_hex) const = 0;
};

/// One certificate's revocation-check inputs, derived from archive fields
/// (the corpus keeps no DER, so the pass is keyed by the issuer DN
/// rendering and hex serial the scanner recorded).
struct RevocationQuery {
  std::string issuer_key;   ///< scan::CertRecord::issuer_dn
  std::string serial_hex;   ///< scan::CertRecord::serial_hex
  bool has_crl = false;     ///< certificate advertised a CRL-DP URL
  bool has_ocsp = false;    ///< certificate advertised an OCSP URL
};

/// Outcome of verifying one certificate.
struct ValidationResult {
  bool valid = false;
  InvalidReason reason = InvalidReason::kNone;
  /// Number of certificates in the accepted chain including leaf and root
  /// (0 when invalid).
  int chain_length = 0;
  /// True when the chain needed certificates from the intermediate pool that
  /// the server did not present ("transvalid").
  bool transvalid = false;

  friend bool operator==(const ValidationResult&,
                         const ValidationResult&) = default;
};

/// Verifier options.
struct VerifyOptions {
  /// When false (the paper's setting), expiry does not invalidate; only a
  /// NotAfter < NotBefore inversion does.
  bool enforce_expiry = false;
  /// Validation instant used when enforce_expiry is true.
  util::UnixTime at_time = 0;
  /// Maximum chain length (leaf..root inclusive).
  int max_chain_length = 8;
  /// When set, certificates listed on their issuer's CRL are classified
  /// kRevoked even if the chain otherwise verifies.
  const class CrlStore* crl_store = nullptr;
};

// Memoizes the pure sub-results of chain walks (defined in verifier.cpp).
class VerifierMemo;

/// Validates certificates against a root store + intermediate pool.
class Verifier {
 public:
  Verifier(const RootStore& roots, const IntermediatePool& intermediates,
           VerifyOptions options = {});

  /// Verifies `leaf`. `presented` is the (possibly empty, possibly broken)
  /// chain the server sent alongside the leaf, in any order.
  ValidationResult verify(
      const x509::Certificate& leaf,
      std::span<const x509::Certificate> presented = {}) const;

 private:
  friend class BatchVerifier;

  ValidationResult verify_impl(const x509::Certificate& leaf,
                               std::span<const x509::Certificate> presented,
                               VerifierMemo* memo) const;

  const RootStore& roots_;
  const IntermediatePool& intermediates_;
  VerifyOptions options_;
};

/// Counters a BatchVerifier accumulates across its lifetime. Totals are
/// exact; they are only incremented with relaxed atomics, so read them
/// after the parallel work completes.
struct BatchVerifyStats {
  std::uint64_t verified = 0;        ///< certificates verified
  std::uint64_t sig_checks = 0;      ///< signature checks actually computed
  std::uint64_t sig_cache_hits = 0;  ///< signature checks answered by memo
};

/// Corpus-scale validation: the same results as Verifier::verify for every
/// input, computed in parallel and with the shared sub-results memoized.
///
/// The memo is keyed by certificate address, so the root store and
/// intermediate pool must not be mutated (and candidate `presented` chains
/// passed to verify() must stay alive) for the lifetime of this object.
/// All methods are safe to call concurrently.
class BatchVerifier {
 public:
  BatchVerifier(const RootStore& roots, const IntermediatePool& intermediates,
                VerifyOptions options = {});
  ~BatchVerifier();

  BatchVerifier(const BatchVerifier&) = delete;
  BatchVerifier& operator=(const BatchVerifier&) = delete;

  /// Verifies one leaf with memoization; bit-identical to
  /// Verifier::verify(leaf, presented).
  ValidationResult verify(
      const x509::Certificate& leaf,
      std::span<const x509::Certificate> presented = {}) const;

  /// Verifies every leaf (each with an empty presented chain) on `pool`
  /// (null = the process-global pool). results[i] corresponds to leaves[i]
  /// and is identical for every thread count.
  std::vector<ValidationResult> verify_all(
      std::span<const x509::Certificate> leaves,
      util::ThreadPool* pool = nullptr) const;

  /// Revocation pass over a batch of certificates: per-issuer CRL
  /// fetch/parse/signature-check is done once (sharded memo, like the
  /// per-CA chain checks) and shared by every certificate of that issuer.
  /// CRL signatures are verified against the root store / intermediate
  /// pool this verifier was built over; an unverifiable CRL yields
  /// kUnknown, never kGood. `now` is the staleness instant for
  /// nextUpdate. results[i] corresponds to queries[i] and is bit-identical
  /// for every thread count. The memo lives for this call only, so
  /// `source` need not outlive it.
  std::vector<RevocationStatus> check_revocation_all(
      std::span<const RevocationQuery> queries, const RevocationSource& source,
      util::UnixTime now, util::ThreadPool* pool = nullptr) const;

  /// Lifetime counters (call when no verification is in flight).
  BatchVerifyStats stats() const;

 private:
  Verifier base_;
  std::unique_ptr<VerifierMemo> memo_;
};

/// True when the certificate's signature verifies under its *own* public
/// key — the self-signed test of the paper's footnote 7, independent of
/// whether subject equals issuer.
bool is_self_signature(const x509::Certificate& cert);

}  // namespace sm::pki
