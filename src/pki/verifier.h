// Chain building and certificate validation — the `openssl verify` analog
// of the paper's §4.2, including the two behaviours that shape its dataset:
//
//  * expiry is ignored by default (a certificate counts as valid if it was
//    valid at *some* point in time), because scans and validation happen at
//    different times;
//
//  * self-signed detection uses both the error-19 analog (subject == issuer
//    and the signature verifies with the certificate's own key) and the
//    manual fallback of footnote 7 (the signature verifies with the
//    certificate's own key even when subject != issuer).
//
// Chains are completed from an IntermediatePool so that "transvalid"
// certificates — leaves whose servers present broken chains but for which a
// valid chain exists — validate, as in the paper.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "pki/crl_store.h"
#include "pki/root_store.h"
#include "x509/certificate.h"

namespace sm::pki {

/// Why a certificate failed validation. Mirrors the paper's breakdown:
/// 88.0% self-signed, 11.99% untrusted issuer, 0.01% other.
enum class InvalidReason : std::uint8_t {
  kNone = 0,          ///< certificate is valid
  kSelfSigned,        ///< roots at itself and is not a trusted root
  kUntrustedIssuer,   ///< chain roots at an untrusted certificate or dangles
  kBadSignature,      ///< an issuer was found but its signature check failed
  kMalformedVersion,  ///< illegal version number (paper disregards these)
  kNeverValid,        ///< NotAfter precedes NotBefore
  kExpired,           ///< outside validity period (strict mode only)
  kRevoked,           ///< listed on its issuer's CRL (when a store is given)
};

/// Human-readable reason label.
std::string to_string(InvalidReason reason);

/// Outcome of verifying one certificate.
struct ValidationResult {
  bool valid = false;
  InvalidReason reason = InvalidReason::kNone;
  /// Number of certificates in the accepted chain including leaf and root
  /// (0 when invalid).
  int chain_length = 0;
  /// True when the chain needed certificates from the intermediate pool that
  /// the server did not present ("transvalid").
  bool transvalid = false;
};

/// Verifier options.
struct VerifyOptions {
  /// When false (the paper's setting), expiry does not invalidate; only a
  /// NotAfter < NotBefore inversion does.
  bool enforce_expiry = false;
  /// Validation instant used when enforce_expiry is true.
  util::UnixTime at_time = 0;
  /// Maximum chain length (leaf..root inclusive).
  int max_chain_length = 8;
  /// When set, certificates listed on their issuer's CRL are classified
  /// kRevoked even if the chain otherwise verifies.
  const class CrlStore* crl_store = nullptr;
};

/// Validates certificates against a root store + intermediate pool.
class Verifier {
 public:
  Verifier(const RootStore& roots, const IntermediatePool& intermediates,
           VerifyOptions options = {});

  /// Verifies `leaf`. `presented` is the (possibly empty, possibly broken)
  /// chain the server sent alongside the leaf, in any order.
  ValidationResult verify(
      const x509::Certificate& leaf,
      std::span<const x509::Certificate> presented = {}) const;

 private:
  const RootStore& roots_;
  const IntermediatePool& intermediates_;
  VerifyOptions options_;
};

/// True when the certificate's signature verifies under its *own* public
/// key — the self-signed test of the paper's footnote 7, independent of
/// whether subject equals issuer.
bool is_self_signature(const x509::Certificate& cert);

}  // namespace sm::pki
