// A CRL collection keyed by issuer name, feeding the verifier's revocation
// check. CRLs are signature-verified against their issuing certificate on
// insertion (use add_unverified for pre-trusted data).
#pragma once

#include <map>
#include <optional>
#include <string>

#include "x509/certificate.h"
#include "x509/crl.h"

namespace sm::pki {

/// Issuer-indexed CRLs; keeps the freshest (largest thisUpdate) CRL per
/// issuer. CRLs whose nextUpdate precedes thisUpdate are malformed and
/// rejected outright (by add and add_unverified both) — a validity window
/// that ends before it starts cannot be reasoned about.
class CrlStore {
 public:
  /// Verifies the CRL's signature under `issuer`'s key and that the names
  /// match; on success stores it (replacing an older CRL for the same
  /// issuer) and returns true.
  bool add(x509::Crl crl, const x509::Certificate& issuer);

  /// Stores without signature verification. Returns false when the CRL is
  /// malformed (nextUpdate < thisUpdate) or older than the stored one.
  bool add_unverified(x509::Crl crl);

  /// The freshest CRL for `issuer`, or nullptr.
  const x509::Crl* find(const x509::Name& issuer) const;

  /// True when `issuer` has a CRL listing `serial`.
  bool is_revoked(const x509::Name& issuer,
                  const bignum::BigUint& serial) const;

  /// True when the stored CRL for `issuer` has gone stale at `now`
  /// (nextUpdate < now). False when there is no CRL or it carries no
  /// nextUpdate — absence of a deadline is not staleness; callers should
  /// treat a missing CRL as unknown/unreachable, not stale.
  bool is_stale(const x509::Name& issuer, util::UnixTime now) const;

  std::size_t size() const { return by_issuer_.size(); }

 private:
  std::map<std::string, x509::Crl> by_issuer_;  // key: issuer DER hex
};

}  // namespace sm::pki
