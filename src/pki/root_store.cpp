#include "pki/root_store.h"

#include "util/hex.h"

namespace sm::pki {

SubjectKey subject_lookup_key(const x509::Name& subject) {
  return util::hex_encode(subject.encode());
}

void RootStore::add(x509::Certificate root) {
  const std::string fp = util::hex_encode(root.fingerprint_sha256());
  if (by_fingerprint_.contains(fp)) return;
  const std::size_t index = roots_.size();
  by_fingerprint_[fp] = index;
  by_subject_[subject_lookup_key(root.subject)].push_back(index);
  roots_.push_back(std::move(root));
}

std::span<const std::size_t> RootStore::matches(const SubjectKey& key) const {
  const auto it = by_subject_.find(key);
  if (it == by_subject_.end()) return {};
  return it->second;
}

std::vector<const x509::Certificate*> RootStore::find_by_subject(
    const x509::Name& subject) const {
  std::vector<const x509::Certificate*> out;
  const std::span<const std::size_t> indices =
      matches(subject_lookup_key(subject));
  out.reserve(indices.size());
  for (const std::size_t index : indices) out.push_back(&roots_[index]);
  return out;
}

bool RootStore::contains(const util::Bytes& fingerprint_sha256) const {
  return by_fingerprint_.contains(util::hex_encode(fingerprint_sha256));
}

void IntermediatePool::add(x509::Certificate intermediate) {
  const std::string fp = util::hex_encode(intermediate.fingerprint_sha256());
  if (by_fingerprint_.contains(fp)) return;
  const std::size_t index = pool_.size();
  by_fingerprint_[fp] = index;
  by_subject_[subject_lookup_key(intermediate.subject)].push_back(index);
  pool_.push_back(std::move(intermediate));
}

std::span<const std::size_t> IntermediatePool::matches(
    const SubjectKey& key) const {
  const auto it = by_subject_.find(key);
  if (it == by_subject_.end()) return {};
  return it->second;
}

std::vector<const x509::Certificate*> IntermediatePool::find_by_subject(
    const x509::Name& subject) const {
  std::vector<const x509::Certificate*> out;
  const std::span<const std::size_t> indices =
      matches(subject_lookup_key(subject));
  out.reserve(indices.size());
  for (const std::size_t index : indices) out.push_back(&pool_[index]);
  return out;
}

}  // namespace sm::pki
