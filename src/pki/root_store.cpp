#include "pki/root_store.h"

#include "util/hex.h"

namespace sm::pki {

namespace {

std::string subject_key(const x509::Name& subject) {
  return util::hex_encode(subject.encode());
}

}  // namespace

void RootStore::add(x509::Certificate root) {
  const std::string fp = util::hex_encode(root.fingerprint_sha256());
  if (by_fingerprint_.contains(fp)) return;
  const std::size_t index = roots_.size();
  by_fingerprint_[fp] = index;
  by_subject_[subject_key(root.subject)].push_back(index);
  roots_.push_back(std::move(root));
}

std::vector<const x509::Certificate*> RootStore::find_by_subject(
    const x509::Name& subject) const {
  std::vector<const x509::Certificate*> out;
  const auto it = by_subject_.find(subject_key(subject));
  if (it == by_subject_.end()) return out;
  out.reserve(it->second.size());
  for (const std::size_t index : it->second) out.push_back(&roots_[index]);
  return out;
}

bool RootStore::contains(const util::Bytes& fingerprint_sha256) const {
  return by_fingerprint_.contains(util::hex_encode(fingerprint_sha256));
}

void IntermediatePool::add(x509::Certificate intermediate) {
  const std::string fp = util::hex_encode(intermediate.fingerprint_sha256());
  if (by_fingerprint_.contains(fp)) return;
  const std::size_t index = pool_.size();
  by_fingerprint_[fp] = index;
  by_subject_[subject_key(intermediate.subject)].push_back(index);
  pool_.push_back(std::move(intermediate));
}

std::vector<const x509::Certificate*> IntermediatePool::find_by_subject(
    const x509::Name& subject) const {
  std::vector<const x509::Certificate*> out;
  const auto it = by_subject_.find(subject_key(subject));
  if (it == by_subject_.end()) return out;
  out.reserve(it->second.size());
  for (const std::size_t index : it->second) out.push_back(&pool_[index]);
  return out;
}

}  // namespace sm::pki
