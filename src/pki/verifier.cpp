#include "pki/verifier.h"

namespace sm::pki {

std::string to_string(InvalidReason reason) {
  switch (reason) {
    case InvalidReason::kNone:
      return "none";
    case InvalidReason::kSelfSigned:
      return "self-signed";
    case InvalidReason::kUntrustedIssuer:
      return "untrusted-issuer";
    case InvalidReason::kBadSignature:
      return "bad-signature";
    case InvalidReason::kMalformedVersion:
      return "malformed-version";
    case InvalidReason::kNeverValid:
      return "never-valid";
    case InvalidReason::kExpired:
      return "expired";
    case InvalidReason::kRevoked:
      return "revoked";
  }
  return "unknown";
}

bool is_self_signature(const x509::Certificate& cert) {
  return crypto::verify(cert.spki, cert.tbs_der, cert.signature);
}

Verifier::Verifier(const RootStore& roots, const IntermediatePool& intermediates,
                   VerifyOptions options)
    : roots_(roots), intermediates_(intermediates), options_(options) {}

ValidationResult Verifier::verify(
    const x509::Certificate& leaf,
    std::span<const x509::Certificate> presented) const {
  ValidationResult out;

  if (!leaf.version_is_legal()) {
    out.reason = InvalidReason::kMalformedVersion;
    return out;
  }
  const auto time_ok = [&](const x509::Certificate& cert) -> InvalidReason {
    if (cert.validity.not_after < cert.validity.not_before) {
      return InvalidReason::kNeverValid;
    }
    if (options_.enforce_expiry &&
        (options_.at_time < cert.validity.not_before ||
         options_.at_time > cert.validity.not_after)) {
      return InvalidReason::kExpired;
    }
    return InvalidReason::kNone;
  };

  // Trusted root presented directly as the endpoint certificate.
  if (roots_.contains(leaf.fingerprint_sha256())) {
    out.valid = true;
    out.chain_length = 1;
    return out;
  }

  // Self-signed detection (error-19 analog + footnote-7 manual check).
  // Checked before the validity window so that a self-signed certificate
  // with a backwards validity period is classified self-signed, as openssl
  // error 19 fires before date checks — this keeps the paper's "other"
  // bucket tiny.
  if (is_self_signature(leaf)) {
    out.reason = InvalidReason::kSelfSigned;
    return out;
  }

  // Leaf validity window (expiry ignored unless enforce_expiry).
  if (const InvalidReason r = time_ok(leaf); r != InvalidReason::kNone) {
    out.reason = r;
    return out;
  }

  // Walk up the chain. At each level, candidate issuers come from the
  // presented chain first, then the intermediate pool (transvalid
  // completion), then the root store.
  const x509::Certificate* current = &leaf;
  bool used_pool = false;
  for (int depth = 1; depth < options_.max_chain_length; ++depth) {
    const x509::Certificate* next = nullptr;
    bool next_from_pool = false;
    bool found_name_match = false;
    bool bad_signature_seen = false;

    const auto try_candidate = [&](const x509::Certificate& cand,
                                   bool from_pool) {
      if (next) return;
      if (!(cand.subject == current->issuer)) return;
      found_name_match = true;
      if (!crypto::verify(cand.spki, current->tbs_der, current->signature)) {
        bad_signature_seen = true;
        return;
      }
      if (time_ok(cand) != InvalidReason::kNone) return;
      next = &cand;
      next_from_pool = from_pool;
    };

    // Root store first: reaching a root terminates the walk.
    for (const x509::Certificate* root : roots_.find_by_subject(current->issuer)) {
      try_candidate(*root, false);
      if (next) {
        if (options_.crl_store != nullptr &&
            options_.crl_store->is_revoked(leaf.issuer, leaf.serial)) {
          out.reason = InvalidReason::kRevoked;
          return out;
        }
        out.valid = true;
        out.chain_length = depth + 1;
        out.transvalid = used_pool;
        return out;
      }
    }
    for (const x509::Certificate& cand : presented) {
      try_candidate(cand, false);
    }
    if (!next) {
      for (const x509::Certificate* cand :
           intermediates_.find_by_subject(current->issuer)) {
        try_candidate(*cand, true);
      }
    }
    if (!next) {
      out.reason = (found_name_match && bad_signature_seen)
                       ? InvalidReason::kBadSignature
                       : InvalidReason::kUntrustedIssuer;
      return out;
    }
    if (is_self_signature(*next) && !roots_.contains(next->fingerprint_sha256())) {
      // Chain roots at an untrusted self-signed certificate.
      out.reason = InvalidReason::kUntrustedIssuer;
      return out;
    }
    used_pool = used_pool || next_from_pool;
    current = next;
  }
  out.reason = InvalidReason::kUntrustedIssuer;  // chain too long / dangling
  return out;
}

}  // namespace sm::pki
