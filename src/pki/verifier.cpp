#include "pki/verifier.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "util/thread_pool.h"
#include "x509/crl.h"

namespace sm::pki {

const char* reason_cstr(InvalidReason reason) {
  switch (reason) {
    case InvalidReason::kNone:
      return "none";
    case InvalidReason::kSelfSigned:
      return "self-signed";
    case InvalidReason::kUntrustedIssuer:
      return "untrusted-issuer";
    case InvalidReason::kBadSignature:
      return "bad-signature";
    case InvalidReason::kMalformedVersion:
      return "malformed-version";
    case InvalidReason::kNeverValid:
      return "never-valid";
    case InvalidReason::kExpired:
      return "expired";
    case InvalidReason::kRevoked:
      return "revoked";
  }
  return "unknown";
}

std::string to_string(InvalidReason reason) { return reason_cstr(reason); }

const char* revocation_status_cstr(RevocationStatus status) {
  switch (status) {
    case RevocationStatus::kGood:
      return "good";
    case RevocationStatus::kRevoked:
      return "revoked";
    case RevocationStatus::kStaleCrl:
      return "stale-crl";
    case RevocationStatus::kUnreachable:
      return "unreachable";
    case RevocationStatus::kUnknown:
      return "unknown";
  }
  return "unknown";
}

std::string to_string(RevocationStatus status) {
  return revocation_status_cstr(status);
}

bool is_self_signature(const x509::Certificate& cert) {
  return crypto::verify(cert.spki, cert.tbs_der, cert.signature);
}

// Memoizes the chain-walk sub-results that are pure functions of
// store-resident certificates: whether a CA's signature is its own
// (self-signature), whether a CA is a trusted root, and whether issuer X
// signed store-resident child Y. Keys are certificate addresses, which is
// sound only for certificates whose storage outlives the memo — the
// BatchVerifier contract. Leaf-level checks are never memoized: leaves are
// caller-owned transients and mostly unique, so an address key would be
// both unsafe and useless.
//
// Racing threads may compute the same entry twice; both compute the same
// value (the functions are pure), so the winner of the emplace is
// indistinguishable from the loser and results stay deterministic.
class VerifierMemo {
 public:
  template <typename Fn>
  bool self_signature(const x509::Certificate* cert, Fn&& compute) {
    return memoized(self_sig_, static_cast<const void*>(cert),
                    &sig_cache_hits, std::forward<Fn>(compute));
  }

  template <typename Fn>
  bool root_member(const x509::Certificate* cert, Fn&& compute) {
    return memoized(root_member_, static_cast<const void*>(cert), nullptr,
                    std::forward<Fn>(compute));
  }

  template <typename Fn>
  bool signature_pair(const x509::Certificate* issuer,
                      const x509::Certificate* child, Fn&& compute) {
    return memoized(sig_pair_, PtrPair{issuer, child}, &sig_cache_hits,
                    std::forward<Fn>(compute));
  }

  std::atomic<std::uint64_t> verified{0};
  std::atomic<std::uint64_t> sig_checks{0};
  std::atomic<std::uint64_t> sig_cache_hits{0};

 private:
  using PtrPair = std::pair<const void*, const void*>;
  struct PtrPairHash {
    std::size_t operator()(const PtrPair& key) const {
      const auto a = reinterpret_cast<std::uintptr_t>(key.first);
      const auto b = reinterpret_cast<std::uintptr_t>(key.second);
      std::size_t h = a * 0x9e3779b97f4a7c15ull;
      h ^= b + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
      return h;
    }
  };

  static constexpr std::size_t kShards = 16;

  template <typename MapT>
  struct Shards {
    struct Shard {
      std::mutex mutex;
      MapT map;
    };
    Shard shard[kShards];
  };

  // Returns the cached value for `key`, or computes it outside the lock and
  // caches it. The compute callback must be pure in `key`.
  template <typename MapT, typename KeyT, typename Fn>
  static bool memoized(Shards<MapT>& shards, const KeyT& key,
                       std::atomic<std::uint64_t>* hits, Fn&& compute) {
    auto& shard =
        shards.shard[typename MapT::hasher{}(key) % kShards];
    {
      std::lock_guard lock(shard.mutex);
      if (const auto it = shard.map.find(key); it != shard.map.end()) {
        if (hits != nullptr) hits->fetch_add(1, std::memory_order_relaxed);
        return it->second;
      }
    }
    const bool value = compute();
    std::lock_guard lock(shard.mutex);
    return shard.map.emplace(key, value).first->second;
  }

  Shards<std::unordered_map<const void*, bool>> self_sig_;
  Shards<std::unordered_map<const void*, bool>> root_member_;
  Shards<std::unordered_map<PtrPair, bool, PtrPairHash>> sig_pair_;
};

Verifier::Verifier(const RootStore& roots, const IntermediatePool& intermediates,
                   VerifyOptions options)
    : roots_(roots), intermediates_(intermediates), options_(options) {}

ValidationResult Verifier::verify(
    const x509::Certificate& leaf,
    std::span<const x509::Certificate> presented) const {
  return verify_impl(leaf, presented, nullptr);
}

ValidationResult Verifier::verify_impl(
    const x509::Certificate& leaf,
    std::span<const x509::Certificate> presented, VerifierMemo* memo) const {
  ValidationResult out;
  if (memo != nullptr) memo->verified.fetch_add(1, std::memory_order_relaxed);

  if (!leaf.version_is_legal()) {
    out.reason = InvalidReason::kMalformedVersion;
    return out;
  }
  const auto time_ok = [&](const x509::Certificate& cert) -> InvalidReason {
    if (cert.validity.not_after < cert.validity.not_before) {
      return InvalidReason::kNeverValid;
    }
    if (options_.enforce_expiry &&
        (options_.at_time < cert.validity.not_before ||
         options_.at_time > cert.validity.not_after)) {
      return InvalidReason::kExpired;
    }
    return InvalidReason::kNone;
  };

  // One crypto::verify, memoized when both sides are store-resident (their
  // addresses are stable for the memo's lifetime). `resident` is tracked by
  // the walk below: candidates taken from the root store or intermediate
  // pool are resident; the leaf and presented certificates are not.
  const auto check_signature = [&](const x509::Certificate& issuer,
                                   bool issuer_resident,
                                   const x509::Certificate& child,
                                   bool child_resident) {
    const auto compute = [&] {
      if (memo != nullptr) {
        memo->sig_checks.fetch_add(1, std::memory_order_relaxed);
      }
      return crypto::verify(issuer.spki, child.tbs_der, child.signature);
    };
    if (memo != nullptr && issuer_resident && child_resident) {
      return memo->signature_pair(&issuer, &child, compute);
    }
    return compute();
  };
  const auto self_signature = [&](const x509::Certificate& cert,
                                  bool resident) {
    const auto compute = [&] {
      if (memo != nullptr) {
        memo->sig_checks.fetch_add(1, std::memory_order_relaxed);
      }
      return is_self_signature(cert);
    };
    if (memo != nullptr && resident) {
      return memo->self_signature(&cert, compute);
    }
    return compute();
  };
  const auto root_member = [&](const x509::Certificate& cert, bool resident) {
    const auto compute = [&] {
      return roots_.contains(cert.fingerprint_sha256());
    };
    if (memo != nullptr && resident) {
      return memo->root_member(&cert, compute);
    }
    return compute();
  };

  // Trusted root presented directly as the endpoint certificate.
  if (roots_.contains(leaf.fingerprint_sha256())) {
    out.valid = true;
    out.chain_length = 1;
    return out;
  }

  // Self-signed detection (error-19 analog + footnote-7 manual check).
  // Checked before the validity window so that a self-signed certificate
  // with a backwards validity period is classified self-signed, as openssl
  // error 19 fires before date checks — this keeps the paper's "other"
  // bucket tiny.
  if (self_signature(leaf, /*resident=*/false)) {
    out.reason = InvalidReason::kSelfSigned;
    return out;
  }

  // Leaf validity window (expiry ignored unless enforce_expiry).
  if (const InvalidReason r = time_ok(leaf); r != InvalidReason::kNone) {
    out.reason = r;
    return out;
  }

  // Walk up the chain. At each level, candidate issuers come from the root
  // store (reaching a root terminates the walk), then the presented chain,
  // then the intermediate pool (transvalid completion). The stores index by
  // encoded subject name, so the issuer key is computed once per level and
  // probes both stores without allocating candidate vectors.
  const x509::Certificate* current = &leaf;
  bool current_resident = false;
  bool used_pool = false;
  for (int depth = 1; depth < options_.max_chain_length; ++depth) {
    const SubjectKey issuer_key = subject_lookup_key(current->issuer);
    const x509::Certificate* next = nullptr;
    bool next_from_pool = false;
    bool next_resident = false;
    bool found_name_match = false;
    bool bad_signature_seen = false;

    const auto try_candidate = [&](const x509::Certificate& cand,
                                   bool from_pool, bool resident) {
      if (next) return;
      if (!(cand.subject == current->issuer)) return;
      found_name_match = true;
      if (!check_signature(cand, resident, *current, current_resident)) {
        bad_signature_seen = true;
        return;
      }
      if (time_ok(cand) != InvalidReason::kNone) return;
      next = &cand;
      next_from_pool = from_pool;
      next_resident = resident;
    };

    for (const std::size_t index : roots_.matches(issuer_key)) {
      try_candidate(roots_.at(index), false, /*resident=*/true);
      if (next) {
        if (options_.crl_store != nullptr &&
            options_.crl_store->is_revoked(leaf.issuer, leaf.serial)) {
          out.reason = InvalidReason::kRevoked;
          return out;
        }
        out.valid = true;
        out.chain_length = depth + 1;
        out.transvalid = used_pool;
        return out;
      }
    }
    for (const x509::Certificate& cand : presented) {
      try_candidate(cand, false, /*resident=*/false);
    }
    if (!next) {
      for (const std::size_t index : intermediates_.matches(issuer_key)) {
        try_candidate(intermediates_.at(index), true, /*resident=*/true);
      }
    }
    if (!next) {
      out.reason = (found_name_match && bad_signature_seen)
                       ? InvalidReason::kBadSignature
                       : InvalidReason::kUntrustedIssuer;
      return out;
    }
    if (self_signature(*next, next_resident) &&
        !root_member(*next, next_resident)) {
      // Chain roots at an untrusted self-signed certificate.
      out.reason = InvalidReason::kUntrustedIssuer;
      return out;
    }
    used_pool = used_pool || next_from_pool;
    current = next;
    current_resident = next_resident;
  }
  out.reason = InvalidReason::kUntrustedIssuer;  // chain too long / dangling
  return out;
}

BatchVerifier::BatchVerifier(const RootStore& roots,
                             const IntermediatePool& intermediates,
                             VerifyOptions options)
    : base_(roots, intermediates, options),
      memo_(std::make_unique<VerifierMemo>()) {}

BatchVerifier::~BatchVerifier() = default;

ValidationResult BatchVerifier::verify(
    const x509::Certificate& leaf,
    std::span<const x509::Certificate> presented) const {
  return base_.verify_impl(leaf, presented, memo_.get());
}

std::vector<ValidationResult> BatchVerifier::verify_all(
    std::span<const x509::Certificate> leaves, util::ThreadPool* pool) const {
  std::vector<ValidationResult> results(leaves.size());
  util::ThreadPool& workers =
      pool != nullptr ? *pool : util::ThreadPool::global();
  workers.parallel_for(leaves.size(), 32,
                       [&](std::size_t begin, std::size_t end) {
                         for (std::size_t i = begin; i < end; ++i) {
                           results[i] = base_.verify_impl(leaves[i], {},
                                                          memo_.get());
                         }
                       });
  return results;
}

namespace {

// Everything a revocation pass learns about one issuer's CRL: computed
// once per issuer per check_revocation_all call and shared by every
// certificate naming that issuer. The entry is a pure function of
// (source, issuer_key, now, stores), so racing threads that compute it
// twice produce identical values and the emplace winner is
// indistinguishable from the loser — same determinism argument as
// VerifierMemo.
struct CrlVerdict {
  bool reachable = false;  ///< the distribution point answered
  bool verified = false;   ///< parsed + issuer signature checked + sane dates
  bool stale = false;      ///< nextUpdate < now
  std::vector<std::string> revoked_hex;  ///< revoked serials, sorted hex
};

struct CrlMemo {
  static constexpr std::size_t kShards = 16;
  struct Shard {
    std::mutex mutex;
    std::unordered_map<std::string,
                       std::shared_ptr<const CrlVerdict>> map;
  };
  Shard shard[kShards];

  Shard& shard_for(std::string_view issuer_key) {
    return shard[std::hash<std::string_view>{}(issuer_key) % kShards];
  }
};

}  // namespace

std::vector<RevocationStatus> BatchVerifier::check_revocation_all(
    std::span<const RevocationQuery> queries, const RevocationSource& source,
    util::UnixTime now, util::ThreadPool* pool) const {
  const RootStore& roots = base_.roots_;
  const IntermediatePool& intermediates = base_.intermediates_;

  // The memo is per call, not per verifier: `source` and `now` vary
  // between calls, and tying the cache to their values would just re-grow
  // it anyway. Within one batch every certificate of an issuer shares one
  // fetch + parse + signature check.
  CrlMemo memo;

  const auto compute_verdict = [&](std::string_view issuer_key) {
    auto verdict = std::make_shared<CrlVerdict>();
    util::Bytes der;
    if (!source.fetch_crl(issuer_key, der)) return verdict;
    verdict->reachable = true;
    std::optional<x509::Crl> crl = x509::parse_crl(der);
    if (!crl.has_value()) return verdict;
    // A CRL whose nextUpdate precedes thisUpdate is malformed, not merely
    // stale — same rule CrlStore::add enforces.
    if (crl->next_update.has_value() &&
        *crl->next_update < crl->this_update) {
      return verdict;
    }
    // The CRL is only trusted when a store-resident certificate with the
    // CRL's issuer name verifies its signature — the same stores the
    // chain walk trusts.
    const SubjectKey key = subject_lookup_key(crl->issuer);
    bool signed_by_issuer = false;
    const auto try_issuer = [&](const x509::Certificate& cand) {
      if (signed_by_issuer) return;
      if (!(cand.subject == crl->issuer)) return;
      if (crypto::verify(cand.spki, crl->tbs_der, crl->signature)) {
        signed_by_issuer = true;
      }
    };
    for (const std::size_t index : roots.matches(key)) {
      try_issuer(roots.at(index));
    }
    for (const std::size_t index : intermediates.matches(key)) {
      try_issuer(intermediates.at(index));
    }
    if (!signed_by_issuer) return verdict;
    verdict->verified = true;
    verdict->stale = crl->next_update.has_value() && *crl->next_update < now;
    verdict->revoked_hex.reserve(crl->revoked.size());
    for (const x509::RevokedEntry& entry : crl->revoked) {
      verdict->revoked_hex.push_back(entry.serial.to_hex());
    }
    std::sort(verdict->revoked_hex.begin(), verdict->revoked_hex.end());
    return verdict;
  };

  const auto crl_verdict = [&](const std::string& issuer_key) {
    CrlMemo::Shard& shard = memo.shard_for(issuer_key);
    {
      std::lock_guard lock(shard.mutex);
      if (const auto it = shard.map.find(issuer_key);
          it != shard.map.end()) {
        return it->second;
      }
    }
    // Computed outside the lock; a racing duplicate is pure and identical.
    std::shared_ptr<const CrlVerdict> verdict = compute_verdict(issuer_key);
    std::lock_guard lock(shard.mutex);
    return shard.map.emplace(issuer_key, std::move(verdict)).first->second;
  };

  const auto status_of = [&](const RevocationQuery& q) {
    if (q.has_ocsp) {
      switch (source.ocsp(q.issuer_key, q.serial_hex)) {
        case RevocationSource::OcspAnswer::kGood:
          return RevocationStatus::kGood;
        case RevocationSource::OcspAnswer::kRevoked:
          return RevocationStatus::kRevoked;
        case RevocationSource::OcspAnswer::kUnknown:
          return RevocationStatus::kUnknown;
        case RevocationSource::OcspAnswer::kUnreachable:
          // Fall back to the CRL when one is advertised; otherwise every
          // advertised endpoint failed.
          if (!q.has_crl) return RevocationStatus::kUnreachable;
          break;
      }
    }
    if (!q.has_crl) return RevocationStatus::kUnknown;
    const std::shared_ptr<const CrlVerdict> verdict =
        crl_verdict(q.issuer_key);
    if (!verdict->reachable) return RevocationStatus::kUnreachable;
    if (!verdict->verified) return RevocationStatus::kUnknown;
    // A revoked entry outranks staleness: even an expired CRL is positive
    // evidence of revocation.
    if (std::binary_search(verdict->revoked_hex.begin(),
                           verdict->revoked_hex.end(), q.serial_hex)) {
      return RevocationStatus::kRevoked;
    }
    if (verdict->stale) return RevocationStatus::kStaleCrl;
    return RevocationStatus::kGood;
  };

  std::vector<RevocationStatus> results(queries.size(),
                                        RevocationStatus::kUnknown);
  util::ThreadPool& workers =
      pool != nullptr ? *pool : util::ThreadPool::global();
  workers.parallel_for(queries.size(), 32,
                       [&](std::size_t begin, std::size_t end) {
                         for (std::size_t i = begin; i < end; ++i) {
                           results[i] = status_of(queries[i]);
                         }
                       });
  return results;
}

BatchVerifyStats BatchVerifier::stats() const {
  BatchVerifyStats out;
  out.verified = memo_->verified.load(std::memory_order_relaxed);
  out.sig_checks = memo_->sig_checks.load(std::memory_order_relaxed);
  out.sig_cache_hits = memo_->sig_cache_hits.load(std::memory_order_relaxed);
  return out;
}

}  // namespace sm::pki
