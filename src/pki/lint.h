// A zlint-style certificate linter: codifies the malformations and bad
// practices the paper catalogues in invalid device certificates (negative
// validity periods, epoch-stuck clocks, year-3000 expiries, empty and
// private-IP names, fixed serial numbers, illegal versions) plus the basic
// RFC 5280 / CA-Browser-Forum hygiene checks a real issuance pipeline runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/datetime.h"
#include "x509/certificate.h"

namespace sm::pki {

/// Lint severities.
enum class LintSeverity : std::uint8_t {
  kInfo = 0,  ///< noteworthy but not wrong (e.g. self-issued)
  kWarning,   ///< bad practice (e.g. 20-year validity, fixed serial)
  kError,     ///< malformed or unusable (e.g. negative validity)
};

/// Individual checks. Stable identifiers; new checks append.
enum class LintCheck : std::uint8_t {
  kNegativeValidity = 0,   ///< NotAfter precedes NotBefore
  kLongValidity,           ///< leaf validity beyond 39 months (CA/B rule)
  kAbsurdValidity,         ///< validity beyond 50 years
  kEpochNotBefore,         ///< NotBefore at/near the Unix epoch (stuck clock)
  kFarFutureNotAfter,      ///< NotAfter in year 2100 or later
  kEmptySubject,           ///< subject carries no attributes
  kEmptyIssuer,            ///< issuer carries no attributes
  kIpAddressCommonName,    ///< CN is an IP address (public)
  kPrivateIpCommonName,    ///< CN is an RFC 1918 address
  kFixedSerialNumber,      ///< serial number is 1
  kSelfIssued,             ///< subject equals issuer
  kMissingSan,             ///< leaf with a DNS-ish CN but no SAN
  kIllegalVersion,         ///< version outside v1..v3
  kV1WithExtensions,       ///< (defensive; builder prevents it)
  kCaWithoutKeyIdentifier, ///< CA certificate missing SubjectKeyIdentifier
  kMissingAki,             ///< non-self-issued cert without an AKI
  kWeakRsaKey,             ///< RSA modulus under 2048 bits
};

/// Stable kebab-case name, e.g. "negative-validity".
std::string to_string(LintCheck check);
std::string to_string(LintSeverity severity);

/// One finding.
struct LintFinding {
  LintCheck check = LintCheck::kNegativeValidity;
  LintSeverity severity = LintSeverity::kInfo;
  std::string message;
};

/// Linter options.
struct LintOptions {
  /// CA/B-forum leaf validity ceiling (39 months by default).
  double max_leaf_validity_days = 39 * 30.44;
  /// NotBefore at or before this instant counts as a stuck clock.
  util::UnixTime epoch_threshold = util::make_date(1982, 1, 1);
  /// RSA keys below this many bits are flagged weak.
  std::size_t min_rsa_bits = 2048;
};

/// Runs every check against one certificate. Findings are ordered by
/// severity (errors first), then by check id.
std::vector<LintFinding> lint_certificate(const x509::Certificate& cert,
                                          const LintOptions& options = {});

/// Aggregate lint counters over a corpus.
struct LintSummary {
  std::uint64_t certificates = 0;
  std::uint64_t with_errors = 0;
  std::uint64_t with_warnings = 0;
  /// check id -> certificates flagged (indexed by LintCheck value).
  std::vector<std::uint64_t> by_check;
};

/// Lints a batch of certificates and aggregates.
LintSummary lint_all(const std::vector<x509::Certificate>& certs,
                     const LintOptions& options = {});

}  // namespace sm::pki
