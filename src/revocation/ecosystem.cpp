#include "revocation/ecosystem.h"

#include <algorithm>
#include <utility>

#include "bignum/biguint.h"

namespace sm::revocation {

namespace {

// splitmix64 finalizer: the same avalanche the simworld's mix3 uses, local
// here so draws stay stable even if simworld's mixing ever changes.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// FNV-1a over the key strings: platform-independent (std::hash is not
// specified), so a seed reproduces the same ecosystem everywhere.
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

// Deterministic uniform draw in [0, 1) from three lanes.
double unit_draw(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  const std::uint64_t h = mix64(a ^ mix64(b ^ mix64(c)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool contains_sorted(const std::vector<std::string>& sorted,
                     std::string_view value) {
  return std::binary_search(sorted.begin(), sorted.end(), value);
}

}  // namespace

struct Ecosystem::Authority {
  x509::Name name;
  crypto::SigningKey key;
  AuthorityProfile profile;
  /// serial hex -> earliest issue time (duplicates collapse here).
  std::map<std::string, util::UnixTime> certs;
  /// Serials the CA decided to revoke (sorted; the OCSP truth).
  std::vector<std::string> intent_revoked;
  /// Serials on the final served edition (sorted; the CRL-path truth — a
  /// stale CRL was frozen before late revocations landed).
  std::vector<std::string> crl_revoked;
  std::vector<x509::Crl> editions;  ///< oldest..newest; last is served
  std::size_t mass_revoked = 0;
};

Ecosystem::Ecosystem(EcosystemConfig config) : config_(std::move(config)) {}

Ecosystem::~Ecosystem() = default;

void Ecosystem::add_authority(const std::string& issuer_key,
                              const x509::Certificate& cert,
                              const crypto::SigningKey& key, bool trusted) {
  if (published_) return;
  auto [it, inserted] = authorities_.try_emplace(issuer_key);
  if (!inserted) return;
  it->second.name = cert.subject;
  it->second.key = key;
  it->second.profile.trusted = trusted;
}

void Ecosystem::add_certificate(const std::string& issuer_key,
                                const std::string& serial_hex,
                                util::UnixTime not_before) {
  if (published_) return;
  const auto it = authorities_.find(issuer_key);
  if (it == authorities_.end()) return;
  auto [cert_it, inserted] =
      it->second.certs.try_emplace(serial_hex, not_before);
  if (!inserted && not_before < cert_it->second) {
    cert_it->second = not_before;
  }
}

void Ecosystem::publish() {
  if (published_) return;
  published_ = true;

  const int edition_count = std::max(1, config_.editions);
  const util::UnixTime period =
      std::max<util::UnixTime>(util::kSecondsPerDay, config_.edition_period);

  for (auto& [issuer_key, auth] : authorities_) {
    const std::uint64_t issuer_hash = fnv1a(issuer_key);

    // Pathology profile: one draw per axis, partitioned by the configured
    // fractions.
    const double crl_draw = unit_draw(config_.seed, issuer_hash, 0xc41f);
    if (crl_draw < config_.stale_fraction) {
      auth.profile.crl_health = AuthorityProfile::CrlHealth::kStale;
    } else if (crl_draw <
               config_.stale_fraction + config_.unreachable_fraction) {
      auth.profile.crl_health = AuthorityProfile::CrlHealth::kUnreachable;
    }
    const double ocsp_draw = unit_draw(config_.seed, issuer_hash, 0x0c59);
    if (ocsp_draw < config_.ocsp_unknown_fraction) {
      auth.profile.ocsp_mode = AuthorityProfile::OcspMode::kUnknown;
    } else if (ocsp_draw < config_.ocsp_unknown_fraction +
                               config_.ocsp_unreachable_fraction) {
      auth.profile.ocsp_mode = AuthorityProfile::OcspMode::kUnreachable;
    }

    // Revocation decisions. The mass event outranks the baseline draw so
    // its victim count is exactly the configured fraction of eligible
    // certificates, not diluted by overlap.
    const bool mass_victim = config_.mass_event_enabled &&
                             issuer_key == config_.mass_event_issuer;
    struct Pending {
      std::string serial_hex;
      util::UnixTime date = 0;
    };
    std::vector<Pending> pending;
    for (const auto& [serial_hex, not_before] : auth.certs) {
      const std::uint64_t serial_hash = fnv1a(serial_hex);
      if (mass_victim && not_before < config_.mass_event_time &&
          unit_draw(config_.seed ^ 0x4ea7, issuer_hash, serial_hash) <
              config_.mass_event_fraction) {
        pending.push_back({serial_hex, config_.mass_event_time});
        ++auth.mass_revoked;
      } else if (unit_draw(config_.seed, issuer_hash,
                           serial_hash ^ 0xbad) <
                 config_.baseline_revoked_fraction) {
        // Baseline revocations land shortly after issuance, so every
        // edition published since carries them.
        pending.push_back({serial_hex,
                           not_before + util::kSecondsPerDay});
      }
    }
    auth.intent_revoked.reserve(pending.size());
    for (const Pending& p : pending) {
      auth.intent_revoked.push_back(p.serial_hex);
    }
    std::sort(auth.intent_revoked.begin(), auth.intent_revoked.end());

    // Sign the editions. A stale authority froze its CRL a month before
    // check_time with a nextUpdate already passed; a healthy one
    // published yesterday with a week of validity left. Unreachable
    // authorities still sign (the CRLs exist; nobody can fetch them).
    const bool stale =
        auth.profile.crl_health == AuthorityProfile::CrlHealth::kStale;
    const util::UnixTime final_this =
        config_.check_time -
        (stale ? 30 * util::kSecondsPerDay : util::kSecondsPerDay);
    const util::UnixTime final_next =
        final_this +
        (stale ? 20 * util::kSecondsPerDay : 8 * util::kSecondsPerDay);
    auth.editions.reserve(edition_count);
    for (int k = 0; k < edition_count; ++k) {
      const bool final_edition = k == edition_count - 1;
      const util::UnixTime this_update =
          final_this - static_cast<util::UnixTime>(edition_count - 1 - k) *
                           period;
      x509::CrlBuilder builder;
      builder.set_issuer(auth.name)
          .set_this_update(this_update)
          .set_next_update(final_edition ? final_next : this_update + period);
      for (const Pending& p : pending) {
        if (p.date <= this_update) {
          builder.add_revoked(bignum::BigUint::from_hex(p.serial_hex),
                              p.date);
        }
      }
      auth.editions.push_back(builder.sign(auth.key));
    }
    const x509::Crl& served = auth.editions.back();
    auth.crl_revoked.reserve(served.revoked.size());
    for (const x509::RevokedEntry& entry : served.revoked) {
      auth.crl_revoked.push_back(entry.serial.to_hex());
    }
    std::sort(auth.crl_revoked.begin(), auth.crl_revoked.end());
  }
}

const Ecosystem::Authority* Ecosystem::find(
    std::string_view issuer_key) const {
  const auto it = authorities_.find(issuer_key);
  return it == authorities_.end() ? nullptr : &it->second;
}

bool Ecosystem::fetch_crl(std::string_view issuer_key,
                          util::Bytes& der) const {
  const Authority* auth = find(issuer_key);
  if (auth == nullptr || auth->editions.empty()) return false;
  if (auth->profile.crl_health ==
      AuthorityProfile::CrlHealth::kUnreachable) {
    return false;
  }
  const util::Bytes& served = auth->editions.back().der;
  der.insert(der.end(), served.begin(), served.end());
  return true;
}

pki::RevocationSource::OcspAnswer Ecosystem::ocsp(
    std::string_view issuer_key, std::string_view serial_hex) const {
  const Authority* auth = find(issuer_key);
  if (auth == nullptr) return OcspAnswer::kUnreachable;
  switch (auth->profile.ocsp_mode) {
    case AuthorityProfile::OcspMode::kUnreachable:
      return OcspAnswer::kUnreachable;
    case AuthorityProfile::OcspMode::kUnknown:
      return OcspAnswer::kUnknown;
    case AuthorityProfile::OcspMode::kOk:
      break;
  }
  return contains_sorted(auth->intent_revoked, serial_hex)
             ? OcspAnswer::kRevoked
             : OcspAnswer::kGood;
}

pki::RevocationStatus Ecosystem::expected_status(
    const std::string& issuer_key, const std::string& serial_hex,
    bool has_crl, bool has_ocsp) const {
  const Authority* auth = find(issuer_key);
  if (has_ocsp) {
    const bool responder_up =
        auth != nullptr && auth->profile.ocsp_mode !=
                               AuthorityProfile::OcspMode::kUnreachable;
    if (responder_up) {
      if (auth->profile.ocsp_mode == AuthorityProfile::OcspMode::kUnknown) {
        return pki::RevocationStatus::kUnknown;
      }
      return contains_sorted(auth->intent_revoked, serial_hex)
                 ? pki::RevocationStatus::kRevoked
                 : pki::RevocationStatus::kGood;
    }
    if (!has_crl) return pki::RevocationStatus::kUnreachable;
    // Responder down but a CRL is advertised: fall through to it.
  }
  if (!has_crl) return pki::RevocationStatus::kUnknown;
  if (auth == nullptr || auth->profile.crl_health ==
                             AuthorityProfile::CrlHealth::kUnreachable) {
    return pki::RevocationStatus::kUnreachable;
  }
  // The CRL is fetchable but clients without the issuer certificate
  // cannot verify its signature — unclassifiable, not good.
  if (!auth->profile.trusted) return pki::RevocationStatus::kUnknown;
  if (contains_sorted(auth->crl_revoked, serial_hex)) {
    return pki::RevocationStatus::kRevoked;
  }
  if (auth->profile.crl_health == AuthorityProfile::CrlHealth::kStale) {
    return pki::RevocationStatus::kStaleCrl;
  }
  return pki::RevocationStatus::kGood;
}

const AuthorityProfile* Ecosystem::profile(
    std::string_view issuer_key) const {
  const Authority* auth = find(issuer_key);
  return auth == nullptr ? nullptr : &auth->profile;
}

bool Ecosystem::is_revoked_intent(std::string_view issuer_key,
                                  std::string_view serial_hex) const {
  const Authority* auth = find(issuer_key);
  return auth != nullptr && contains_sorted(auth->intent_revoked, serial_hex);
}

std::span<const x509::Crl> Ecosystem::editions(
    std::string_view issuer_key) const {
  const Authority* auth = find(issuer_key);
  if (auth == nullptr) return {};
  return {auth->editions.data(), auth->editions.size()};
}

EcosystemStats Ecosystem::stats() const {
  EcosystemStats out;
  out.authorities = authorities_.size();
  for (const auto& [issuer_key, auth] : authorities_) {
    out.certificates += auth.certs.size();
    out.revoked_intent += auth.intent_revoked.size();
    out.revoked_mass_event += auth.mass_revoked;
    if (auth.profile.crl_health == AuthorityProfile::CrlHealth::kStale) {
      ++out.stale_authorities;
    }
    if (auth.profile.crl_health ==
        AuthorityProfile::CrlHealth::kUnreachable) {
      ++out.unreachable_authorities;
    }
  }
  return out;
}

}  // namespace sm::revocation
