// The simulated revocation ecosystem: every simworld CA becomes a CRL
// publisher and an in-process OCSP-style responder, with the pathologies
// "Revocation Statuses on the Internet" (Korzhitskii & Carlsson) observed
// in the wild dialed in as deterministic, seed-driven knobs — stale CRLs
// whose nextUpdate has passed, distribution points that never answer,
// responders that answer `unknown` for everything, and a mass-revocation
// event (the Heartbleed analog) that revokes a configurable fraction of
// one vendor archetype's certificates mid-campaign.
//
// The Ecosystem is built in two phases. During world construction,
// authorities (CA name + signing key) and issued certificates (issuer key
// + serial + issue time) are registered single-threaded. publish() then
// draws each authority's pathology profile and per-certificate revocation
// decisions from the seed, and signs a short series of CRL *editions* per
// authority with the CA's real key (round-tripped through the asn1
// writer/reader via x509::CrlBuilder). After publish() the object is
// immutable and safe to query concurrently — it implements
// pki::RevocationSource, so pki::BatchVerifier::check_revocation_all can
// run straight against it.
//
// Two revocation sets exist per authority, on purpose:
//
//   * the *intent* set — every serial the CA has decided to revoke; the
//     OCSP responder answers from this set (responders are live);
//   * the *served CRL* set — the entries on the final published edition.
//     A stale CRL was frozen before the mass event, so the two can
//     legitimately disagree; clients on the CRL path see the stale view.
//
// expected_status() is the intent-path oracle: what a client consulting
// this ecosystem *should* conclude for a certificate, computed from the
// ecosystem's own knowledge without touching DER or signatures. Tests
// compare it against the mechanism path (BatchVerifier fetching, parsing
// and signature-checking the served CRLs) — two independent
// implementations that must agree on every certificate.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/signature.h"
#include "pki/verifier.h"
#include "util/datetime.h"
#include "x509/certificate.h"
#include "x509/crl.h"

namespace sm::revocation {

/// Seed-driven knobs for the simulated revocation ecosystem. All
/// fractions are in [0, 1] and drawn per authority / per certificate with
/// splitmix-style hashes of (seed, issuer, serial) — no global RNG state,
/// so registration order does not affect outcomes.
struct EcosystemConfig {
  std::uint64_t seed = 0;

  /// The instant clients check at (campaign end): staleness and edition
  /// timestamps are all anchored here.
  util::UnixTime check_time = 0;

  /// Fraction of authorities whose CRL is stale (nextUpdate in the past).
  double stale_fraction = 0.15;
  /// Fraction of authorities whose CRL distribution point never answers.
  double unreachable_fraction = 0.10;
  /// Fraction of authorities whose OCSP responder answers `unknown`.
  double ocsp_unknown_fraction = 0.10;
  /// Fraction of authorities whose OCSP responder never answers.
  double ocsp_unreachable_fraction = 0.10;

  /// Baseline per-certificate revocation probability (drawn per serial).
  double baseline_revoked_fraction = 0.02;

  /// Mass-revocation event (Heartbleed analog). When enabled, every
  /// certificate of `mass_event_issuer` issued before `mass_event_time`
  /// is revoked with probability `mass_event_fraction`, dated at the
  /// event instant.
  bool mass_event_enabled = true;
  std::string mass_event_issuer;  ///< issuer key of the victim CA
  double mass_event_fraction = 0.5;
  util::UnixTime mass_event_time = 0;

  /// CRL editions signed per authority (>= 1); each earlier edition is
  /// `edition_period` older. Only the final edition is served; the rest
  /// model periodic publication and feed CrlStore replace-with-fresher
  /// tests.
  int editions = 3;
  util::UnixTime edition_period = 14 * util::kSecondsPerDay;
};

/// One authority's drawn pathology profile.
struct AuthorityProfile {
  enum class CrlHealth : std::uint8_t {
    kOk = 0,       ///< fresh CRL, reachable distribution point
    kStale,        ///< served CRL's nextUpdate has passed
    kUnreachable,  ///< distribution point never answers
  };
  enum class OcspMode : std::uint8_t {
    kOk = 0,       ///< authoritative good/revoked answers
    kUnknown,      ///< responder answers unknown for every serial
    kUnreachable,  ///< responder never answers
  };

  CrlHealth crl_health = CrlHealth::kOk;
  OcspMode ocsp_mode = OcspMode::kOk;
  /// Whether clients can verify this authority's CRL signature (the
  /// issuer certificate is in their root store or intermediate pool). An
  /// untrusted vendor CA may publish perfectly fresh CRLs that clients
  /// still cannot act on.
  bool trusted = false;
};

/// Aggregate counts for logging and analysis ground truth.
struct EcosystemStats {
  std::size_t authorities = 0;
  std::size_t certificates = 0;        ///< registered under a known issuer
  std::size_t revoked_intent = 0;      ///< serials the CAs decided to revoke
  std::size_t revoked_mass_event = 0;  ///< of those, by the mass event
  std::size_t stale_authorities = 0;
  std::size_t unreachable_authorities = 0;
};

/// The ecosystem: registration, publication, and query (see file header).
class Ecosystem final : public pki::RevocationSource {
 public:
  explicit Ecosystem(EcosystemConfig config);
  ~Ecosystem() override;

  /// Registers one CA. `issuer_key` is the DN rendering its issued
  /// certificates carry (scan::CertRecord::issuer_dn ==
  /// cert.issuer.to_string()). `trusted` marks whether clients hold the
  /// CA certificate (see AuthorityProfile::trusted). Must be called
  /// before publish(); duplicate keys keep the first registration.
  void add_authority(const std::string& issuer_key,
                     const x509::Certificate& cert,
                     const crypto::SigningKey& key, bool trusted);

  /// Records one issued certificate under its issuer. Unknown issuers
  /// (self-signed devices, dangling distribution points) are ignored —
  /// their endpoints will simply be unreachable. Duplicate serials under
  /// one issuer collapse to one entry (identical draws, identical fate).
  void add_certificate(const std::string& issuer_key,
                       const std::string& serial_hex,
                       util::UnixTime not_before);

  /// Draws profiles and revocation decisions, then signs every CRL
  /// edition. Call exactly once, after all registration.
  void publish();

  // pki::RevocationSource (valid after publish(); thread-safe):
  bool fetch_crl(std::string_view issuer_key,
                 util::Bytes& der) const override;
  OcspAnswer ocsp(std::string_view issuer_key,
                  std::string_view serial_hex) const override;

  /// The intent-path oracle: the status a client with these advertised
  /// endpoints should conclude, from ecosystem knowledge alone. Tests
  /// compare this against the BatchVerifier mechanism path.
  pki::RevocationStatus expected_status(const std::string& issuer_key,
                                        const std::string& serial_hex,
                                        bool has_crl, bool has_ocsp) const;

  /// Drawn profile for one authority, or nullptr when unregistered.
  const AuthorityProfile* profile(std::string_view issuer_key) const;

  /// True when the CA decided to revoke `serial_hex` (the intent set —
  /// may postdate a stale served CRL).
  bool is_revoked_intent(std::string_view issuer_key,
                         std::string_view serial_hex) const;

  /// All signed CRL editions for one authority, oldest to newest (empty
  /// span when unregistered). Only the last is served by fetch_crl.
  std::span<const x509::Crl> editions(std::string_view issuer_key) const;

  EcosystemStats stats() const;
  const EcosystemConfig& config() const { return config_; }

 private:
  struct Authority;

  const Authority* find(std::string_view issuer_key) const;

  EcosystemConfig config_;
  bool published_ = false;
  // std::map: deterministic iteration order for publish()'s draws and
  // stats, independent of hash-table layout.
  std::map<std::string, Authority, std::less<>> authorities_;
};

}  // namespace sm::revocation
