// Calendar/date utilities with a range wide enough for the pathological
// certificates the paper observes (Not After dates in year 3000+ and
// validity periods over one million days).
//
// Times are int64 seconds since the Unix epoch (UTC, no leap seconds), which
// covers years [-292e9, +292e9] — far beyond any X.509 date.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace sm::util {

/// Seconds since 1970-01-01T00:00:00Z.
using UnixTime = std::int64_t;

constexpr std::int64_t kSecondsPerDay = 86400;

/// A Gregorian calendar date-time (UTC).
struct CivilDateTime {
  int year = 1970;       ///< e.g. 2014; may exceed 9999 for absurd certs
  unsigned month = 1;    ///< 1..12
  unsigned day = 1;      ///< 1..31
  unsigned hour = 0;     ///< 0..23
  unsigned minute = 0;   ///< 0..59
  unsigned second = 0;   ///< 0..59

  friend bool operator==(const CivilDateTime&, const CivilDateTime&) = default;
};

/// Days since the epoch for a civil date (Hinnant's days_from_civil).
std::int64_t days_from_civil(int year, unsigned month, unsigned day);

/// Inverse of days_from_civil (Hinnant's civil_from_days).
CivilDateTime civil_from_days(std::int64_t days);

/// Converts a civil date-time to Unix seconds.
UnixTime to_unix(const CivilDateTime& c);

/// Converts Unix seconds to a civil date-time.
CivilDateTime from_unix(UnixTime t);

/// Convenience: midnight UTC of the given date as Unix seconds.
UnixTime make_date(int year, unsigned month, unsigned day);

/// Formats as "YYYY-MM-DD HH:MM:SS" (ISO-like, UTC implied).
std::string format_datetime(UnixTime t);

/// Formats as "YYYY-MM-DD".
std::string format_date(UnixTime t);

/// Parses "YYYY-MM-DD" or "YYYY-MM-DD HH:MM:SS". Returns nullopt when the
/// string is malformed or fields are out of range.
std::optional<UnixTime> parse_datetime(const std::string& s);

/// True when `t` falls in a year representable by ASN.1 UTCTime (1950-2049).
bool fits_utctime(UnixTime t);

}  // namespace sm::util
