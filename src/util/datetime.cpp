#include "util/datetime.h"

#include <array>
#include <charconv>
#include <cstdio>

namespace sm::util {

namespace {

bool is_leap(int y) {
  return y % 4 == 0 && (y % 100 != 0 || y % 400 == 0);
}

unsigned last_day_of_month(int y, unsigned m) {
  static constexpr std::array<unsigned, 12> kDays = {31, 28, 31, 30, 31, 30,
                                                     31, 31, 30, 31, 30, 31};
  if (m == 2 && is_leap(y)) return 29;
  return kDays[m - 1];
}

}  // namespace

std::int64_t days_from_civil(int year, unsigned month, unsigned day) {
  // Howard Hinnant's algorithm, valid for all representable inputs.
  const std::int64_t y = year - (month <= 2 ? 1 : 0);
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);  // [0, 399]
  const unsigned doy =
      (153 * (month + (month > 2 ? -3 : 9)) + 2) / 5 + day - 1;  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;  // [0, 146096]
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

CivilDateTime civil_from_days(std::int64_t days) {
  const std::int64_t z = days + 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);  // [0, 146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;  // [0, 399]
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                       // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;               // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                    // [1, 12]
  CivilDateTime c;
  c.year = static_cast<int>(y + (m <= 2 ? 1 : 0));
  c.month = m;
  c.day = d;
  return c;
}

UnixTime to_unix(const CivilDateTime& c) {
  return days_from_civil(c.year, c.month, c.day) * kSecondsPerDay +
         c.hour * 3600 + c.minute * 60 + c.second;
}

CivilDateTime from_unix(UnixTime t) {
  std::int64_t days = t / kSecondsPerDay;
  std::int64_t rem = t % kSecondsPerDay;
  if (rem < 0) {
    rem += kSecondsPerDay;
    days -= 1;
  }
  CivilDateTime c = civil_from_days(days);
  c.hour = static_cast<unsigned>(rem / 3600);
  c.minute = static_cast<unsigned>((rem % 3600) / 60);
  c.second = static_cast<unsigned>(rem % 60);
  return c;
}

UnixTime make_date(int year, unsigned month, unsigned day) {
  return days_from_civil(year, month, day) * kSecondsPerDay;
}

std::string format_datetime(UnixTime t) {
  const CivilDateTime c = from_unix(t);
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%04d-%02u-%02u %02u:%02u:%02u", c.year,
                c.month, c.day, c.hour, c.minute, c.second);
  return buf;
}

std::string format_date(UnixTime t) {
  const CivilDateTime c = from_unix(t);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02u-%02u", c.year, c.month, c.day);
  return buf;
}

std::optional<UnixTime> parse_datetime(const std::string& s) {
  CivilDateTime c;
  auto parse_uint = [&](std::size_t pos, std::size_t len,
                        unsigned& out) -> bool {
    if (pos + len > s.size()) return false;
    unsigned v = 0;
    const auto [ptr, ec] =
        std::from_chars(s.data() + pos, s.data() + pos + len, v);
    if (ec != std::errc{} || ptr != s.data() + pos + len) return false;
    out = v;
    return true;
  };
  unsigned y = 0, mo = 0, d = 0;
  if (s.size() != 10 && s.size() != 19) return std::nullopt;
  if (!parse_uint(0, 4, y) || s[4] != '-' || !parse_uint(5, 2, mo) ||
      s[7] != '-' || !parse_uint(8, 2, d)) {
    return std::nullopt;
  }
  c.year = static_cast<int>(y);
  c.month = mo;
  c.day = d;
  if (mo < 1 || mo > 12 || d < 1 || d > last_day_of_month(c.year, mo)) {
    return std::nullopt;
  }
  if (s.size() == 19) {
    unsigned h = 0, mi = 0, sec = 0;
    if (s[10] != ' ' || !parse_uint(11, 2, h) || s[13] != ':' ||
        !parse_uint(14, 2, mi) || s[16] != ':' || !parse_uint(17, 2, sec)) {
      return std::nullopt;
    }
    if (h > 23 || mi > 59 || sec > 59) return std::nullopt;
    c.hour = h;
    c.minute = mi;
    c.second = sec;
  }
  return to_unix(c);
}

bool fits_utctime(UnixTime t) {
  const int year = from_unix(t).year;
  return year >= 1950 && year <= 2049;
}

}  // namespace sm::util
