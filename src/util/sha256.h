// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used for certificate fingerprints, public-key fingerprints, and as the
// digest inside both the real RSA signature scheme and the simulated
// signature scheme (see crypto/).
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace sm::util {

/// Incremental SHA-256 hasher.
///
/// Usage:
///   Sha256 h;
///   h.update(part1).update(part2);
///   Bytes digest = h.finish();   // 32 bytes
class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;

  Sha256();

  /// Absorbs more input. May be called repeatedly before finish().
  Sha256& update(BytesView data);

  /// Completes the hash and returns the 32-byte digest. The hasher must not
  /// be reused after finish().
  Bytes finish();

  /// One-shot convenience: SHA-256 of a single buffer.
  static Bytes digest(BytesView data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

}  // namespace sm::util
