// Basic byte-buffer aliases and helpers shared by every module.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace sm::util {

/// A dynamically-sized byte buffer. All wire formats (DER, key material,
/// digests) are represented as `Bytes` throughout the library.
using Bytes = std::vector<std::uint8_t>;

/// A non-owning view over bytes, used for all parsing/verification inputs.
using BytesView = std::span<const std::uint8_t>;

/// Copies the raw bytes of a string into a `Bytes` buffer.
inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

/// Reinterprets a byte buffer as a std::string (no encoding validation).
inline std::string to_string(BytesView b) {
  return std::string(b.begin(), b.end());
}

/// Appends `src` to the end of `dst`.
inline void append(Bytes& dst, BytesView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

}  // namespace sm::util
