// MD5 (RFC 1321), implemented from scratch.
//
// Like SHA-1, MD5 is broken; it exists here because era-appropriate
// certificates use MD5 fingerprints and a handful of legacy signature OIDs.
// It is never used for new signatures.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace sm::util {

/// Incremental MD5 hasher (16-byte digest). API mirrors Sha256.
class Md5 {
 public:
  static constexpr std::size_t kDigestSize = 16;

  Md5();

  /// Absorbs more input.
  Md5& update(BytesView data);

  /// Completes the hash; the hasher must not be reused afterwards.
  Bytes finish();

  /// One-shot convenience: MD5 of a single buffer.
  static Bytes digest(BytesView data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 4> state_;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

}  // namespace sm::util
