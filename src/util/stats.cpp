#include "util/stats.h"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <stdexcept>

namespace sm::util {

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::at(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::percentile(double p) const {
  if (sorted_.empty()) throw std::logic_error("percentile of empty CDF");
  p = std::clamp(p, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted_.size() - 1) + 0.5);
  return sorted_[rank];
}

double EmpiricalCdf::min() const {
  if (sorted_.empty()) throw std::logic_error("min of empty CDF");
  return sorted_.front();
}

double EmpiricalCdf::max() const {
  if (sorted_.empty()) throw std::logic_error("max of empty CDF");
  return sorted_.back();
}

double EmpiricalCdf::mean() const {
  if (sorted_.empty()) throw std::logic_error("mean of empty CDF");
  return std::accumulate(sorted_.begin(), sorted_.end(), 0.0) /
         static_cast<double>(sorted_.size());
}

std::vector<std::pair<double, double>> EmpiricalCdf::curve(
    std::size_t max_points) const {
  std::vector<std::pair<double, double>> pts;
  if (sorted_.empty() || max_points == 0) return pts;
  const std::size_t n = sorted_.size();
  const std::size_t step = std::max<std::size_t>(1, n / max_points);
  for (std::size_t i = 0; i < n; i += step) {
    pts.emplace_back(sorted_[i],
                     static_cast<double>(i + 1) / static_cast<double>(n));
  }
  // Close the curve on y, not x: with repeated samples the subsampled last
  // point can sit at x == max with F < 1 (e.g. {1, 1} at max_points 1
  // yields (1, 0.5)), and an x-based guard would leave the CDF short.
  if (pts.back().second != 1.0) {
    if (pts.back().first == sorted_.back()) {
      pts.back().second = 1.0;
    } else {
      pts.emplace_back(sorted_.back(), 1.0);
    }
  }
  return pts;
}

void Counter::add(const std::string& key, std::uint64_t weight) {
  counts_[key] += weight;
  total_ += weight;
}

std::vector<std::pair<std::string, std::uint64_t>> Counter::top(
    std::size_t n) const {
  std::vector<std::pair<std::string, std::uint64_t>> items(counts_.begin(),
                                                           counts_.end());
  std::sort(items.begin(), items.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (items.size() > n) items.resize(n);
  return items;
}

std::uint64_t Counter::count(const std::string& key) const {
  const auto it = counts_.find(key);
  return it == counts_.end() ? 0 : it->second;
}

std::size_t Counter::keys_to_cover(double fraction) const {
  if (counts_.empty()) return 0;
  std::vector<std::uint64_t> weights;
  weights.reserve(counts_.size());
  for (const auto& [key, w] : counts_) weights.push_back(w);
  std::sort(weights.begin(), weights.end(), std::greater<>());
  const double target = fraction * static_cast<double>(total_);
  double covered = 0;
  std::size_t used = 0;
  for (const std::uint64_t w : weights) {
    if (covered >= target) break;
    covered += static_cast<double>(w);
    ++used;
  }
  return used;
}

std::vector<std::pair<double, double>> coverage_curve(
    std::vector<std::uint64_t> multiplicities, std::size_t max_points) {
  std::vector<std::pair<double, double>> pts;
  if (multiplicities.empty() || max_points == 0) return pts;
  // Greedily take the heaviest keys first: x = fraction of keys used,
  // y = fraction of items covered.
  std::sort(multiplicities.begin(), multiplicities.end(), std::greater<>());
  const double total_items = static_cast<double>(
      std::accumulate(multiplicities.begin(), multiplicities.end(),
                      std::uint64_t{0}));
  const double total_keys = static_cast<double>(multiplicities.size());
  const std::size_t step =
      std::max<std::size_t>(1, multiplicities.size() / max_points);
  double covered = 0;
  for (std::size_t i = 0; i < multiplicities.size(); ++i) {
    covered += static_cast<double>(multiplicities[i]);
    if (i % step == 0 || i + 1 == multiplicities.size()) {
      pts.emplace_back(static_cast<double>(i + 1) / total_keys,
                       covered / total_items);
    }
  }
  return pts;
}

std::string percent(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
  return buf;
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() > headers_.size()) {
    throw std::invalid_argument("TextTable::add_row: row wider than header");
  }
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::str() const {
  if (headers_.empty()) return {};
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      line += cell;
      line.append(widths[c] - cell.size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };
  std::string out = render_row(headers_);
  std::size_t rule_len = 0;
  for (const std::size_t w : widths) rule_len += w + 2;
  out.append(rule_len - 2, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

}  // namespace sm::util
