// SHA-1 (FIPS 180-4), implemented from scratch.
//
// SHA-1 is cryptographically broken but remains the conventional certificate
// fingerprint algorithm for the 2012-2015 era this library models; we provide
// it for fingerprinting only, never for signatures.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace sm::util {

/// Incremental SHA-1 hasher (20-byte digest). API mirrors Sha256.
class Sha1 {
 public:
  static constexpr std::size_t kDigestSize = 20;

  Sha1();

  /// Absorbs more input.
  Sha1& update(BytesView data);

  /// Completes the hash; the hasher must not be reused afterwards.
  Bytes finish();

  /// One-shot convenience: SHA-1 of a single buffer.
  static Bytes digest(BytesView data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 5> state_;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

}  // namespace sm::util
