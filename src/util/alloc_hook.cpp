#include "util/alloc_hook.h"

#include <cstdlib>
#include <new>

namespace {

thread_local std::uint64_t g_news = 0;
thread_local std::uint64_t g_deletes = 0;

void* allocate(std::size_t size) {
  ++g_news;
  if (size == 0) size = 1;
  return std::malloc(size);
}

void* allocate_aligned(std::size_t size, std::size_t align) {
  ++g_news;
  if (size == 0) size = align;
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  return std::aligned_alloc(align, rounded);
}

void deallocate(void* p) {
  ++g_deletes;
  std::free(p);
}

// Throwing operator-new forms must not return nullptr; the hot paths
// under test never exhaust memory, so abort stands in for std::bad_alloc
// (throwing from a replaced operator new without exception-allocation
// machinery of its own risks recursion).
void* checked(void* p) {
  if (p == nullptr) std::abort();
  return p;
}

}  // namespace

namespace sm::util::alloc_hook {

bool active() { return true; }

std::uint64_t thread_new_count() { return g_news; }

std::uint64_t thread_delete_count() { return g_deletes; }

}  // namespace sm::util::alloc_hook

// The full replaceable allocation-function set forwards to the counting
// helpers above.

void* operator new(std::size_t size) { return checked(allocate(size)); }

void* operator new[](std::size_t size) { return checked(allocate(size)); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return allocate(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return allocate(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  return checked(allocate_aligned(size, static_cast<std::size_t>(align)));
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return checked(allocate_aligned(size, static_cast<std::size_t>(align)));
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return allocate_aligned(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return allocate_aligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { deallocate(p); }

void operator delete[](void* p) noexcept { deallocate(p); }

void operator delete(void* p, std::size_t) noexcept { deallocate(p); }

void operator delete[](void* p, std::size_t) noexcept { deallocate(p); }

void operator delete(void* p, std::align_val_t) noexcept { deallocate(p); }

void operator delete[](void* p, std::align_val_t) noexcept {
  deallocate(p);
}

void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  deallocate(p);
}

void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  deallocate(p);
}

void operator delete(void* p, const std::nothrow_t&) noexcept {
  deallocate(p);
}

void operator delete[](void* p, const std::nothrow_t&) noexcept {
  deallocate(p);
}
