// A fixed-size worker pool with a deterministic `parallel_for` helper.
//
// Design constraints (set by the linking pipeline that motivated it):
//  * Results must be bit-identical regardless of thread count: callers
//    write into index-addressed slots, so only the *schedule* varies.
//  * `parallel_for` blocks until every chunk finished and rethrows the
//    first exception a chunk threw (by chunk order, deterministically).
//  * Re-entrant use from inside a worker thread (a parallel region that
//    itself calls `parallel_for`) must not deadlock: nested calls run
//    inline on the calling worker.
//  * A pool of size <= 1 never spawns threads — the serial reference
//    path and the parallel path are the same code.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sm::util {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means one per hardware thread. A pool of
  /// size 1 runs everything inline on the caller.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker count (>= 1; the caller participates when it equals 1).
  std::size_t size() const { return size_; }

  /// Splits [0, n) into chunks of at most `chunk` indices and runs
  /// `fn(begin, end)` over them on the workers. Blocks until all chunks
  /// completed. If any chunk threw, rethrows the exception of the
  /// lowest-indexed throwing chunk. Safe to call from inside a worker
  /// (runs serially inline in that case).
  void parallel_for(std::size_t n, std::size_t chunk,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// The process-wide pool, created on first use with
  /// `global_thread_count()` workers.
  static ThreadPool& global();

  /// Sets the worker count used when (re)creating the global pool, and
  /// recreates it if it already exists. 0 restores the hardware default.
  /// Not safe concurrently with running work on the global pool; intended
  /// for start-up flags (`--threads`).
  static void set_global_threads(std::size_t threads);

  /// The configured global worker count (resolved, >= 1).
  static std::size_t global_thread_count();

 private:
  struct Task {
    std::function<void()> fn;
  };

  void worker_loop();
  void run_serial(std::size_t n, std::size_t chunk,
                  const std::function<void(std::size_t, std::size_t)>& fn);

  std::size_t size_ = 1;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::vector<Task> queue_;
  bool stopping_ = false;
};

}  // namespace sm::util
