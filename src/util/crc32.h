// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum used
// by gzip/zip/PNG. The archive v2 format frames every section with it so
// silent corruption (bit rot, truncated copies, bad transfers) is detected
// at load time instead of flowing into the analyses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace sm::util {

/// Computes the CRC-32 of `size` bytes at `data`. Pass a previous result as
/// `crc` to continue incrementally over a split buffer (crc of empty input
/// is 0, so the default starts a fresh checksum).
std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t crc = 0);

inline std::uint32_t crc32(std::string_view data, std::uint32_t crc = 0) {
  return crc32(data.data(), data.size(), crc);
}

}  // namespace sm::util
