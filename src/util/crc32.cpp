#include "util/crc32.h"

#include <array>
#include <cstring>

namespace sm::util {

namespace {

// Slicing-by-8: eight derived tables let the hot loop fold 8 input bytes
// per iteration with independent table lookups instead of a byte-at-a-time
// dependency chain. Table 0 is the classic reflected CRC-32 (IEEE 802.3,
// polynomial 0xEDB88320) table; table k advances a byte k extra steps.
constexpr std::array<std::array<std::uint32_t, 256>, 8> make_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = tables[0][i];
    for (std::size_t t = 1; t < 8; ++t) {
      c = tables[0][c & 0xFFu] ^ (c >> 8);
      tables[t][i] = c;
    }
  }
  return tables;
}

constexpr std::array<std::array<std::uint32_t, 256>, 8> kTables =
    make_tables();

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t crc) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  // The 8-byte fold XORs the running CRC into a memcpy'd word, which is
  // only correct when the in-memory byte order matches the reflected CRC's
  // bit order (little-endian); other targets use the plain byte loop.
  while (size >= 8) {
    std::uint32_t lo;
    std::uint32_t hi;
    std::memcpy(&lo, p, sizeof(lo));
    std::memcpy(&hi, p + 4, sizeof(hi));
    lo ^= c;
    c = kTables[7][lo & 0xFFu] ^ kTables[6][(lo >> 8) & 0xFFu] ^
        kTables[5][(lo >> 16) & 0xFFu] ^ kTables[4][lo >> 24] ^
        kTables[3][hi & 0xFFu] ^ kTables[2][(hi >> 8) & 0xFFu] ^
        kTables[1][(hi >> 16) & 0xFFu] ^ kTables[0][hi >> 24];
    p += 8;
    size -= 8;
  }
#endif
  for (std::size_t i = 0; i < size; ++i) {
    c = kTables[0][(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace sm::util
