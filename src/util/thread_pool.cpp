#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace sm::util {

namespace {

// Set inside workers so a nested `parallel_for` runs inline instead of
// deadlocking on its own pool.
thread_local bool t_in_worker = false;

// Caps absurd requests (e.g. a negative count that wrapped to SIZE_MAX)
// so the constructor never throws length_error or exhausts the system.
constexpr std::size_t kMaxThreads = 4096;

std::size_t resolve(std::size_t threads) {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }
  return std::min(threads, kMaxThreads);
}

std::mutex& global_mutex() {
  static std::mutex m;
  return m;
}

std::size_t& global_setting() {
  static std::size_t threads = 0;  // 0 = hardware default
  return threads;
}

std::unique_ptr<ThreadPool>& global_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

// One parallel_for invocation. Executors (workers + the caller) pull chunk
// indices from `next` until exhausted; the lowest-indexed exception wins so
// a failing run reports the same error at every thread count.
struct Job {
  std::size_t n = 0;
  std::size_t chunk = 1;
  std::size_t chunk_count = 0;
  const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};
  std::mutex mutex;
  std::condition_variable done;
  std::size_t pending_tasks = 0;
  std::exception_ptr error;
  std::size_t error_chunk = static_cast<std::size_t>(-1);

  void run_chunks() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= chunk_count) return;
      const std::size_t begin = i * chunk;
      const std::size_t end = std::min(n, begin + chunk);
      try {
        (*fn)(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (i < error_chunk) {
          error_chunk = i;
          error = std::current_exception();
        }
      }
    }
  }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) : size_(resolve(threads)) {
  // The caller participates in every parallel_for, so spawn size_ - 1
  // workers; a pool of size 1 is purely serial.
  const std::size_t spawn = size_ - 1;
  workers_.reserve(spawn);
  for (std::size_t i = 0; i < spawn; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  t_in_worker = true;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping
      task = std::move(queue_.back());
      queue_.pop_back();
    }
    task.fn();
  }
}

void ThreadPool::run_serial(
    std::size_t n, std::size_t chunk,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    fn(begin, std::min(n, begin + chunk));
  }
}

void ThreadPool::parallel_for(
    std::size_t n, std::size_t chunk,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  chunk = std::max<std::size_t>(1, chunk);
  const std::size_t chunk_count = (n + chunk - 1) / chunk;
  if (size_ <= 1 || chunk_count <= 1 || t_in_worker) {
    run_serial(n, chunk, fn);
    return;
  }

  auto job = std::make_shared<Job>();
  job->n = n;
  job->chunk = chunk;
  job->chunk_count = chunk_count;
  job->fn = &fn;

  // The caller is one executor; spawn at most chunk_count - 1 helpers.
  const std::size_t helpers = std::min(workers_.size(), chunk_count - 1);
  job->pending_tasks = helpers;
  if (helpers > 0) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (std::size_t i = 0; i < helpers; ++i) {
        queue_.push_back(Task{[job] {
          job->run_chunks();
          {
            std::lock_guard<std::mutex> inner(job->mutex);
            --job->pending_tasks;
          }
          job->done.notify_one();
        }});
      }
    }
    wake_.notify_all();
  }

  job->run_chunks();

  std::unique_lock<std::mutex> lock(job->mutex);
  job->done.wait(lock, [&] { return job->pending_tasks == 0; });
  // Move the exception out of the Job before rethrowing: worker closures
  // may destroy their Job reference after we return, and the exception
  // object must only ever be touched from this thread.
  std::exception_ptr error = std::move(job->error);
  job->error = nullptr;
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lock(global_mutex());
  auto& slot = global_slot();
  if (!slot) slot = std::make_unique<ThreadPool>(global_setting());
  return *slot;
}

void ThreadPool::set_global_threads(std::size_t threads) {
  std::lock_guard<std::mutex> lock(global_mutex());
  global_setting() = threads;
  auto& slot = global_slot();
  if (slot) slot = std::make_unique<ThreadPool>(threads);
}

std::size_t ThreadPool::global_thread_count() {
  std::lock_guard<std::mutex> lock(global_mutex());
  return resolve(global_setting());
}

}  // namespace sm::util
