#include "util/sha1.h"

#include <bit>
#include <cstring>

namespace sm::util {

namespace {

std::uint32_t load_be32(const std::uint8_t* p) {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

}  // namespace

Sha1::Sha1()
    : state_{0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0} {}

Sha1& Sha1::update(BytesView data) {
  total_len_ += data.size();
  std::size_t offset = 0;
  if (buffer_len_ > 0) {
    const std::size_t take = std::min(data.size(), 64 - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset += take;
    if (buffer_len_ == 64) {
      process_block(buffer_.data());
      buffer_len_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    buffer_len_ = data.size() - offset;
    std::memcpy(buffer_.data(), data.data() + offset, buffer_len_);
  }
  return *this;
}

Bytes Sha1::finish() {
  const std::uint64_t bit_len = total_len_ * 8;
  const std::uint8_t pad_byte = 0x80;
  update(BytesView(&pad_byte, 1));
  const std::uint8_t zero = 0;
  while (buffer_len_ != 56) update(BytesView(&zero, 1));
  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  update(BytesView(len_bytes, 8));
  Bytes out(kDigestSize);
  for (int i = 0; i < 5; ++i) {
    out[4 * i] = static_cast<std::uint8_t>(state_[i] >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return out;
}

Bytes Sha1::digest(BytesView data) {
  Sha1 h;
  h.update(data);
  return h.finish();
}

void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) w[i] = load_be32(block + 4 * i);
  for (int i = 16; i < 80; ++i) {
    w[i] = std::rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }
  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3],
                e = state_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f;
    std::uint32_t k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5a827999;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ed9eba1;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8f1bbcdc;
    } else {
      f = b ^ c ^ d;
      k = 0xca62c1d6;
    }
    const std::uint32_t temp = std::rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = std::rotl(b, 30);
    b = a;
    a = temp;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

}  // namespace sm::util
