// Summary statistics used by the analysis layer and by every bench binary:
// empirical CDFs, percentiles, histograms, Lorenz-style coverage curves, and
// a small fixed-width table printer for paper-vs-measured output.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sm::util {

/// An empirical cumulative distribution over double-valued samples.
///
/// Build once from samples; query fractions/percentiles in O(log n).
class EmpiricalCdf {
 public:
  EmpiricalCdf() = default;

  /// Constructs from unsorted samples (copied and sorted).
  explicit EmpiricalCdf(std::vector<double> samples);

  /// Fraction of samples <= x, in [0, 1]. Returns 0 for an empty CDF.
  double at(double x) const;

  /// The p-quantile (p in [0,1]); nearest-rank. Requires non-empty.
  double percentile(double p) const;

  double median() const { return percentile(0.5); }
  double min() const;
  double max() const;
  double mean() const;
  std::size_t size() const { return sorted_.size(); }
  bool empty() const { return sorted_.empty(); }

  /// Evenly-indexed (x, F(x)) points suitable for plotting/printing;
  /// at most `max_points` rows.
  std::vector<std::pair<double, double>> curve(std::size_t max_points) const;

 private:
  std::vector<double> sorted_;
};

/// Counts occurrences of string keys and reports the top-N.
class Counter {
 public:
  /// Adds `weight` occurrences of `key`.
  void add(const std::string& key, std::uint64_t weight = 1);

  /// Total weight added across all keys.
  std::uint64_t total() const { return total_; }

  /// Number of distinct keys.
  std::size_t distinct() const { return counts_.size(); }

  /// The `n` most frequent (key, count) pairs, ties broken by key for
  /// determinism.
  std::vector<std::pair<std::string, std::uint64_t>> top(std::size_t n) const;

  /// Count for a specific key (0 if absent).
  std::uint64_t count(const std::string& key) const;

  /// Smallest number of keys whose combined weight reaches
  /// `fraction * total()`.
  std::size_t keys_to_cover(double fraction) const;

  const std::map<std::string, std::uint64_t>& raw() const { return counts_; }

 private:
  std::map<std::string, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Points of a "fraction of keys (x) covering fraction of mass (y)" curve —
/// the exact construction behind the paper's Figure 6 key-sharing plot.
///
/// `multiplicities` holds, per key, how many items carry that key.
std::vector<std::pair<double, double>> coverage_curve(
    std::vector<std::uint64_t> multiplicities, std::size_t max_points);

/// Formats a ratio as a percent string with one decimal, e.g. "87.9%".
std::string percent(double fraction);

/// A minimal fixed-width console table used by bench binaries to print the
/// paper-vs-measured rows.
class TextTable {
 public:
  /// Creates a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends a row; missing cells render empty. Throws
  /// std::invalid_argument if the row is wider than the header.
  void add_row(std::vector<std::string> cells);

  /// Renders with aligned columns, a header rule, and trailing newline.
  /// A table constructed with no headers renders as the empty string.
  std::string str() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sm::util
