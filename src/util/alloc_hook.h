// Thread-local heap-allocation counters, for tests and benchmarks that
// assert a hot path is allocation-free.
//
// Linking the sm_alloc_hook library replaces the global operator new /
// operator delete set with forwarding versions that bump thread-local
// counters. The hook is intrusive by design — link it ONLY into binaries
// that measure allocations (the notary allocation test, bench_notary),
// never into sanitizer builds (TSan/ASan interpose their own allocators
// and double-interposition misattributes or crashes).
//
// Usage:
//   const std::uint64_t before = util::alloc_hook::thread_new_count();
//   hot_path();
//   EXPECT_EQ(util::alloc_hook::thread_new_count() - before, 0u);
//
// Counters are per-thread, so concurrent activity on other threads never
// leaks into a measurement.
#pragma once

#include <cstdint>

namespace sm::util::alloc_hook {

/// True when the counting operator new/delete set is linked into this
/// binary. Callers should skip allocation assertions when false (the
/// default CMake test targets do not link the hook).
bool active();

/// Number of operator-new calls (all variants: array, nothrow, aligned)
/// made by the calling thread since it started.
std::uint64_t thread_new_count();

/// Number of operator-delete calls made by the calling thread.
std::uint64_t thread_delete_count();

}  // namespace sm::util::alloc_hook
