// Hexadecimal encoding and decoding for byte buffers.
#pragma once

#include <optional>
#include <string>

#include "util/bytes.h"

namespace sm::util {

/// Encodes `data` as a lowercase hex string ("" for empty input).
std::string hex_encode(BytesView data);

/// Decodes a hex string (upper- or lowercase). Returns std::nullopt when the
/// input has odd length or contains a non-hex character.
std::optional<Bytes> hex_decode(std::string_view hex);

}  // namespace sm::util
