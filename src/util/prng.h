// Deterministic pseudo-random number generation.
//
// Every stochastic component of the simulator (device populations, DHCP
// churn, reissue jitter, scan permutation keys) draws from these generators
// so that a world seeded with the same value reproduces bit-identically.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <string_view>

namespace sm::util {

/// SplitMix64 — used to expand a single 64-bit seed into independent
/// sub-seeds. Reference: Steele, Lea & Flood, "Fast Splittable Pseudorandom
/// Number Generators" (OOPSLA 2014).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Returns the next 64-bit value in the sequence.
  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — the workhorse generator. Satisfies
/// std::uniform_random_bit_generator so it composes with <random>
/// distributions, but the simulator uses the bounded helpers below for
/// cross-platform determinism.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four lanes from a SplitMix64 expansion of `seed`.
  explicit Rng(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& lane : state_) lane = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() {
    const std::uint64_t result = std::rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = std::rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0. Uses rejection
  /// sampling (Lemire-style) for an unbiased result.
  std::uint64_t below(std::uint64_t bound) {
    const std::uint64_t threshold = (~bound + 1) % bound;  // 2^64 mod bound
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double unit() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p (clamped to [0,1]).
  bool chance(double p) { return unit() < p; }

  /// Derives an independent child generator; `tag` decorrelates children
  /// created from the same parent draw site.
  Rng fork(std::uint64_t tag) {
    SplitMix64 sm((*this)() ^ (tag * 0x9e3779b97f4a7c15ULL));
    return Rng(sm.next());
  }

 private:
  std::array<std::uint64_t, 4> state_;
};

/// FNV-1a 64-bit hash of a string — handy for turning stable names
/// ("vendor:lancom") into seeds.
constexpr std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace sm::util
