// Primality testing and random prime generation for RSA key material.
#pragma once

#include <cstdint>

#include "bignum/biguint.h"
#include "util/prng.h"

namespace sm::bignum {

/// Miller-Rabin probabilistic primality test.
///
/// Uses the deterministic witness set {2,3,5,7,11,13,17,19,23,29,31,37}
/// (sufficient for n < 3.3e24) plus `extra_rounds` random witnesses drawn
/// from `rng` for larger candidates.
bool is_probable_prime(const BigUint& n, util::Rng& rng, int extra_rounds = 8);

/// Generates a random probable prime of exactly `bits` bits (top two bits
/// set, so products of two such primes have exactly 2*bits bits). `bits`
/// must be >= 8.
BigUint random_prime(std::size_t bits, util::Rng& rng);

/// Uniform random value in [0, bound) for Miller-Rabin witnesses and key
/// generation. `bound` must be non-zero.
BigUint random_below(const BigUint& bound, util::Rng& rng);

}  // namespace sm::bignum
