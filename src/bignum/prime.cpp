#include "bignum/prime.h"

#include <array>
#include <stdexcept>

namespace sm::bignum {

namespace {

// Small primes for trial-division prefiltering; rejects ~88% of random odd
// candidates before the expensive Miller-Rabin rounds.
constexpr std::array<std::uint32_t, 54> kSmallPrimes = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107,
    109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181,
    191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251};

bool miller_rabin_round(const BigUint& n, const BigUint& n_minus_1,
                        const BigUint& d, std::size_t r, const BigUint& a) {
  BigUint x = BigUint::mod_pow(a, d, n);
  if (x == BigUint(1) || x == n_minus_1) return true;
  for (std::size_t i = 1; i < r; ++i) {
    x = (x * x) % n;
    if (x == n_minus_1) return true;
  }
  return false;
}

}  // namespace

BigUint random_below(const BigUint& bound, util::Rng& rng) {
  if (bound.is_zero()) throw std::domain_error("random_below: zero bound");
  const std::size_t bits = bound.bit_length();
  const std::size_t bytes = (bits + 7) / 8;
  for (;;) {
    util::Bytes buf(bytes);
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.below(256));
    // Mask excess high bits so rejection is cheap.
    const std::size_t excess = bytes * 8 - bits;
    if (excess) buf[0] &= static_cast<std::uint8_t>(0xff >> excess);
    BigUint candidate = BigUint::from_bytes(buf);
    if (candidate < bound) return candidate;
  }
}

bool is_probable_prime(const BigUint& n, util::Rng& rng, int extra_rounds) {
  if (n < BigUint(2)) return false;
  for (const std::uint32_t p : kSmallPrimes) {
    const BigUint bp(p);
    if (n == bp) return true;
    if ((n % bp).is_zero()) return false;
  }
  // Write n-1 = d * 2^r with d odd.
  const BigUint n_minus_1 = n - BigUint(1);
  BigUint d = n_minus_1;
  std::size_t r = 0;
  while (!d.is_odd()) {
    d = d >> 1;
    ++r;
  }
  for (const std::uint32_t p : kSmallPrimes) {
    if (p > 37) break;
    if (!miller_rabin_round(n, n_minus_1, d, r, BigUint(p))) return false;
  }
  if (n.bit_length() > 81) {  // beyond the deterministic range
    for (int i = 0; i < extra_rounds; ++i) {
      const BigUint a = BigUint(2) + random_below(n - BigUint(4), rng);
      if (!miller_rabin_round(n, n_minus_1, d, r, a)) return false;
    }
  }
  return true;
}

BigUint random_prime(std::size_t bits, util::Rng& rng) {
  if (bits < 8) throw std::invalid_argument("random_prime: bits too small");
  for (;;) {
    const std::size_t bytes = (bits + 7) / 8;
    util::Bytes buf(bytes);
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.below(256));
    const std::size_t excess = bytes * 8 - bits;
    buf[0] &= static_cast<std::uint8_t>(0xff >> excess);
    // Force exact bit length with the top two bits set, and oddness.
    const auto set_bit = [&](std::size_t k) {
      buf[bytes - 1 - k / 8] |= static_cast<std::uint8_t>(1u << (k % 8));
    };
    set_bit(bits - 1);
    set_bit(bits - 2);
    buf[bytes - 1] |= 1;
    BigUint candidate = BigUint::from_bytes(buf);
    if (is_probable_prime(candidate, rng)) return candidate;
  }
}

}  // namespace sm::bignum
