// Arbitrary-precision unsigned integers, from scratch.
//
// This is the numeric substrate for the RSA implementation in crypto/. The
// representation is a little-endian vector of 32-bit limbs with no leading
// zero limb (zero is an empty vector). Division is schoolbook long division
// on limbs; modexp is left-to-right square-and-multiply. Performance is
// adequate for the 256-1024 bit moduli the library uses.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.h"

namespace sm::bignum {

/// An arbitrary-precision unsigned integer.
class BigUint {
 public:
  /// Zero.
  BigUint() = default;

  /// From a machine word.
  BigUint(std::uint64_t v);  // NOLINT(google-explicit-constructor): numeric

  /// From big-endian bytes (leading zeros permitted).
  static BigUint from_bytes(util::BytesView be);

  /// From a hex string (no 0x prefix). Throws std::invalid_argument on
  /// non-hex input; empty string is zero.
  static BigUint from_hex(const std::string& hex);

  /// Minimal big-endian byte encoding; zero encodes as a single 0x00 byte.
  util::Bytes to_bytes() const;

  /// Lowercase hex without leading zeros ("0" for zero).
  std::string to_hex() const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }

  /// Number of significant bits (0 for zero).
  std::size_t bit_length() const;

  /// Value of bit i (0 = least significant).
  bool bit(std::size_t i) const;

  /// Least-significant 64 bits.
  std::uint64_t low64() const;

  friend std::strong_ordering operator<=>(const BigUint& a, const BigUint& b);
  friend bool operator==(const BigUint& a, const BigUint& b) = default;

  BigUint operator+(const BigUint& rhs) const;
  /// Subtraction requires *this >= rhs; throws std::underflow_error otherwise.
  BigUint operator-(const BigUint& rhs) const;
  BigUint operator*(const BigUint& rhs) const;
  /// Quotient; divisor must be non-zero (throws std::domain_error).
  BigUint operator/(const BigUint& rhs) const;
  /// Remainder; divisor must be non-zero (throws std::domain_error).
  BigUint operator%(const BigUint& rhs) const;
  BigUint operator<<(std::size_t bits) const;
  BigUint operator>>(std::size_t bits) const;

  /// Computes quotient and remainder in one pass.
  static std::pair<BigUint, BigUint> divmod(const BigUint& num,
                                            const BigUint& den);

  /// (base ^ exp) mod m; m must be non-zero.
  static BigUint mod_pow(const BigUint& base, const BigUint& exp,
                         const BigUint& m);

  /// Greatest common divisor.
  static BigUint gcd(BigUint a, BigUint b);

 private:
  void trim();

  std::vector<std::uint32_t> limbs_;  // little-endian, no leading zeros

 public:
  struct InverseResult;
  /// Modular inverse of a mod m, if gcd(a, m) == 1; returns `ok=false`
  /// otherwise.
  static InverseResult mod_inverse(const BigUint& a, const BigUint& m);
};

/// Result of BigUint::mod_inverse.
struct BigUint::InverseResult {
  BigUint value;
  bool ok = false;
};

}  // namespace sm::bignum
