#include "bignum/biguint.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace sm::bignum {

namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

BigUint::BigUint(std::uint64_t v) {
  if (v != 0) limbs_.push_back(static_cast<std::uint32_t>(v));
  if (v >> 32) limbs_.push_back(static_cast<std::uint32_t>(v >> 32));
}

void BigUint::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigUint BigUint::from_bytes(util::BytesView be) {
  BigUint out;
  for (std::uint8_t b : be) {
    out = (out << 8) + BigUint(b);
  }
  return out;
}

BigUint BigUint::from_hex(const std::string& hex) {
  BigUint out;
  for (char c : hex) {
    const int d = hex_digit(c);
    if (d < 0) throw std::invalid_argument("BigUint::from_hex: bad digit");
    out = (out << 4) + BigUint(static_cast<std::uint64_t>(d));
  }
  return out;
}

util::Bytes BigUint::to_bytes() const {
  if (is_zero()) return util::Bytes{0};
  util::Bytes out;
  out.reserve(limbs_.size() * 4);
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    out.push_back(static_cast<std::uint8_t>(limbs_[i] >> 24));
    out.push_back(static_cast<std::uint8_t>(limbs_[i] >> 16));
    out.push_back(static_cast<std::uint8_t>(limbs_[i] >> 8));
    out.push_back(static_cast<std::uint8_t>(limbs_[i]));
  }
  const auto first_nonzero =
      std::find_if(out.begin(), out.end(), [](std::uint8_t b) { return b; });
  out.erase(out.begin(), first_nonzero);
  return out;
}

std::string BigUint::to_hex() const {
  if (is_zero()) return "0";
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = 28; shift >= 0; shift -= 4) {
      out.push_back(kDigits[(limbs_[i] >> shift) & 0xf]);
    }
  }
  out.erase(0, out.find_first_not_of('0'));
  return out;
}

std::size_t BigUint::bit_length() const {
  if (limbs_.empty()) return 0;
  std::size_t bits = (limbs_.size() - 1) * 32;
  std::uint32_t top = limbs_.back();
  while (top) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigUint::bit(std::size_t i) const {
  const std::size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1;
}

std::uint64_t BigUint::low64() const {
  std::uint64_t v = 0;
  if (!limbs_.empty()) v = limbs_[0];
  if (limbs_.size() > 1) v |= std::uint64_t{limbs_[1]} << 32;
  return v;
}

std::strong_ordering operator<=>(const BigUint& a, const BigUint& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() <=> b.limbs_.size();
  }
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] <=> b.limbs_[i];
  }
  return std::strong_ordering::equal;
}

BigUint BigUint::operator+(const BigUint& rhs) const {
  BigUint out;
  const std::size_t n = std::max(limbs_.size(), rhs.limbs_.size());
  out.limbs_.reserve(n + 1);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t sum = carry;
    if (i < limbs_.size()) sum += limbs_[i];
    if (i < rhs.limbs_.size()) sum += rhs.limbs_[i];
    out.limbs_.push_back(static_cast<std::uint32_t>(sum));
    carry = sum >> 32;
  }
  if (carry) out.limbs_.push_back(static_cast<std::uint32_t>(carry));
  return out;
}

BigUint BigUint::operator-(const BigUint& rhs) const {
  if (*this < rhs) throw std::underflow_error("BigUint subtraction underflow");
  BigUint out;
  out.limbs_.reserve(limbs_.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(limbs_[i]) - borrow;
    if (i < rhs.limbs_.size()) diff -= rhs.limbs_[i];
    if (diff < 0) {
      diff += std::int64_t{1} << 32;
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_.push_back(static_cast<std::uint32_t>(diff));
  }
  out.trim();
  return out;
}

BigUint BigUint::operator*(const BigUint& rhs) const {
  if (is_zero() || rhs.is_zero()) return BigUint{};
  BigUint out;
  out.limbs_.assign(limbs_.size() + rhs.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < rhs.limbs_.size(); ++j) {
      const std::uint64_t cur = std::uint64_t{limbs_[i]} * rhs.limbs_[j] +
                                out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::size_t k = i + rhs.limbs_.size();
    while (carry) {
      const std::uint64_t cur = std::uint64_t{out.limbs_[k]} + carry;
      out.limbs_[k] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  out.trim();
  return out;
}

BigUint BigUint::operator<<(std::size_t bits) const {
  if (is_zero()) return BigUint{};
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  BigUint out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t v = std::uint64_t{limbs_[i]} << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<std::uint32_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<std::uint32_t>(v >> 32);
  }
  out.trim();
  return out;
}

BigUint BigUint::operator>>(std::size_t bits) const {
  const std::size_t limb_shift = bits / 32;
  if (limb_shift >= limbs_.size()) return BigUint{};
  const std::size_t bit_shift = bits % 32;
  BigUint out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    std::uint64_t v = std::uint64_t{limbs_[i + limb_shift]} >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      v |= std::uint64_t{limbs_[i + limb_shift + 1]} << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<std::uint32_t>(v);
  }
  out.trim();
  return out;
}

std::pair<BigUint, BigUint> BigUint::divmod(const BigUint& num,
                                            const BigUint& den) {
  if (den.is_zero()) throw std::domain_error("BigUint division by zero");
  if (num < den) return {BigUint{}, num};

  // Fast path: single-limb divisor.
  if (den.limbs_.size() == 1) {
    const std::uint64_t d = den.limbs_[0];
    BigUint quotient;
    quotient.limbs_.assign(num.limbs_.size(), 0);
    std::uint64_t rem = 0;
    for (std::size_t i = num.limbs_.size(); i-- > 0;) {
      const std::uint64_t cur = (rem << 32) | num.limbs_[i];
      quotient.limbs_[i] = static_cast<std::uint32_t>(cur / d);
      rem = cur % d;
    }
    quotient.trim();
    return {quotient, BigUint(rem)};
  }

  // Knuth TAOCP vol. 2, Algorithm D, base 2^32.
  const std::size_t n = den.limbs_.size();
  const std::size_t m = num.limbs_.size() - n;
  const int shift = std::countl_zero(den.limbs_.back());
  // Normalized copies: v has its top bit set; u gains one extra high limb.
  const BigUint v = den << static_cast<std::size_t>(shift);
  BigUint u_big = num << static_cast<std::size_t>(shift);
  std::vector<std::uint32_t> u(u_big.limbs_);
  u.resize(m + n + 1, 0);
  const std::vector<std::uint32_t>& vl = v.limbs_;

  BigUint quotient;
  quotient.limbs_.assign(m + 1, 0);
  constexpr std::uint64_t kBase = 1ULL << 32;
  for (std::size_t j = m + 1; j-- > 0;) {
    // Estimate the quotient digit from the top two dividend limbs.
    const std::uint64_t top = (std::uint64_t{u[j + n]} << 32) | u[j + n - 1];
    std::uint64_t qhat = top / vl[n - 1];
    std::uint64_t rhat = top % vl[n - 1];
    while (qhat >= kBase ||
           qhat * vl[n - 2] > ((rhat << 32) | u[j + n - 2])) {
      --qhat;
      rhat += vl[n - 1];
      if (rhat >= kBase) break;
    }
    // Multiply-and-subtract qhat * v from u[j .. j+n].
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t product = qhat * vl[i] + carry;
      carry = product >> 32;
      const std::int64_t diff = static_cast<std::int64_t>(u[i + j]) -
                                static_cast<std::int64_t>(product & 0xffffffff) -
                                borrow;
      u[i + j] = static_cast<std::uint32_t>(diff);
      borrow = diff < 0 ? 1 : 0;
    }
    const std::int64_t diff = static_cast<std::int64_t>(u[j + n]) -
                              static_cast<std::int64_t>(carry) - borrow;
    u[j + n] = static_cast<std::uint32_t>(diff);
    if (diff < 0) {
      // qhat was one too large; add v back.
      --qhat;
      std::uint64_t add_carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t sum =
            std::uint64_t{u[i + j]} + vl[i] + add_carry;
        u[i + j] = static_cast<std::uint32_t>(sum);
        add_carry = sum >> 32;
      }
      u[j + n] = static_cast<std::uint32_t>(u[j + n] + add_carry);
    }
    quotient.limbs_[j] = static_cast<std::uint32_t>(qhat);
  }
  quotient.trim();

  BigUint remainder;
  remainder.limbs_.assign(u.begin(), u.begin() + static_cast<std::ptrdiff_t>(n));
  remainder.trim();
  remainder = remainder >> static_cast<std::size_t>(shift);
  return {quotient, remainder};
}

BigUint BigUint::operator/(const BigUint& rhs) const {
  return divmod(*this, rhs).first;
}

BigUint BigUint::operator%(const BigUint& rhs) const {
  return divmod(*this, rhs).second;
}

BigUint BigUint::mod_pow(const BigUint& base, const BigUint& exp,
                         const BigUint& m) {
  if (m.is_zero()) throw std::domain_error("mod_pow modulus is zero");
  if (m == BigUint(1)) return BigUint{};
  BigUint result(1);
  BigUint b = base % m;
  for (std::size_t i = exp.bit_length(); i-- > 0;) {
    result = (result * result) % m;
    if (exp.bit(i)) result = (result * b) % m;
  }
  return result;
}

BigUint BigUint::gcd(BigUint a, BigUint b) {
  while (!b.is_zero()) {
    BigUint r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigUint::InverseResult BigUint::mod_inverse(const BigUint& a,
                                            const BigUint& m) {
  // Extended Euclid on non-negative values, tracking coefficients as
  // (sign, magnitude) pairs to stay within unsigned arithmetic.
  if (m.is_zero()) return {};
  BigUint r0 = m, r1 = a % m;
  BigUint t0{}, t1(1);
  bool t0_neg = false, t1_neg = false;
  while (!r1.is_zero()) {
    const auto [q, r2] = divmod(r0, r1);
    // t2 = t0 - q * t1 with explicit sign handling.
    const BigUint qt1 = q * t1;
    BigUint t2;
    bool t2_neg;
    if (t0_neg == t1_neg) {
      if (t0 >= qt1) {
        t2 = t0 - qt1;
        t2_neg = t0_neg;
      } else {
        t2 = qt1 - t0;
        t2_neg = !t0_neg;
      }
    } else {
      t2 = t0 + qt1;
      t2_neg = t0_neg;
    }
    r0 = r1;
    r1 = r2;
    t0 = t1;
    t0_neg = t1_neg;
    t1 = std::move(t2);
    t1_neg = t2_neg;
  }
  if (!(r0 == BigUint(1))) return {};
  BigUint inv = t0 % m;
  if (t0_neg && !inv.is_zero()) inv = m - inv;
  return {inv, true};
}

}  // namespace sm::bignum
