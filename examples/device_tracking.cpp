// Device tracking: follow individual devices through the IP address space
// using nothing but the invalid certificates they serve (§7). Prints the
// journey of the most-travelled tracked device and of a long-lived
// certificate-churning device whose reissues were linked together.
//
//   ./examples/device_tracking
#include <cstdio>

#include "analysis/dataset.h"
#include "linking/linker.h"
#include "simworld/world.h"
#include "tracking/tracker.h"

int main() {
  using namespace sm;

  simworld::WorldConfig config = simworld::WorldConfig::paper();
  config.device_count = 1500;
  config.website_count = 500;
  std::puts("building world and linking certificates...");
  const simworld::WorldResult world = simworld::World(config).run();
  const analysis::DatasetIndex index(world.archive, world.routing);
  const linking::Linker linker(index);
  const linking::IterativeResult linked = linker.link_iteratively();
  const tracking::DeviceTracker tracker(index, linker, linked, world.as_db);

  // The most-travelled device: most AS transitions.
  const tracking::TrackedEntity* traveller = nullptr;
  std::size_t best_moves = 0;
  // The busiest reissuer: largest linked group.
  const tracking::TrackedEntity* churner = nullptr;
  for (const tracking::TrackedEntity* entity : tracker.trackable()) {
    std::size_t moves = 0;
    for (std::size_t i = 1; i < entity->timeline.size(); ++i) {
      if (entity->timeline[i].asn != entity->timeline[i - 1].asn) ++moves;
    }
    // Prefer linked entities: a factory-shared certificate passing the
    // duplicate filter can masquerade as one wildly mobile "device" (the
    // caveat the paper's §6.2 filter exists for).
    if (entity->linked && moves > best_moves) {
      best_moves = moves;
      traveller = entity;
    }
    if (entity->linked &&
        (!churner || entity->certs.size() > churner->certs.size())) {
      churner = entity;
    }
  }

  const auto print_journey = [&](const tracking::TrackedEntity& entity,
                                 std::size_t max_rows, bool as_changes_only) {
    const auto& scans = world.archive.scans();
    std::printf("  %zu certificates, observed %s to %s\n",
                entity.certs.size(),
                util::format_date(entity.first_seen).c_str(),
                util::format_date(entity.last_seen).c_str());
    net::Asn last_asn = 0;
    std::size_t rows = 0;
    for (const auto& residency : entity.timeline) {
      if (as_changes_only && residency.asn == last_asn && rows > 0) continue;
      if (++rows > max_rows) {
        std::puts("  ...");
        break;
      }
      std::printf("  %s  %-16s %s\n",
                  util::format_date(scans[residency.scan].event.start).c_str(),
                  net::Ipv4Address(residency.ip).to_string().c_str(),
                  world.as_db.label(residency.asn).c_str());
      last_asn = residency.asn;
    }
  };

  if (traveller != nullptr) {
    std::printf("\nmost-travelled device (%zu AS moves):\n", best_moves);
    const auto& cert = world.archive.cert(traveller->certs.front());
    std::printf("  issuer: %s\n",
                cert.issuer_cn.empty() ? "(empty)" : cert.issuer_cn.c_str());
    print_journey(*traveller, 12, /*as_changes_only=*/true);
  }
  if (churner != nullptr) {
    std::printf("\nbusiest reissuer (one device, %zu linked certificates):\n",
                churner->certs.size());
    const auto& cert = world.archive.cert(churner->certs.front());
    std::printf("  subject CN: %s\n",
                cert.subject_cn.empty() ? "(empty)" : cert.subject_cn.c_str());
    std::printf("  SANs: %s\n", cert.san_joined().c_str());
    print_journey(*churner, 8, /*as_changes_only=*/false);
  }

  const auto movement = tracker.movement();
  std::printf("\nfleet-wide: %llu tracked devices, %llu movers, "
              "%zu bulk transfers\n",
              static_cast<unsigned long long>(movement.tracked_devices),
              static_cast<unsigned long long>(movement.devices_with_as_change),
              movement.bulk_transfers.size());
  for (const auto& transfer : movement.bulk_transfers) {
    std::printf("  bulk: %u devices %s -> %s\n", transfer.devices,
                world.as_db.label(transfer.from).c_str(),
                world.as_db.label(transfer.to).c_str());
  }
  return 0;
}
