// Reassignment atlas: infer every ISP's IP reassignment policy purely from
// the invalid certificates its subscribers serve (§7.4), and print an
// atlas sorted from fully-static to fully-dynamic networks.
//
//   ./examples/reassignment_atlas
#include <algorithm>
#include <cstdio>

#include "analysis/dataset.h"
#include "linking/linker.h"
#include "simworld/world.h"
#include "tracking/tracker.h"

int main() {
  using namespace sm;

  std::puts("simulating and scanning (paper-scale world)...");
  const simworld::WorldResult world =
      simworld::World(simworld::WorldConfig::paper()).run();
  const analysis::DatasetIndex index(world.archive, world.routing);
  const linking::Linker linker(index);
  const linking::IterativeResult linked = linker.link_iteratively();
  const tracking::DeviceTracker tracker(index, linker, linked, world.as_db);
  const tracking::ReassignmentStats stats = tracker.reassignment();

  std::vector<tracking::AsReassignment> atlas = stats.per_as;
  std::sort(atlas.begin(), atlas.end(),
            [](const auto& a, const auto& b) {
              return a.static_fraction() > b.static_fraction();
            });

  std::printf("\nIP reassignment atlas (%zu ASes with >= 10 tracked "
              "devices)\n\n",
              atlas.size());
  std::printf("%-46s %8s %8s %14s\n", "autonomous system", "devices",
              "static", "chg every scan");
  std::printf("%.*s\n", 78,
              "------------------------------------------------------------"
              "------------------");
  for (const auto& as_stats : atlas) {
    std::printf("%-46s %8u %8s %14s\n",
                world.as_db.label(as_stats.asn).c_str(),
                as_stats.tracked_devices,
                util::percent(as_stats.static_fraction()).c_str(),
                util::percent(as_stats.always_changing_fraction()).c_str());
  }

  std::printf("\n%llu of %zu ASes assign static addresses to >= 90%% of "
              "their devices\n(paper: 56.3%% of 4,467 ASes)\n",
              static_cast<unsigned long long>(stats.ases_90pct_static),
              stats.per_as.size());
  std::puts("\nhighly dynamic networks (>= 75% of devices on a new IP every "
            "scan):");
  for (const auto& as_stats : stats.most_dynamic) {
    std::printf("  %-46s %s of %u devices\n",
                world.as_db.label(as_stats.asn).c_str(),
                util::percent(as_stats.always_changing_fraction()).c_str(),
                as_stats.tracked_devices);
  }
  return 0;
}
