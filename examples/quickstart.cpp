// Quickstart: simulate a small internet, scan it, isolate the invalid
// certificates, link reissues, and track devices — the paper's whole
// pipeline in ~60 lines of calling code.
//
//   ./examples/quickstart [seed]
#include <cstdio>
#include <cstdlib>

#include "analysis/dataset.h"
#include "analysis/longevity.h"
#include "linking/linker.h"
#include "simworld/world.h"
#include "tracking/tracker.h"

int main(int argc, char** argv) {
  using namespace sm;

  // 1. Build and scan a simulated internet (devices + websites + two scan
  //    campaigns). WorldConfig::paper() is the full experiment world;
  //    tiny() runs in milliseconds.
  simworld::WorldConfig config = simworld::WorldConfig::tiny();
  if (argc > 1) config.seed = std::strtoull(argv[1], nullptr, 10);
  std::printf("simulating %zu devices + %zu websites (seed %llu)...\n",
              config.device_count, config.website_count,
              static_cast<unsigned long long>(config.seed));
  simworld::WorldResult world = simworld::World(config).run();
  std::printf("  %zu scans, %zu observations, %zu unique certificates\n\n",
              world.archive.scans().size(), world.archive.observation_count(),
              world.archive.certs().size());

  // 2. Isolate invalid certificates (§4.2) — validation already ran during
  //    issuance, exactly like running `openssl verify` over the corpus.
  const analysis::ValidityBreakdown breakdown =
      analysis::compute_validity_breakdown(world.archive);
  std::printf("validity: %s invalid (paper: 87.9%%)\n",
              util::percent(breakdown.invalid_fraction()).c_str());
  std::printf("  self-signed %s, untrusted issuer %s\n\n",
              util::percent(static_cast<double>(breakdown.self_signed) /
                            static_cast<double>(breakdown.invalid_certs))
                  .c_str(),
              util::percent(static_cast<double>(breakdown.untrusted_issuer) /
                            static_cast<double>(breakdown.invalid_certs))
                  .c_str());

  // 3. Index the dataset and link reissued certificates (§6).
  const analysis::DatasetIndex index(world.archive, world.routing);
  const linking::Linker linker(index);
  const linking::IterativeResult linked = linker.link_iteratively();
  std::printf("linking: %llu of %llu eligible certs linked into %zu groups\n",
              static_cast<unsigned long long>(linked.linked_certs),
              static_cast<unsigned long long>(linker.eligible_count()),
              linked.groups.size());
  const linking::TruthScore truth = linker.score_against_truth(linked);
  std::printf("  ground truth: precision %.3f, recall %.3f\n\n",
              truth.precision(), truth.recall());

  // 4. Track devices through the IP space (§7).
  const tracking::DeviceTracker tracker(index, linker, linked, world.as_db);
  const tracking::TrackableSummary summary = tracker.summary();
  std::printf("tracking: %llu devices trackable for over a year "
              "(%llu without linking)\n",
              static_cast<unsigned long long>(summary.trackable_with_linking),
              static_cast<unsigned long long>(
                  summary.trackable_without_linking));
  const tracking::MovementStats movement = tracker.movement();
  std::printf("  %llu devices changed AS; %llu crossed countries\n",
              static_cast<unsigned long long>(movement.devices_with_as_change),
              static_cast<unsigned long long>(
                  movement.devices_crossing_countries));
  return 0;
}
