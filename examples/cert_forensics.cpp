// Certificate forensics with real RSA: build a CA hierarchy, issue valid,
// transvalid, self-signed, and vendor-CA-signed certificates, verify each
// against a root store, and dissect one on the wire — the x509/pki layers
// standalone, no simulator involved.
//
//   ./examples/cert_forensics
#include <cstdio>

#include "asn1/print.h"
#include "pki/lint.h"
#include "pki/root_store.h"
#include "pki/verifier.h"
#include "util/hex.h"
#include "util/prng.h"
#include "x509/builder.h"

int main() {
  using namespace sm;
  util::Rng rng(2016);

  // Real 512-bit RSA keys (sm::bignum under the hood) — slow enough that
  // the population simulator uses the simulated scheme instead, fast enough
  // for a handful of certificates here.
  std::puts("generating RSA keypairs (512-bit, from-scratch bignum)...");
  const auto root_key =
      crypto::generate_keypair(crypto::SigScheme::kRsaSha256, rng, 512);
  const auto intermediate_key =
      crypto::generate_keypair(crypto::SigScheme::kRsaSha256, rng, 512);
  const auto site_key =
      crypto::generate_keypair(crypto::SigScheme::kRsaSha256, rng, 512);
  const auto device_key =
      crypto::generate_keypair(crypto::SigScheme::kRsaSha256, rng, 512);

  const auto root =
      x509::CertificateBuilder()
          .set_serial(bignum::BigUint(1))
          .set_issuer(x509::Name::with_common_name("Forensics Root CA"))
          .set_subject(x509::Name::with_common_name("Forensics Root CA"))
          .set_validity(util::make_date(2010, 1, 1),
                        util::make_date(2035, 1, 1))
          .set_public_key(root_key.pub)
          .set_basic_constraints(true)
          .sign(root_key);
  const auto intermediate =
      x509::CertificateBuilder()
          .set_serial(bignum::BigUint(2))
          .set_issuer(root.subject)
          .set_subject(x509::Name::with_common_name("Forensics Issuing CA"))
          .set_validity(util::make_date(2012, 1, 1),
                        util::make_date(2030, 1, 1))
          .set_public_key(intermediate_key.pub)
          .set_basic_constraints(true, 0)
          .sign(root_key);
  const auto site =
      x509::CertificateBuilder()
          .set_serial(bignum::BigUint(443))
          .set_issuer(intermediate.subject)
          .set_subject(x509::Name::with_common_name("www.example.com"))
          .set_validity(util::make_date(2014, 1, 1),
                        util::make_date(2015, 2, 1))
          .set_public_key(site_key.pub)
          .set_subject_alt_names(
              {{x509::GeneralName::Kind::kDns, "www.example.com"},
               {x509::GeneralName::Kind::kDns, "example.com"}})
          .set_crl_distribution_points({"http://crl.forensics.test/ca.crl"})
          .set_authority_info_access({"http://ocsp.forensics.test"},
                                     {"http://ca.forensics.test/ca.crt"})
          .sign(intermediate_key);
  // A typical device certificate: self-signed, 20-year validity, IP CN.
  const auto device =
      x509::CertificateBuilder()
          .set_serial(bignum::BigUint(1))
          .set_issuer(x509::Name::with_common_name("192.168.1.1"))
          .set_subject(x509::Name::with_common_name("192.168.1.1"))
          .set_validity(util::make_date(1970, 1, 1),
                        util::make_date(1990, 1, 1) + 20 * 365 * 86400LL)
          .set_public_key(device_key.pub)
          .sign(device_key);

  pki::RootStore roots;
  roots.add(root);
  pki::IntermediatePool pool;
  const pki::Verifier verifier(roots, pool);

  const auto show = [&](const char* label, const x509::Certificate& cert,
                        std::span<const x509::Certificate> presented) {
    const pki::ValidationResult result = verifier.verify(cert, presented);
    std::printf("%-34s %s", label,
                result.valid ? "VALID" : "invalid");
    if (result.valid) {
      std::printf(" (chain length %d%s)", result.chain_length,
                  result.transvalid ? ", transvalid" : "");
    } else {
      std::printf(" (%s)", to_string(result.reason).c_str());
    }
    std::putchar('\n');
  };

  std::puts("\nverification against the root store:");
  const std::vector<x509::Certificate> chain = {intermediate};
  show("site + presented chain:", site, chain);
  show("site, chain withheld:", site, {});
  std::puts("  ...adding the intermediate to the pool (transvalid case)...");
  pki::IntermediatePool filled_pool;
  filled_pool.add(intermediate);
  const pki::Verifier transvalid_verifier(roots, filled_pool);
  const pki::ValidationResult transvalid = transvalid_verifier.verify(site);
  std::printf("%-34s %s (transvalid=%s)\n", "site, chain from pool:",
              transvalid.valid ? "VALID" : "invalid",
              transvalid.transvalid ? "yes" : "no");
  show("self-signed device cert:", device, {});

  // Wire-level dissection: parse the DER back and print the certificate.
  std::puts("\ndissecting the site certificate from its DER:");
  const auto parsed = x509::parse_certificate(site.der);
  if (!parsed) {
    std::puts("  parse failed?!");
    return 1;
  }
  std::printf("  DER size:      %zu bytes\n", parsed->der.size());
  std::printf("  version:       v%lld\n",
              static_cast<long long>(parsed->display_version()));
  std::printf("  serial:        %s\n", parsed->serial.to_hex().c_str());
  std::printf("  issuer:        %s\n", parsed->issuer.to_string().c_str());
  std::printf("  subject:       %s\n", parsed->subject.to_string().c_str());
  std::printf("  not before:    %s\n",
              util::format_datetime(parsed->validity.not_before).c_str());
  std::printf("  not after:     %s\n",
              util::format_datetime(parsed->validity.not_after).c_str());
  std::printf("  sig algorithm: %s\n",
              parsed->signature_algorithm.to_string().c_str());
  for (const auto& san : parsed->subject_alt_names()) {
    std::printf("  SAN:           %s\n", san.to_string().c_str());
  }
  for (const auto& url : parsed->crl_distribution_points()) {
    std::printf("  CRL:           %s\n", url.c_str());
  }
  const auto aia = parsed->authority_info_access();
  for (const auto& url : aia.ocsp) std::printf("  OCSP:          %s\n", url.c_str());
  std::printf("  SHA-256:       %s\n",
              util::hex_encode(parsed->fingerprint_sha256()).c_str());
  std::printf("  SHA-1:         %s\n",
              util::hex_encode(parsed->fingerprint_sha1()).c_str());

  // Lint both certificates the way an issuance pipeline would.
  const auto print_lint = [](const char* label,
                             const x509::Certificate& cert) {
    std::printf("\nlint: %s\n", label);
    const auto findings = pki::lint_certificate(cert);
    if (findings.empty()) {
      std::puts("  clean");
      return;
    }
    for (const auto& finding : findings) {
      std::printf("  [%-7s] %-24s %s\n",
                  to_string(finding.severity).c_str(),
                  to_string(finding.check).c_str(), finding.message.c_str());
    }
  };
  print_lint("site certificate", site);
  print_lint("device certificate", device);

  // The raw DER, dumpasn1-style.
  std::puts("\nDER structure of the device certificate:");
  asn1::PrintOptions print_options;
  print_options.max_value_bytes = 8;
  std::fputs(asn1::to_text(device.der, print_options).c_str(), stdout);

  // Tamper check: flip one byte of the TBS and re-verify.
  std::puts("\ntamper check:");
  x509::Certificate tampered = site;
  tampered.tbs_der[40] ^= 0x01;
  const bool still_ok =
      crypto::verify(intermediate_key.pub, tampered.tbs_der,
                     tampered.signature);
  std::printf("  signature over tampered TBS verifies: %s\n",
              still_ok ? "yes (BUG!)" : "no (as it must)");
  return 0;
}
